"""Section 5.2, per-job analysis: why Mahout slows down at scale.

Paper observation: switching from Bio-Text to the (20x bigger) Tweets
dataset, Mahout's Bt-job time grows 654x and its mapper output 15.6x
(to 4 TB), while sPCA's YtX-job mapper output grows only 2.3x.  The shape:
Mahout's mapper output grows with the row count, sPCA's barely moves.
"""

import pytest

from harness import MR_COSTS, default_config, format_bytes, make_backend
from repro.baselines import SSVDPCAMapReduce
from repro.core import SPCA
from repro.data.paper import biotext_series, scaled_cluster, tweets_series
from repro.engine.mapreduce.runtime import MapReduceRuntime


def _spca_ytx_stats(data):
    config = default_config(max_iterations=2, compute_error_every_iteration=False)
    backend = make_backend("mapreduce", config)
    SPCA(config, backend).fit(data)
    jobs = backend.runtime.metrics.by_name("YtXJob")
    return (
        sum(j.map_output_bytes for j in jobs) / len(jobs),
        sum(j.sim_seconds for j in jobs) / len(jobs),
    )


def _mahout_bt_stats(data):
    runtime = MapReduceRuntime(cluster=scaled_cluster(), cost_model=MR_COSTS)
    algorithm = SSVDPCAMapReduce(10, oversampling=2, power_iterations=1, runtime=runtime)
    algorithm.fit(data, compute_accuracy=False)
    jobs = runtime.metrics.by_name("BtJob")
    return (
        sum(j.map_output_bytes for j in jobs) / len(jobs),
        sum(j.sim_seconds for j in jobs) / len(jobs),
    )


@pytest.mark.benchmark(group="job-analysis")
def test_job_analysis_bt_vs_ytx(benchmark, report):
    measurements = {}

    def run_all():
        biotext = biotext_series()[1].generate()
        tweets = tweets_series(n_rows=40_000)[2].generate()
        measurements["biotext"] = (_spca_ytx_stats(biotext), _mahout_bt_stats(biotext))
        measurements["tweets"] = (_spca_ytx_stats(tweets), _mahout_bt_stats(tweets))
        return len(measurements)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("Per-job analysis (Section 5.2): mapper output and job time")
    report(f"{'dataset':<10}{'job':<8}{'mapper output':>16}{'job time (s)':>14}")
    for dataset, ((ytx_bytes, ytx_s), (bt_bytes, bt_s)) in measurements.items():
        report(f"{dataset:<10}{'YtX':<8}{format_bytes(ytx_bytes):>16}{ytx_s:>14.1f}")
        report(f"{dataset:<10}{'Bt':<8}{format_bytes(bt_bytes):>16}{bt_s:>14.1f}")

    ytx_growth = (
        measurements["tweets"][0][0] / measurements["biotext"][0][0]
    )
    bt_growth = measurements["tweets"][1][0] / measurements["biotext"][1][0]
    bt_time_growth = measurements["tweets"][1][1] / measurements["biotext"][1][1]
    ytx_time_growth = measurements["tweets"][0][1] / measurements["biotext"][0][1]
    report("")
    report(
        f"growth biotext->tweets: Bt mapper output {bt_growth:.1f}x, "
        f"YtX mapper output {ytx_growth:.1f}x; "
        f"Bt time {bt_time_growth:.1f}x, YtX time {ytx_time_growth:.1f}x"
    )

    # Mahout's Bt mapper output grows faster than sPCA's YtX output when the
    # dataset scales up (byte counts are exactly reproducible), and on the
    # large dataset the Bt job is far slower in absolute terms.  The
    # time-growth *ratios* are reported but not asserted: they inherit
    # wall-clock noise from the simulating process.
    assert bt_growth > ytx_growth
    assert measurements["tweets"][1][1] > 2.0 * measurements["tweets"][0][1]
