"""Common result type for baseline PCA runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import PCAModel


@dataclass
class BaselineResult:
    """A fitted baseline plus the execution measurements the paper reports.

    Attributes:
        model: the fitted PCA model.
        simulated_seconds: simulated cluster running time.
        wall_seconds: actual single-process running time.
        intermediate_bytes: intermediate data produced across all jobs.
        peak_driver_bytes: peak driver memory (Figure 8's metric).
        accuracy_timeline: (simulated_seconds, accuracy) pairs for iterative
            baselines (empty for one-shot algorithms like MLlib-PCA).
    """

    model: PCAModel
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    intermediate_bytes: int = 0
    peak_driver_bytes: int = 0
    accuracy_timeline: list[tuple[float, float]] = field(default_factory=list)

    def time_to_accuracy(self, threshold: float) -> float | None:
        """First simulated time at which accuracy reached *threshold*."""
        for seconds, accuracy in self.accuracy_timeline:
            if accuracy >= threshold:
                return seconds
        return None
