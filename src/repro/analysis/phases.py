"""Per-phase cost breakdowns behind Table 1.

The companion technical report derives Table 1's totals phase by phase;
this module encodes those derivations as structured data so the totals can
be audited and so benchmarks can attribute measured costs to phases.  Each
method is a sequence of :class:`Phase` records with closed-form operation
and communication counts; summing (respectively maxing) them recovers the
Table 1 columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cost_model import COVARIANCE, PPCA, SSVD, SVD_BIDIAG
from repro.errors import ShapeError


@dataclass(frozen=True)
class Phase:
    """One synchronous phase of a distributed PCA method."""

    name: str
    description: str
    time_ops: float
    communication_elements: float


def phase_breakdown(method: str, n: int, d_cols: int, d: int) -> list[Phase]:
    """The phases of *method* on an N x D input with d components."""
    if n < 1 or d_cols < 1 or d < 1 or d > d_cols:
        raise ShapeError(f"invalid sizes {(n, d_cols, d)}")
    n = float(n)
    big_d = float(d_cols)
    small_d = float(d)
    if method == COVARIANCE:
        return [
            Phase(
                "gramian",
                "accumulate Y'Y as dense D x D partials",
                n * big_d * min(n, big_d),
                big_d**2,
            ),
            Phase(
                "eigendecomposition",
                "centralized eigh of the D x D covariance",
                big_d**3,
                0.0,
            ),
        ]
    if method == SVD_BIDIAG:
        return [
            Phase(
                "qr",
                "QR of the N x D input",
                n * big_d**2,
                n * small_d + big_d * small_d,
            ),
            Phase(
                "bidiagonalization",
                "Golub-Kahan reduction of R",
                big_d**3,
                big_d**2,
            ),
            Phase(
                "bidiagonal-svd",
                "SVD of the bidiagonal matrix",
                big_d**2,
                big_d**2,
            ),
        ]
    if method == SSVD:
        return [
            Phase(
                "sketch",
                "Y1 = A * Omega, materialized N x (d+p)",
                n * big_d * small_d,
                n * small_d,
            ),
            Phase(
                "orthonormalize",
                "QR of the sketch, Q materialized N x (d+p)",
                n * small_d**2,
                n * small_d,
            ),
            Phase(
                "projection",
                "B = Q' A, partials (d+p) x D",
                n * big_d * small_d,
                big_d * small_d,
            ),
            Phase(
                "small-svd",
                "centralized SVD of B",
                big_d * small_d**2,
                small_d**2,
            ),
        ]
    if method == PPCA:
        return [
            Phase(
                "ytx-xtx",
                "consolidated job: YtX (D x d) and XtX (d x d) partials",
                n * big_d * small_d,
                big_d * small_d,
            ),
            Phase(
                "ss3",
                "scalar variance part via X * (C' * y')",
                n * big_d * small_d,
                1.0,
            ),
            Phase(
                "driver-update",
                "C = YtX / XtX and the ss update, all d x d",
                big_d * small_d**2,
                0.0,
            ),
        ]
    raise ShapeError(f"unknown method: {method!r}")


def breakdown_totals(method: str, n: int, d_cols: int, d: int) -> tuple[float, float]:
    """(total time ops, max per-phase communication) for *method*.

    The communication column of Table 1 is a worst-case *per phase* (the
    data exchanged at a phase boundary), hence the max rather than a sum.
    """
    phases = phase_breakdown(method, n, d_cols, d)
    return (
        sum(phase.time_ops for phase in phases),
        max(phase.communication_elements for phase in phases),
    )
