"""Table 3: effect of each optimization on its distributed operation.

Paper setup: a 100K-row subset of Tweets on sPCA-Spark; each of the three
optimizations (mean propagation, intermediate-data minimization, sparse
Frobenius norm) is toggled and the affected operation timed.  Paper result:
orders of magnitude per optimization, mean propagation being the largest.
We additionally ablate the fourth documented optimization (job
consolidation).
"""

import numpy as np
import pytest

from harness import SPARK_COSTS, default_config
from repro.backends import SparkBackend
from repro.core import SPCA
from repro.data.generators import bag_of_words
from repro.data.paper import scaled_cluster
from repro.engine.spark.context import SparkContext

N_ROWS = 10_000  # the paper's 100K-row subset, scaled
N_COLS = 7_150


def _fresh_backend(config):
    return SparkBackend(
        config, SparkContext(cluster=scaled_cluster(), cost_model=SPARK_COSTS)
    )


def _stage_seconds(backend, names):
    return sum(j.sim_seconds for j in backend.context.metrics.jobs if j.name in names)


def _measure(data, config, operation, rounds: int = 3):
    """Simulated seconds of one operation under *config* (best of *rounds*).

    Measured task times feed the simulated clock, so a warm-up round plus
    best-of-N suppresses single-process timing noise.
    """
    backend = _fresh_backend(config)
    dataset = backend.load(data)
    mean = backend.column_means(dataset)
    rng = np.random.default_rng(3)
    d = config.n_components
    components = rng.normal(size=(N_COLS, d))
    moment_inv = np.linalg.inv(components.T @ components + 0.5 * np.eye(d))
    projector = components @ moment_inv
    latent_mean = mean @ projector

    samples = []
    for round_index in range(rounds):
        before = backend.context.metrics.total_sim_seconds
        if operation == "frobenius":
            backend.frobenius_centered(dataset, mean)
        else:
            backend.ytx_xtx(dataset, mean, projector, latent_mean)
            backend._drop_latent()  # ensure each round pays the X cost again
        samples.append(backend.context.metrics.total_sim_seconds - before)
    return min(samples[1:]) if rounds > 1 else samples[0]


@pytest.mark.benchmark(group="table3")
def test_table3_individual_optimizations(benchmark, report):
    data = bag_of_words(N_ROWS, N_COLS, words_per_doc=8.0, seed=33)
    base = default_config(compute_error_every_iteration=False)
    times = {}

    def run_all():
        times["mean_prop_on"] = _measure(data, base, "ytx")
        times["mean_prop_off"] = _measure(
            data, base.with_options(use_mean_propagation=False), "ytx"
        )
        times["interm_on"] = _measure(data, base, "ytx")
        times["interm_off"] = _measure(
            data, base.with_options(use_x_recomputation=False), "ytx"
        )
        times["frob_on"] = _measure(data, base, "frobenius")
        times["frob_off"] = _measure(
            data, base.with_options(use_efficient_frobenius=False), "frobenius"
        )
        return len(times)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"Table 3: per-operation time (sim s), Tweets subset {N_ROWS}x{N_COLS}")
    report(f"{'':<12}{'Mean Prop.':>12}{'Interm. Data':>14}{'Frobenius':>12}")
    report(
        f"{'W/ Opt.':<12}{times['mean_prop_on']:>12.2f}"
        f"{times['interm_on']:>14.2f}{times['frob_on']:>12.2f}"
    )
    report(
        f"{'W/O Opt.':<12}{times['mean_prop_off']:>12.2f}"
        f"{times['interm_off']:>14.2f}{times['frob_off']:>12.2f}"
    )
    report("")
    report(
        "speedups: mean propagation "
        f"{times['mean_prop_off'] / times['mean_prop_on']:.1f}x, "
        f"intermediate data {times['interm_off'] / times['interm_on']:.1f}x, "
        f"Frobenius {times['frob_off'] / times['frob_on']:.1f}x"
    )

    # Every optimization must speed its operation up; mean propagation is
    # the biggest win of the three, as in the paper.
    mean_prop_speedup = times["mean_prop_off"] / times["mean_prop_on"]
    interm_speedup = times["interm_off"] / times["interm_on"]
    frob_speedup = times["frob_off"] / times["frob_on"]
    assert mean_prop_speedup > 2.0
    assert interm_speedup > 1.2
    assert frob_speedup > 2.0
    assert mean_prop_speedup > interm_speedup


@pytest.mark.benchmark(group="table3")
def test_table3_job_consolidation(benchmark, report):
    """The fourth documented optimization: one job for YtX + XtX vs two."""
    data = bag_of_words(4_000, 1_000, words_per_doc=8.0, seed=34)
    base = default_config(max_iterations=3, compute_error_every_iteration=False)
    times = {}

    def run_all():
        for label, config in (
            ("consolidated", base),
            ("separate", base.with_options(use_job_consolidation=False)),
        ):
            backend = _fresh_backend(config)
            SPCA(config, backend).fit(data)
            times[label] = backend.simulated_seconds
        return len(times)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "Job consolidation: "
        f"consolidated={times['consolidated']:.2f}s, "
        f"separate jobs={times['separate']:.2f}s"
    )
    assert times["consolidated"] < times["separate"]
