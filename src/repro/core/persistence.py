"""Saving and loading fitted models and EM checkpoints.

Models and checkpoints are stored as ``.npz`` archives with a
format-version field so future releases can evolve the layout without
breaking old files.  Checkpoint archives carry the EM rng's bit-generator
state and the convergence tracker's memory as JSON strings (the PCG64
state holds 128-bit integers no fixed-width array dtype can carry), and
the training history as parallel primitive arrays.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import IO, Any, Callable

import numpy as np

from repro.core.checkpoint import EMCheckpoint
from repro.core.convergence import IterationStats
from repro.core.model import PCAModel
from repro.errors import CheckpointError, PersistenceError, ReproError, ShapeError

_FORMAT_VERSION = 1
_CHECKPOINT_FORMAT_VERSION = 1


def _atomic_write(path: pathlib.Path, write: Callable[[IO[bytes]], None]) -> None:
    """Write a file atomically: temp file in the same directory + ``os.replace``.

    A crash (or an injected fault) mid-save must never leave a truncated
    archive at *path*: the registry and checkpoint stores both rely on any
    file they can see being either the old complete version or the new
    complete version.  The temp file lives in the target's directory so the
    final rename never crosses a filesystem boundary.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _savez_atomic(path: pathlib.Path, **arrays: Any) -> None:
    # np.savez_compressed is handed an open file object, not a path: numpy
    # then neither appends a suffix nor writes in place.
    _atomic_write(path, lambda handle: np.savez_compressed(handle, **arrays))


def save_model(model: PCAModel, path: str | pathlib.Path) -> pathlib.Path:
    """Write *model* to an ``.npz`` archive; returns the path written.

    The ``.npz`` suffix is appended when missing (numpy does the same).
    The write is atomic: a crash mid-save leaves any previous archive at
    *path* untouched.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    _savez_atomic(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        components=model.components,
        mean=model.mean,
        noise_variance=np.float64(model.noise_variance),
        n_samples=np.int64(model.n_samples),
    )
    return path


def load_model(path: str | pathlib.Path) -> PCAModel:
    """Read a model previously written by :func:`save_model`.

    Raises:
        ShapeError: if the archive is missing fields or has an unsupported
            format version.
        PersistenceError: if the file is not a readable ``.npz`` archive
            (truncated write, corruption); the message names the path.
    """
    try:
        with np.load(path) as archive:
            missing = {
                "format_version", "components", "mean", "noise_variance", "n_samples"
            } - set(archive.files)
            if missing:
                raise ShapeError(f"model archive is missing fields: {sorted(missing)}")
            version = int(archive["format_version"])
            if version > _FORMAT_VERSION:
                raise ShapeError(
                    f"model archive format v{version} is newer than this library "
                    f"understands (v{_FORMAT_VERSION})"
                )
            return PCAModel(
                components=archive["components"],
                mean=archive["mean"],
                noise_variance=float(archive["noise_variance"]),
                n_samples=int(archive["n_samples"]),
            )
    except (ReproError, FileNotFoundError):
        raise
    except Exception as exc:
        # zipfile.BadZipFile, OSError mid-read, zlib errors, mangled headers:
        # everything a half-written or corrupted archive can throw.
        raise PersistenceError(
            f"corrupt or unreadable model archive at {path}: {exc}"
        ) from exc


def _nan_encode(value: float | None) -> float:
    return float("nan") if value is None else float(value)


def _nan_decode(value: float) -> float | None:
    return None if np.isnan(value) else float(value)


def save_checkpoint(
    checkpoint: EMCheckpoint, path: str | pathlib.Path
) -> pathlib.Path:
    """Write an EM *checkpoint* to an ``.npz`` archive; returns the path.

    Atomic like :func:`save_model`: a run killed mid-snapshot leaves the
    previous snapshot (if any) intact, which is what lets ``resume`` trust
    every file the checkpoint directory contains.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    history = checkpoint.history
    _savez_atomic(
        path,
        checkpoint_format_version=np.int64(_CHECKPOINT_FORMAT_VERSION),
        iteration=np.int64(checkpoint.iteration),
        components=checkpoint.components,
        mean=np.asarray(checkpoint.mean),
        noise_variance=np.float64(checkpoint.noise_variance),
        ss1=np.float64(checkpoint.ss1),
        previous_error=np.float64(_nan_encode(checkpoint.previous_error)),
        rng_state=json.dumps(checkpoint.rng_state),
        config=json.dumps(checkpoint.config),
        history_index=np.array([s.index for s in history], dtype=np.int64),
        history_noise_variance=np.array(
            [s.noise_variance for s in history], dtype=np.float64
        ),
        history_error=np.array(
            [_nan_encode(s.error) for s in history], dtype=np.float64
        ),
        history_accuracy=np.array(
            [_nan_encode(s.accuracy) for s in history], dtype=np.float64
        ),
        history_elapsed_seconds=np.array(
            [s.elapsed_seconds for s in history], dtype=np.float64
        ),
        history_simulated_seconds=np.array(
            [s.simulated_seconds for s in history], dtype=np.float64
        ),
        history_intermediate_bytes=np.array(
            [s.intermediate_bytes for s in history], dtype=np.int64
        ),
    )
    return path


_CHECKPOINT_FIELDS = {
    "checkpoint_format_version", "iteration", "components", "mean",
    "noise_variance", "ss1", "previous_error", "rng_state", "config",
    "history_index", "history_noise_variance", "history_error",
    "history_accuracy", "history_elapsed_seconds",
    "history_simulated_seconds", "history_intermediate_bytes",
}


def load_checkpoint(path: str | pathlib.Path) -> EMCheckpoint:
    """Read a checkpoint previously written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: if the archive is missing fields, has an
            unsupported format version, or is corrupt/unreadable.
    """
    try:
        return _load_checkpoint(path)
    except (ReproError, FileNotFoundError):
        raise
    except Exception as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint archive at {path}: {exc}"
        ) from exc


def _load_checkpoint(path: str | pathlib.Path) -> EMCheckpoint:
    with np.load(path) as archive:
        missing = _CHECKPOINT_FIELDS - set(archive.files)
        if missing:
            raise CheckpointError(
                f"checkpoint archive is missing fields: {sorted(missing)}"
            )
        version = int(archive["checkpoint_format_version"])
        if version > _CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint archive format v{version} is newer than this "
                f"library understands (v{_CHECKPOINT_FORMAT_VERSION})"
            )
        history = tuple(
            IterationStats(
                index=int(archive["history_index"][i]),
                noise_variance=float(archive["history_noise_variance"][i]),
                error=_nan_decode(archive["history_error"][i]),
                accuracy=_nan_decode(archive["history_accuracy"][i]),
                elapsed_seconds=float(archive["history_elapsed_seconds"][i]),
                simulated_seconds=float(archive["history_simulated_seconds"][i]),
                intermediate_bytes=int(archive["history_intermediate_bytes"][i]),
            )
            for i in range(len(archive["history_index"]))
        )
        return EMCheckpoint(
            iteration=int(archive["iteration"]),
            components=archive["components"],
            noise_variance=float(archive["noise_variance"]),
            mean=archive["mean"],
            ss1=float(archive["ss1"]),
            previous_error=_nan_decode(archive["previous_error"]),
            rng_state=json.loads(str(archive["rng_state"])),
            history=history,
            config=json.loads(str(archive["config"])),
        )
