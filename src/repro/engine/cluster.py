"""Cluster hardware description shared by both engines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class ClusterSpec:
    """A commodity cluster, described the way the paper describes theirs.

    The paper's testbed is 8 Amazon EC2 m3.2xlarge nodes: 8 cores and 32 GB
    of memory each (Section 5, "Cluster Specifications"), which is the
    default here.  Table 4 varies ``num_nodes`` to 2/4/8 (16/32/64 cores).

    Attributes:
        num_nodes: worker machines in the cluster.
        cores_per_node: parallel task slots per machine.
        memory_per_node_mb: executor memory per machine; the aggregate bounds
            how much RDD data Spark can cache.
        driver_memory_mb: memory of the single driver/master process; bounds
            driver-side allocations (the MLlib covariance matrix).
    """

    num_nodes: int = 8
    cores_per_node: int = 8
    memory_per_node_mb: float = 32 * 1024.0
    driver_memory_mb: float = 32 * 1024.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.cores_per_node < 1:
            raise ShapeError("cluster must have at least one node and one core")
        if self.memory_per_node_mb <= 0 or self.driver_memory_mb <= 0:
            raise ShapeError("memory sizes must be positive")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    @property
    def aggregate_memory_bytes(self) -> int:
        return int(self.num_nodes * self.memory_per_node_mb * 1024 * 1024)

    @property
    def driver_memory_bytes(self) -> int:
        return int(self.driver_memory_mb * 1024 * 1024)

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Same hardware per node, different node count (Table 4 sweeps)."""
        if num_nodes < 1:
            raise ShapeError(
                f"scaled() needs num_nodes >= 1, got {num_nodes} "
                "(a cluster cannot scale to zero machines)"
            )
        return ClusterSpec(
            num_nodes=num_nodes,
            cores_per_node=self.cores_per_node,
            memory_per_node_mb=self.memory_per_node_mb,
            driver_memory_mb=self.driver_memory_mb,
        )
