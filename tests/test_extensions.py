"""Extensions: missing-value PPCA and mixtures of PPCA."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ShapeError
from repro.extensions import MissingValuePPCA, MixtureOfPPCA
from repro.metrics import subspace_angle_degrees


def lowrank(n, d_cols, rank, noise, seed):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank)) * np.sqrt(np.arange(rank, 0, -1))
    loadings = rng.normal(size=(rank, d_cols))
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


def mask_random(data, fraction, seed):
    rng = np.random.default_rng(seed)
    masked = data.copy()
    holes = rng.random(data.shape) < fraction
    # keep at least one observation per row and column
    holes[:, 0] = False
    holes[0, :] = False
    masked[holes] = np.nan
    return masked, holes


class TestMissingValuePPCA:
    def test_recovers_subspace_with_missing_entries(self):
        data = lowrank(300, 20, 3, 0.05, seed=1)
        masked, _ = mask_random(data, 0.2, seed=2)
        model = MissingValuePPCA(n_components=3, max_iterations=80, seed=3).fit(masked)
        centered = data - data.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        assert subspace_angle_degrees(model.basis, vt[:3].T) < 5.0

    def test_matches_complete_data_ppca_when_nothing_missing(self):
        from repro.core import fit_ppca

        data = lowrank(200, 12, 2, 0.05, seed=4)
        missing_model = MissingValuePPCA(2, max_iterations=60, seed=5).fit(data)
        full_model = fit_ppca(data, 2, max_iterations=200, tolerance=1e-10, seed=6)
        assert subspace_angle_degrees(missing_model.basis, full_model.basis) < 2.0

    def test_imputation_beats_column_means(self):
        data = lowrank(400, 15, 3, 0.02, seed=7)
        masked, holes = mask_random(data, 0.15, seed=8)
        algorithm = MissingValuePPCA(3, max_iterations=80, seed=9)
        algorithm.fit(masked)
        imputed = algorithm.impute(masked)
        col_means = np.nanmean(masked, axis=0)
        baseline = np.where(np.isnan(masked), col_means, masked)
        model_error = np.abs(imputed[holes] - data[holes]).mean()
        baseline_error = np.abs(baseline[holes] - data[holes]).mean()
        assert model_error < 0.5 * baseline_error

    def test_impute_preserves_observed_entries(self):
        data = lowrank(100, 10, 2, 0.05, seed=10)
        masked, holes = mask_random(data, 0.1, seed=11)
        algorithm = MissingValuePPCA(2, max_iterations=40, seed=12)
        algorithm.fit(masked)
        imputed = algorithm.impute(masked)
        np.testing.assert_allclose(imputed[~holes], data[~holes])
        assert not np.isnan(imputed).any()

    def test_validation(self):
        with pytest.raises(ShapeError):
            MissingValuePPCA(2).fit(np.full((4, 4), np.nan))
        bad_row = np.ones((4, 4))
        bad_row[2, :] = np.nan
        with pytest.raises(ShapeError):
            MissingValuePPCA(2).fit(bad_row)
        bad_col = np.ones((4, 4))
        bad_col[:, 1] = np.nan
        with pytest.raises(ShapeError):
            MissingValuePPCA(2).fit(bad_col)
        with pytest.raises(ShapeError):
            MissingValuePPCA(9).fit(np.ones((4, 5)))

    def test_impute_requires_fit(self):
        with pytest.raises(ConvergenceError):
            MissingValuePPCA(2).impute(np.ones((3, 4)))


def two_cluster_data(seed=0, n_per=150, d_cols=12):
    rng = np.random.default_rng(seed)
    basis_a = rng.normal(size=(d_cols, 2))
    basis_b = rng.normal(size=(d_cols, 2))
    cluster_a = rng.normal(size=(n_per, 2)) @ basis_a.T + 6.0
    cluster_b = rng.normal(size=(n_per, 2)) @ basis_b.T - 6.0
    noise = 0.05 * rng.normal(size=(2 * n_per, d_cols))
    data = np.vstack([cluster_a, cluster_b]) + noise
    labels = np.array([0] * n_per + [1] * n_per)
    return data, labels


class TestMixtureOfPPCA:
    def test_separates_two_clusters(self):
        data, labels = two_cluster_data(seed=1)
        mixture = MixtureOfPPCA(n_components=2, n_clusters=2, seed=2).fit(data)
        predicted = mixture.predict(data)
        agreement = max(
            (predicted == labels).mean(), (predicted != labels).mean()
        )
        assert agreement > 0.95

    def test_beats_single_component_likelihood(self):
        data, _ = two_cluster_data(seed=3)
        two = MixtureOfPPCA(2, 2, seed=4).fit(data)
        one = MixtureOfPPCA(2, 1, seed=5).fit(data)
        assert two.log_likelihood_ > one.log_likelihood_

    def test_weights_sum_to_one(self):
        data, _ = two_cluster_data(seed=6)
        mixture = MixtureOfPPCA(2, 3, seed=7).fit(data)
        assert mixture.weights_.sum() == pytest.approx(1.0)
        assert (mixture.weights_ > 0).all()

    def test_likelihood_increases_monotonically_enough(self):
        data, _ = two_cluster_data(seed=8)
        mixture = MixtureOfPPCA(2, 2, max_iterations=1, seed=9).fit(data)
        first = mixture.log_likelihood_
        mixture = MixtureOfPPCA(2, 2, max_iterations=30, seed=9).fit(data)
        assert mixture.log_likelihood_ >= first - 1e-6

    def test_score_matches_training_likelihood(self):
        data, _ = two_cluster_data(seed=10)
        mixture = MixtureOfPPCA(2, 2, seed=11).fit(data)
        # score on training data equals the last E-step's likelihood up to
        # one extra M-step of improvement
        assert mixture.score(data) >= mixture.log_likelihood_ - 1e-6

    def test_validation(self):
        data, _ = two_cluster_data(seed=12)
        with pytest.raises(ShapeError):
            MixtureOfPPCA(0, 2).fit(data)
        with pytest.raises(ShapeError):
            MixtureOfPPCA(12, 2).fit(data)
        with pytest.raises(ShapeError):
            MixtureOfPPCA(2, 10_000).fit(data)
        with pytest.raises(ConvergenceError):
            MixtureOfPPCA(2, 2).predict(data)
