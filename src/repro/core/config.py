"""Configuration for sPCA runs, including per-optimization switches."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ShapeError


@dataclass(frozen=True)
class SPCAConfig:
    """All tunables of an sPCA run.

    The four ``use_*`` flags correspond one-to-one to the optimizations of
    Section 3 of the paper; disabling one reproduces the unoptimized variant
    measured in Table 3.  Disabling an optimization never changes the result
    (the paper: "our optimization ideas do not change any theoretical
    properties of PPCA"), only how much work and intermediate data the
    distributed execution produces.

    Attributes:
        n_components: number of principal components d (paper uses 50; the
            scaled-down experiments here default to 10).
        max_iterations: EM iteration budget; the paper's evaluation caps this
            at 10.
        tolerance: relative-change stop threshold on the reconstruction
            error; 0 disables it.
        target_accuracy: stop once accuracy reaches this fraction of
            ``ideal_accuracy`` (the paper uses 0.95).  Ignored when
            ``ideal_accuracy`` is None.
        ideal_accuracy: accuracy of an exact rank-d PCA on the same data; when
            provided, progress is reported as a percentage of this ideal.
        error_sample_fraction: fraction of rows sampled when estimating the
            reconstruction error (Section 5: "measuring the error only on a
            random subset of the rows").
        seed: seed for initialization and row sampling.
        use_mean_propagation: Section 3.1 -- keep Y sparse, propagate Ym.
        use_job_consolidation: Section 3.2 -- compute YtX and XtX in one job.
        use_x_recomputation: Section 3.2 -- recompute X on demand instead of
            materializing it as intermediate data.
        use_efficient_frobenius: Section 3.4 -- Algorithm 3 instead of
            Algorithm 2.
        smart_init: sPCA-SG (Section 5.2) -- warm-start C and ss by first
            fitting on a small random sample of rows.
        smart_init_fraction: fraction of rows in the warm-start sample.
        smart_init_iterations: EM iterations to spend on the sample.
        compute_error_every_iteration: set False to skip per-iteration error
            estimation (cheaper when only the final model matters).
        kernel_backend: which per-block kernel implementation the backends
            dispatch to -- ``"numpy"`` (the baseline), ``"fused"``
            (hand-fused numpy sharing intermediates across kernels, bitwise
            identical), or ``"numba"`` (optional compiled dense kernels;
            falls back to numpy with a warning when the package is
            missing).  See :mod:`repro.jobs.backends`.
    """

    n_components: int
    max_iterations: int = 10
    tolerance: float = 1e-3
    target_accuracy: float = 0.95
    ideal_accuracy: float | None = None
    error_sample_fraction: float = 1.0
    seed: int = 0
    use_mean_propagation: bool = True
    use_job_consolidation: bool = True
    use_x_recomputation: bool = True
    use_efficient_frobenius: bool = True
    smart_init: bool = False
    smart_init_fraction: float = 0.05
    smart_init_iterations: int = 5
    compute_error_every_iteration: bool = True
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ShapeError(f"n_components must be >= 1, got {self.n_components}")
        if self.max_iterations < 1:
            raise ShapeError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if not 0.0 < self.error_sample_fraction <= 1.0:
            raise ShapeError(
                f"error_sample_fraction must be in (0, 1], got {self.error_sample_fraction}"
            )
        if not 0.0 < self.smart_init_fraction <= 1.0:
            raise ShapeError(
                f"smart_init_fraction must be in (0, 1], got {self.smart_init_fraction}"
            )
        if self.tolerance < 0.0:
            raise ShapeError(f"tolerance must be >= 0, got {self.tolerance}")
        # Imported lazily: jobs.backends pulls in the kernel layer, which
        # must not load just because a config dataclass was imported.
        from repro.errors import ConfigError
        from repro.jobs.backends import KERNEL_BACKEND_NAMES

        if self.kernel_backend not in KERNEL_BACKEND_NAMES:
            raise ConfigError(
                f"unknown kernel backend {self.kernel_backend!r}; valid "
                f"choices: {', '.join(KERNEL_BACKEND_NAMES)}"
            )

    def unoptimized(self) -> "SPCAConfig":
        """Return a copy with every Section 3 optimization disabled."""
        return replace(
            self,
            use_mean_propagation=False,
            use_job_consolidation=False,
            use_x_recomputation=False,
            use_efficient_frobenius=False,
        )

    def with_options(self, **kwargs) -> "SPCAConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


# Field names of the ablatable optimizations, for the Table 3 harness.
OPTIMIZATION_FLAGS: tuple[str, ...] = (
    "use_mean_propagation",
    "use_job_consolidation",
    "use_x_recomputation",
    "use_efficient_frobenius",
)
