"""SparkContext: the driver's entry point, plus broadcasts and accumulators."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine.cluster import ClusterSpec
from repro.engine.exec import TaskExecutor, resolve_executor
from repro.engine.metrics import EngineMetrics, JobStats
from repro.engine.serde import sizeof
from repro.engine.simtime import (
    SPARK_LIKE_COSTS,
    CostModel,
    apply_speculative_execution,
    schedule_tasks,
)
from repro.engine.spark.memory import BlockManager, DriverMemoryMonitor
from repro.errors import InvalidPlanError, JobFailedError
from repro.faults import FaultInjector, FaultSite, RandomFaults
from repro.obs import (
    EventTrace,
    JobTrace,
    PhaseTrace,
    TaskTrace,
    get_tracer,
    record_job_stats,
)
from repro.obs.metrics import count_cache_hit, get_registry


class Broadcast:
    """A read-only value shipped once to every node (Section 4.2).

    sPCA broadcasts the small matrices (CM, Ym, Xm, C) so that workers can
    run the in-memory multiplication of Section 3.3.
    """

    def __init__(self, value: Any, nbytes: int):
        self._value = value
        self.nbytes = nbytes

    @property
    def value(self) -> Any:
        return self._value


class Accumulator:
    """An add-only shared variable; workers add, only the driver reads.

    ``add`` merges with the user-supplied associative operation and charges
    the serialized size of each added update as network traffic to the
    running stage -- so passing a *sparse* partial result genuinely reduces
    the measured communication, which is exactly the YtX optimization the
    paper describes at the end of Section 4.2.
    """

    def __init__(self, zero: Any, add_op: Callable[[Any, Any], Any], context: "SparkContext"):
        self._value = zero
        self._add_op = add_op
        self._context = context
        self.updates = 0
        self.bytes_added = 0

    def add(self, update: Any) -> None:
        # Inside a running task, updates are staged and committed only if
        # the task succeeds -- Spark's exactly-once accumulator guarantee
        # for actions.  Outside any task (driver code), apply directly.
        if not self._context._stage_accumulator_update(self, update):
            self._apply(update)

    def _apply(self, update: Any) -> None:
        self._value = self._add_op(self._value, update)
        nbytes = sizeof(update)
        self.updates += 1
        self.bytes_added += nbytes
        self._context._charge_accumulator_bytes(nbytes)

    @property
    def value(self) -> Any:
        """Driver-side read of the accumulated value."""
        return self._value


@dataclass
class _TaskScope:
    """Everything one concurrently-executing task attempt may observe/effect.

    Concurrent attempts must not touch shared driver state, so each attempt
    runs against a scope: a shadow ``JobStats`` for byte charges, deferred
    trace events, deferred cache puts (with a local overlay so the attempt
    sees its own puts), staged accumulator updates, and the lineage-recompute
    clock.  The driver commits scopes in task-index order, which is what
    makes concurrent execution bit-identical to the serial loop.
    """

    stats: JobStats
    events: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    fault_labels: list[str] = field(default_factory=list)
    puts: list[tuple[int, int, list, int]] = field(default_factory=list)
    overlay: dict[tuple[int, int], tuple[list, int]] = field(default_factory=dict)
    pending_updates: list[tuple["Accumulator", Any]] = field(default_factory=list)
    # Lost cached blocks this task recomputed: staged here (shared across
    # the task's retry attempts) instead of discarded from the context's
    # shared set mid-flight, which would race with sibling tasks reading it.
    # The driver applies the discards at commit.
    lost_discards: set[tuple[int, int]] = field(default_factory=set)
    recompute_seconds: float = 0.0
    recompute_depth: int = 0


@dataclass
class _ScopedAttempt:
    """One finished attempt of a scoped task, awaiting ordered commit."""

    scope: _TaskScope
    elapsed: float
    recompute: float
    label: str | None
    result: Any


class SparkContext:
    """Driver entry point: creates RDDs, broadcasts, accumulators.

    Args:
        cluster: simulated hardware (defaults to the paper's 8x8-core setup).
        cost_model: simulated-time parameters (Spark-like defaults).
        failure_rate: per-partition-computation failure probability; failed
            partitions are recomputed from lineage, as real Spark does.
            Shorthand for a :class:`~repro.faults.RandomFaults` injector.
        seed: seed for failure injection.
        faults: a :class:`~repro.faults.FaultInjector` consulted at every
            task attempt and stage start; overrides ``failure_rate``/``seed``
            (which build the default ``RandomFaults(failure_rate, seed)``,
            bit-compatible with the historical inline coin flip).  Stage
            directives can lose an executor (its cached blocks recompute
            from lineage, charged as recovery time) or cap the driver heap.
        enable_batch: when True (default) RDDs built with a ``batch_fn`` and
            backends that support partition-batched closures use the batched
            fast path; when False every record goes through the per-record
            closures (the regression-harness baseline).
        executor: a :class:`~repro.engine.exec.TaskExecutor`, an executor
            name (``serial``/``threads``/``processes``), or None for serial.
            Concurrent executors evaluate a stage's partitions in parallel
            and commit their side effects in partition-index order, keeping
            results, counters, byte totals, and trace-event multisets
            identical to serial.  Spark's partition functions are closures,
            which no pickle pipe can carry, so a ``processes`` executor runs
            stages on its thread-pool sibling (``closure_executor()``); the
            dispatch events carry a ``fallback_from`` marker.
        workers: worker count when ``executor`` is given by name.
    """

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        cost_model: CostModel = SPARK_LIKE_COSTS,
        failure_rate: float = 0.0,
        max_task_attempts: int = 4,
        seed: int = 0,
        enable_batch: bool = True,
        faults: FaultInjector | None = None,
        executor: TaskExecutor | str | None = None,
        workers: int | None = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise InvalidPlanError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self.cluster = cluster or ClusterSpec()
        self.cost_model = cost_model
        self.failure_rate = failure_rate
        self.max_task_attempts = max_task_attempts
        self.enable_batch = enable_batch
        self.metrics = EngineMetrics()
        self.driver = DriverMemoryMonitor(self.cluster.driver_memory_bytes)
        self.block_manager = BlockManager(self.cluster.aggregate_memory_bytes)
        self.faults = faults if faults is not None else RandomFaults(failure_rate, seed)
        self._next_rdd_id = 0
        self._stage_stats: JobStats | None = None
        self._pending_updates: list[tuple[Accumulator, Any]] | None = None
        # Lineage-recovery bookkeeping: cached blocks an injected executor
        # loss destroyed (their recomputation is charged as recovery time),
        # the put journal of the task attempt in flight (rolled back when
        # the attempt fails), and the recompute clock RDD._iterator bills.
        self._lost_blocks: set[tuple[int, int]] = set()
        self._put_journal: list[tuple[int, int]] | None = None
        self._recompute_seconds = 0.0
        self._recompute_depth = 0
        self.executor = resolve_executor(executor, workers)
        # Concurrent task attempts register a _TaskScope here; driver-side
        # code (and the serial path) sees no scope and uses the fields above.
        self._task_local = threading.local()

    def _active_scope(self) -> _TaskScope | None:
        return getattr(self._task_local, "scope", None)

    # -- RDD creation ----------------------------------------------------

    def parallelize(self, items: Iterable[Any], num_partitions: int | None = None):
        from repro.engine.spark.rdd import RDD

        items = list(items)
        if not items:
            raise InvalidPlanError("cannot parallelize an empty collection")
        if num_partitions is None:
            num_partitions = min(self.cluster.total_cores, len(items))
        if num_partitions < 1:
            raise InvalidPlanError(f"num_partitions must be >= 1, got {num_partitions}")
        num_partitions = min(num_partitions, len(items))
        boundaries = np.linspace(0, len(items), num_partitions + 1, dtype=int)
        partitions = [
            items[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:]) if hi > lo
        ]
        return RDD._from_partitions(self, partitions)

    def from_hdfs(self, hdfs, path: str, num_partitions: int | None = None):
        """Create an RDD from a dataset in the simulated distributed FS.

        Mirrors ``sc.textFile``: the read is charged to the filesystem's
        counters and, as simulated disk time, to the first stage that
        materializes the RDD's partitions.
        """
        from repro.engine.spark.rdd import RDD

        records = hdfs.read(path)
        nbytes = hdfs.size(path)
        rdd = self.parallelize(records, num_partitions)
        read_stats = JobStats(name="hdfsRead", hdfs_read_bytes=nbytes)
        read_stats.sim_seconds = self.cost_model.disk_seconds(nbytes)
        record_job_stats(
            self.metrics, read_stats, phase_name="hdfs read",
            events=[EventTrace("hdfs_read", 0.0, {"bytes": nbytes, "path": path})],
        )
        return rdd

    def save_to_hdfs(self, rdd, hdfs, path: str) -> int:
        """Collect *rdd* and write it to the simulated distributed FS.

        Mirrors ``rdd.saveAsTextFile``: each partition's records are
        written out; the write is charged as disk time.  Returns the
        logical byte size written.
        """
        records = rdd.collect()
        nbytes = hdfs.write(path, [(i, record) for i, record in enumerate(records)])
        write_stats = JobStats(name="hdfsWrite", hdfs_write_bytes=nbytes)
        write_stats.sim_seconds = self.cost_model.disk_seconds(nbytes)
        record_job_stats(
            self.metrics, write_stats, phase_name="hdfs write",
            events=[EventTrace("hdfs_write", 0.0, {"bytes": nbytes, "path": path})],
        )
        return nbytes

    # -- shared variables -------------------------------------------------

    def broadcast(self, value: Any) -> Broadcast:
        """Ship *value* to every node, charging one copy per node."""
        nbytes = sizeof(value)
        total = nbytes * self.cluster.num_nodes
        stats = JobStats(name="broadcast", broadcast_bytes=total)
        stats.sim_seconds = self.cost_model.network_seconds(total)
        record_job_stats(
            self.metrics, stats, phase_name="broadcast transfer",
            events=[EventTrace("broadcast", 0.0,
                               {"bytes": total, "per_node_bytes": nbytes})],
        )
        return Broadcast(value, nbytes)

    def accumulator(
        self, zero: Any, add_op: Callable[[Any, Any], Any] | None = None
    ) -> Accumulator:
        if add_op is None:
            add_op = lambda a, b: a + b
        return Accumulator(zero, add_op, self)

    # -- job execution (used by RDD actions) ------------------------------

    def new_rdd_id(self) -> int:
        rdd_id = self._next_rdd_id
        self._next_rdd_id += 1
        return rdd_id

    def run_job(self, rdd, partition_fn: Callable[[list], Any], name: str) -> list[Any]:
        """Evaluate *partition_fn* over every partition of *rdd*.

        This is the engine's stage executor: it measures per-partition
        compute time, injects failures (recomputing from lineage on
        failure), charges result bytes as driver traffic, and converts it
        all into simulated seconds.
        """
        stats = JobStats(name=name, n_map_tasks=rdd.num_partitions)
        self._apply_stage_directives(self.faults.begin_job("spark", name), stats)
        previous = self._stage_stats
        self._stage_stats = stats
        started = time.perf_counter()
        results = []
        task_seconds = []
        recovery_seconds = []
        task_retries = []
        try:
            if self.executor.serial:
                for split in range(rdd.num_partitions):
                    result, seconds, recovery, retries = self._attempt_partition(
                        rdd, split, partition_fn, stats
                    )
                    results.append(result)
                    task_seconds.append(seconds)
                    recovery_seconds.append(recovery)
                    task_retries.append(retries)
            else:
                # Fault decisions precomputed per partition in index order
                # (the serial loop's draw order); pure scoped execution on
                # the executor; side effects committed in index order below.
                plans = [
                    self.faults.plan_task(
                        FaultSite("spark", name, "task", split, 0),
                        self.max_task_attempts,
                    )
                    for split in range(rdd.num_partitions)
                ]

                def run_one(split: int) -> list[_ScopedAttempt]:
                    return self._execute_partition_scoped(
                        rdd, split, partition_fn, name, plans[split]
                    )

                attempt_lists = self.executor.closure_executor().run_tasks(
                    run_one, list(range(rdd.num_partitions)), label=name
                )
                for split, attempts in enumerate(attempt_lists):
                    result, seconds, recovery, retries = (
                        self._commit_scoped_attempts(attempts, stats, split)
                    )
                    results.append(result)
                    task_seconds.append(seconds)
                    recovery_seconds.append(recovery)
                    task_retries.append(retries)
        finally:
            self._stage_stats = previous
        result_bytes = sizeof(results)
        stats.driver_result_bytes = result_bytes + stats.driver_result_bytes
        self.driver.transient(result_bytes, what=f"results of {name}")
        stats.wall_seconds = time.perf_counter() - started
        cost = self.cost_model
        capped = apply_speculative_execution(task_seconds)
        # Recovery time (failed attempts redone, lost cached partitions
        # recomputed from lineage) is charged on top of the capped useful
        # time: a speculative copy of a task cannot refund the work the
        # fault already wasted.
        tasks = [
            t * cost.compute_scale
            + cost.per_task_overhead_s
            + recovery_seconds[i] * cost.compute_scale
            for i, t in enumerate(capped)
        ]
        stats.recovery_sim_seconds = sum(recovery_seconds) * cost.compute_scale
        schedule = schedule_tasks(tasks, self.cluster.total_cores)
        seconds = cost.per_job_overhead_s
        tasks_start = seconds
        seconds += max((p.end for p in schedule), default=0.0)
        collect_start = seconds
        seconds += cost.network_seconds(stats.driver_result_bytes)
        spill_start = seconds
        seconds += cost.disk_seconds(stats.hdfs_read_bytes)
        stats.sim_seconds = seconds

        tracer = get_tracer()
        if tracer.enabled:
            placed = [
                TaskTrace(
                    task_id=p.task_id, slot=p.slot, start=p.start,
                    duration=p.duration, retries=task_retries[p.task_id],
                    speculative_kill=capped[p.task_id] < task_seconds[p.task_id],
                    wall_seconds=task_seconds[p.task_id],
                )
                for p in schedule
            ]
            phases = [
                PhaseTrace("stage init", 0.0, tasks_start),
                PhaseTrace("tasks", tasks_start, collect_start - tasks_start,
                           tasks=placed),
            ]
            events = []
            if stats.driver_result_bytes:
                phases.append(
                    PhaseTrace("driver collect", collect_start,
                               spill_start - collect_start,
                               attrs={"bytes": stats.driver_result_bytes})
                )
                events.append(
                    EventTrace("driver_collect", collect_start,
                               {"bytes": stats.driver_result_bytes})
                )
            if stats.hdfs_read_bytes:
                phases.append(
                    PhaseTrace("cache spill read", spill_start,
                               seconds - spill_start,
                               attrs={"bytes": stats.hdfs_read_bytes})
                )
                events.append(
                    EventTrace("hdfs_read", spill_start,
                               {"bytes": stats.hdfs_read_bytes})
                )
            tracer.record_job(JobTrace.from_stats(stats, phases=phases, events=events))
        self.metrics.record(stats)
        return results

    def _attempt_partition(
        self, rdd, split, partition_fn, stats
    ) -> tuple[Any, float, float, int]:
        """Run one partition, retrying on injected faults.

        Returns ``(result, success_seconds, recovery_seconds, retries)``:
        the successful attempt's own compute time (what speculative
        execution may cap) separated from the recovery time -- failed
        attempts plus lineage recomputation of lost cached blocks, which
        no speculative copy can refund.
        """
        tracer = get_tracer()
        recovery_seconds = 0.0
        for attempt in range(1, self.max_task_attempts + 1):
            self._pending_updates = []
            self._put_journal = []
            self._recompute_seconds = 0.0
            started = time.perf_counter()
            data = rdd._iterator(split, stats)
            result = partition_fn(data)
            elapsed = time.perf_counter() - started
            site = FaultSite("spark", stats.name, "task", split, attempt)
            factor = self.faults.time_factor(site)
            if factor != 1.0:
                elapsed *= factor
                stats.count_fault("straggler")
                if tracer.enabled:
                    tracer.event(
                        "fault_injected", fault="straggler", job=stats.name,
                        kind="task", task=split, attempt=attempt, factor=factor,
                    )
            recompute = min(self._recompute_seconds, elapsed)
            label = self.faults.fail(site)
            if label is None:
                pending, self._pending_updates = self._pending_updates, None
                self._put_journal = None
                for accumulator, update in pending:
                    accumulator._apply(update)
                recovery_seconds += recompute
                return result, elapsed - recompute, recovery_seconds, attempt - 1
            # The attempt failed after doing its work: its cached puts are
            # rolled back (the executor that held them died with the task)
            # and all of its time becomes recovery time.
            journal, self._put_journal = self._put_journal, None
            for rdd_id, journal_split in journal:
                self.block_manager.evict_matching(
                    lambda key, k=(rdd_id, journal_split): key == k
                )
            self._pending_updates = None
            stats.task_retries += 1
            stats.count_fault(label)
            recovery_seconds += elapsed
            if tracer.enabled:
                tracer.event(
                    "fault_injected", fault=label, job=stats.name,
                    kind="task", task=split, attempt=attempt,
                )
        raise JobFailedError(
            f"stage {stats.name!r}: partition {split} failed "
            f"{self.max_task_attempts} times"
        )

    # -- concurrent stage execution ---------------------------------------

    def _execute_partition_scoped(
        self, rdd, split: int, partition_fn, job_name: str, plan
    ) -> list[_ScopedAttempt]:
        """Run one partition's retry loop under task scopes (executor side).

        Pure with respect to driver state: every observable lands in the
        attempt's :class:`_TaskScope` and is committed by the driver in
        partition-index order.
        """
        tracer = get_tracer()
        attempts: list[_ScopedAttempt] = []
        # One discard set for the whole retry loop: a block recomputed by a
        # failed attempt is no longer "lost" for the retry, exactly as the
        # serial loop's immediate discard behaved.
        lost_discards: set[tuple[int, int]] = set()
        for attempt, (factor, label) in enumerate(plan, 1):
            scope = _TaskScope(
                stats=JobStats(name=job_name), lost_discards=lost_discards
            )
            self._task_local.scope = scope
            started = time.perf_counter()
            try:
                data = rdd._iterator(split, scope.stats)
                result = partition_fn(data)
            finally:
                self._task_local.scope = None
            elapsed = time.perf_counter() - started
            if factor != 1.0:
                elapsed *= factor
                scope.fault_labels.append("straggler")
                if tracer.enabled:
                    scope.events.append((
                        "fault_injected",
                        dict(fault="straggler", job=job_name, kind="task",
                             task=split, attempt=attempt, factor=factor),
                    ))
            recompute = min(scope.recompute_seconds, elapsed)
            if label is None:
                attempts.append(
                    _ScopedAttempt(scope, elapsed, recompute, None, result)
                )
                return attempts
            scope.fault_labels.append(label)
            if tracer.enabled:
                scope.events.append((
                    "fault_injected",
                    dict(fault=label, job=job_name, kind="task",
                         task=split, attempt=attempt),
                ))
            attempts.append(_ScopedAttempt(scope, elapsed, recompute, label, None))
        return attempts

    def _commit_scoped_attempts(
        self, attempts: list[_ScopedAttempt], stats: JobStats, split: int
    ) -> tuple[Any, float, float, int]:
        """Apply one task's scoped attempts to driver state, in order.

        Mirrors the serial :meth:`_attempt_partition` effect-for-effect: a
        failed attempt's cache puts are applied then evicted (the same
        put/evict churn and trace events the serial rollback produced), its
        time becomes recovery time; the successful attempt commits its puts
        and staged accumulator updates.
        """
        tracer = get_tracer()
        registry = get_registry()
        recovery_seconds = 0.0
        for retries, outcome in enumerate(attempts):
            scope = outcome.scope
            # Idempotent: every attempt of the task shares one discard set.
            self._lost_blocks.difference_update(scope.lost_discards)
            # Replay the attempt's buffered events into both sinks here on
            # the driver thread (tasks never touch tracer/registry directly).
            for event_type, attrs in scope.events:
                if tracer.enabled:
                    tracer.event(event_type, **attrs)
                if registry.enabled and event_type == "cache_hit":
                    count_cache_hit(registry, int(attrs.get("bytes", 0)))
            for label in scope.fault_labels:
                stats.count_fault(label)
            stats.hdfs_read_bytes += scope.stats.hdfs_read_bytes
            stats.shuffle_bytes += scope.stats.shuffle_bytes
            for rdd_id, put_split, data, nbytes in scope.puts:
                self.block_manager.put(rdd_id, put_split, data, nbytes)
            if outcome.label is None:
                for accumulator, update in scope.pending_updates:
                    accumulator._apply(update)
                recovery_seconds += outcome.recompute
                return (
                    outcome.result,
                    outcome.elapsed - outcome.recompute,
                    recovery_seconds,
                    retries,
                )
            for rdd_id, put_split, _data, _nbytes in scope.puts:
                self.block_manager.evict_matching(
                    lambda key, k=(rdd_id, put_split): key == k
                )
            stats.task_retries += 1
            recovery_seconds += outcome.elapsed
        raise JobFailedError(
            f"stage {stats.name!r}: partition {split} failed "
            f"{self.max_task_attempts} times"
        )

    def _apply_stage_directives(self, directives, stats: JobStats) -> None:
        """Apply stage-start fault directives (executor loss, driver cap)."""
        for executor in directives.executor_losses:
            self._lose_executor(executor, stats)
        if directives.driver_memory_cap is not None:
            cap = min(self.driver.limit_bytes, int(directives.driver_memory_cap))
            self.driver.limit_bytes = cap
            stats.count_fault("driver_memory_cap")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "fault_injected", fault="driver_memory_cap",
                    job=stats.name, limit_bytes=cap,
                )

    def _lose_executor(self, executor: int, stats: JobStats) -> None:
        """Drop every cached block hosted on *executor*.

        Blocks live on node ``split % num_nodes`` (the same placement the
        scheduler uses); the lost ones are marked so RDD._iterator charges
        their lineage recomputation as recovery time.
        """
        nodes = self.cluster.num_nodes
        evicted = self.block_manager.evict_matching(
            lambda key: key[1] % nodes == executor % nodes
        )
        for key, _nbytes, _on_disk in evicted:
            self._lost_blocks.add(key)
        stats.count_fault("executor_loss")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "fault_injected", fault="executor_loss", job=stats.name,
                executor=executor % nodes, lost_blocks=len(evicted),
                lost_bytes=sum(nbytes for _k, nbytes, _d in evicted),
            )

    def _journal_put(self, rdd_id: int, split: int) -> None:
        """Record a cache put by the in-flight task attempt (for rollback)."""
        if self._put_journal is not None:
            self._put_journal.append((rdd_id, split))

    def _stage_accumulator_update(self, accumulator: Accumulator, update: Any) -> bool:
        """Buffer an in-task accumulator update; False when no task runs."""
        scope = self._active_scope()
        if scope is not None:
            scope.pending_updates.append((accumulator, update))
            return True
        if self._pending_updates is None:
            return False
        self._pending_updates.append((accumulator, update))
        return True

    def _charge_accumulator_bytes(self, nbytes: int) -> None:
        if self._stage_stats is not None:
            self._stage_stats.driver_result_bytes += nbytes
