"""Unit tests for the per-block kernels shared by all backends."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs import (
    block_error_parts,
    block_frobenius,
    block_latent,
    block_ss3,
    block_sums,
    block_ytx_xtx,
)
from repro.jobs.kernels import error_from_colsums


@pytest.fixture
def setting():
    rng = np.random.default_rng(51)
    block = sp.random(40, 25, density=0.2, random_state=2, format="csr")
    mean = np.asarray(block.mean(axis=0)).ravel() + 0.1
    projector = rng.normal(size=(25, 4))
    latent_mean = mean @ projector
    components = rng.normal(size=(25, 4))
    return block, mean, projector, latent_mean, components


def dense_centered(block, mean):
    return np.asarray(block.todense()) - mean


class TestBlockSums:
    def test_matches_numpy(self, setting):
        block, *_ = setting
        sums, count = block_sums(block)
        np.testing.assert_allclose(sums, np.asarray(block.sum(axis=0)).ravel())
        assert count == 40


class TestBlockLatent:
    def test_mean_propagation_equals_dense(self, setting):
        block, mean, projector, latent_mean, _ = setting
        propagated = block_latent(block, mean, projector, latent_mean, True)
        densified = block_latent(block, mean, projector, latent_mean, False)
        expected = dense_centered(block, mean) @ projector
        np.testing.assert_allclose(propagated, expected, atol=1e-10)
        np.testing.assert_allclose(densified, expected, atol=1e-10)


class TestBlockYtxXtx:
    def test_both_paths_equal_dense_reference(self, setting):
        block, mean, projector, latent_mean, _ = setting
        centered = dense_centered(block, mean)
        latent = centered @ projector
        expected_ytx = centered.T @ latent
        expected_xtx = latent.T @ latent
        for mean_prop in (True, False):
            ytx, xtx = block_ytx_xtx(block, mean, projector, latent_mean, mean_prop)
            np.testing.assert_allclose(ytx, expected_ytx, atol=1e-9)
            np.testing.assert_allclose(xtx, expected_xtx, atol=1e-9)

    def test_precomputed_latent_used(self, setting):
        block, mean, projector, latent_mean, _ = setting
        latent = block_latent(block, mean, projector, latent_mean, True)
        ytx_a, xtx_a = block_ytx_xtx(block, mean, projector, latent_mean, True)
        ytx_b, xtx_b = block_ytx_xtx(
            block, mean, projector, latent_mean, True, latent=latent
        )
        np.testing.assert_allclose(ytx_a, ytx_b)
        np.testing.assert_allclose(xtx_a, xtx_b)


class TestBlockSS3:
    def test_matches_dense_reference(self, setting):
        block, mean, projector, latent_mean, components = setting
        centered = dense_centered(block, mean)
        latent = centered @ projector
        expected = float(np.sum((centered @ components) * latent))
        for mean_prop in (True, False):
            result = block_ss3(
                block, mean, projector, latent_mean, components, mean_prop
            )
            assert result == pytest.approx(expected, abs=1e-9)


class TestBlockFrobenius:
    def test_algorithms_agree(self, setting):
        block, mean, *_ = setting
        fast = block_frobenius(block, mean, efficient=True)
        slow = block_frobenius(block, mean, efficient=False)
        assert fast == pytest.approx(slow)


class TestBlockErrorParts:
    def test_colsum_protocol(self, setting):
        block, mean, _, _, components = setting
        ls_projector = components @ np.linalg.inv(components.T @ components)
        residual, magnitude = block_error_parts(
            block, mean, components, ls_projector, True
        )
        assert residual.shape == (25,)
        assert magnitude.shape == (25,)
        np.testing.assert_allclose(
            magnitude, np.abs(np.asarray(block.todense())).sum(axis=0)
        )

    def test_mean_prop_matches_densified(self, setting):
        block, mean, _, _, components = setting
        ls_projector = components @ np.linalg.inv(components.T @ components)
        prop = block_error_parts(block, mean, components, ls_projector, True)
        dense = block_error_parts(block, mean, components, ls_projector, False)
        np.testing.assert_allclose(prop[0], dense[0], atol=1e-9)
        np.testing.assert_allclose(prop[1], dense[1], atol=1e-9)

    def test_error_from_colsums(self):
        residual = np.array([1.0, 8.0, 2.0])
        magnitude = np.array([10.0, 16.0, 1.0])
        assert error_from_colsums(residual, magnitude) == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=15),
    d_cols=st.integers(min_value=2, max_value=12),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_blocks_additive(n, d_cols, k, seed):
    """Partial results from split blocks must sum to the whole-block result."""
    rng = np.random.default_rng(seed)
    block = sp.random(n, d_cols, density=0.5, random_state=seed % 2**31, format="csr")
    mean = rng.normal(size=d_cols)
    projector = rng.normal(size=(d_cols, k))
    latent_mean = mean @ projector
    half = n // 2
    top, bottom = block[:half], block[half:]
    whole_ytx, whole_xtx = block_ytx_xtx(block, mean, projector, latent_mean, True)
    parts = [
        block_ytx_xtx(part, mean, projector, latent_mean, True)
        for part in (top, bottom)
        if part.shape[0] > 0
    ]
    sum_ytx = sum(p[0] for p in parts)
    sum_xtx = sum(p[1] for p in parts)
    np.testing.assert_allclose(sum_ytx, whole_ytx, atol=1e-8)
    np.testing.assert_allclose(sum_xtx, whole_xtx, atol=1e-8)
