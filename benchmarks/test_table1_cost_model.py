"""Table 1: analytical complexity of the PCA methods + empirical validation.

Prints the paper's Table 1 evaluated at the Tweets dimensions, then checks
the communication-complexity column *empirically*: measured intermediate
bytes of the engine implementations must scale with D (and not with N) the
way the formulas say.
"""

import pytest

from harness import run_mahout, run_mllib, run_spca
from repro.analysis import table1
from repro.analysis.cost_model import COVARIANCE, PPCA
from repro.data.generators import bag_of_words


@pytest.mark.benchmark(group="table1")
def test_table1_cost_model(benchmark, report):
    measurements = {}

    def run_all():
        # Column sizes stay below the scaled MLlib failure boundary (600)
        # so all three algorithms complete.
        for label, n_rows, n_cols in (
            ("smallD", 3000, 200),
            ("bigD", 3000, 600),
            ("bigN", 18000, 200),
        ):
            data = bag_of_words(n_rows, n_cols, seed=55)
            measurements[label] = {
                "spca": run_spca(data, "spark", d=10),
                "mllib": run_mllib(data, d=10),
                "mahout": run_mahout(data, d=10, compute_accuracy=False),
            }
        return len(measurements)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    n, d_cols, d = 1_264_812_931, 71_503, 50
    report(f"Table 1 evaluated at Tweets scale (N={n:,}, D={d_cols:,}, d={d})")
    report(f"{'Method':<28}{'Time':<22}{'Communication':<26}{'Libraries'}")
    for row in table1(n, d_cols, d):
        report(
            f"{row.method:<28}{row.time_formula:<22}"
            f"{row.communication_formula:<26}{row.example_libraries}"
        )
    report()
    report("Empirical check of the communication column (measured bytes):")
    for label, ms in measurements.items():
        report(
            f"  {label:<8} sPCA={ms['spca'].intermediate_bytes:>12,}  "
            f"MLlib={ms['mllib'].intermediate_bytes:>12,}  "
            f"Mahout={ms['mahout'].intermediate_bytes:>12,}"
        )

    small, big_d, big_n = measurements["smallD"], measurements["bigD"], measurements["bigN"]

    # Covariance/MLlib: communication O(D^2) -- tripling D gives ~9x bytes,
    # tripling N changes little.
    mllib_d_ratio = big_d["mllib"].intermediate_bytes / small["mllib"].intermediate_bytes
    mllib_n_ratio = big_n["mllib"].intermediate_bytes / small["mllib"].intermediate_bytes
    assert mllib_d_ratio > 5.0
    assert mllib_n_ratio < 2.0

    # PPCA/sPCA: communication O(D*d) -- sub-quadratic in D, ~flat in N.
    spca_d_ratio = big_d["spca"].intermediate_bytes / small["spca"].intermediate_bytes
    spca_n_ratio = big_n["spca"].intermediate_bytes / small["spca"].intermediate_bytes
    assert spca_d_ratio < mllib_d_ratio
    assert spca_n_ratio < 3.0

    # SSVD/Mahout: communication has the O(N*d) term -- grows with N far
    # faster than sPCA's does.
    mahout_n_ratio = big_n["mahout"].intermediate_bytes / small["mahout"].intermediate_bytes
    assert mahout_n_ratio > 2.0
    assert mahout_n_ratio > spca_n_ratio

    # Sanity on the analytical table itself.
    rows = {row.method: row for row in table1(n, d_cols, d)}
    assert rows[PPCA].communication_elements < rows[COVARIANCE].communication_elements
