"""Checkpoint/resume: a killed EM run continues to the bit-identical model.

The fit is killed at every possible iteration boundary by an unrecoverable
fault plan, resumed from the newest snapshot with a fresh backend, and the
final model, per-iteration history, and stop reason must match the
uninterrupted run exactly -- including the sampled reconstruction error,
whose rng state rides along in the snapshot.
"""

import numpy as np
import pytest

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.core import (
    SPCA,
    CheckpointPolicy,
    DirectoryCheckpointStore,
    EMCheckpoint,
    HDFSCheckpointStore,
    SPCAConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.convergence import IterationStats
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.errors import CheckpointError, JobFailedError
from repro.faults import FaultPlan, KillTask, PlannedFaults

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)
CONFIG = SPCAConfig(
    n_components=3, max_iterations=4, tolerance=0.0, target_accuracy=None,
    seed=13, error_sample_fraction=0.5, compute_error_every_iteration=True,
)
BACKENDS = ["mapreduce", "spark"]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(33)
    return rng.normal(size=(60, 10)) @ rng.normal(size=(10, 10))


def make_backend(name, plan=None, executor=None):
    faults = PlannedFaults(plan) if plan is not None else None
    if name == "mapreduce":
        return MapReduceBackend(
            CONFIG,
            runtime=MapReduceRuntime(
                cluster=CLUSTER, faults=faults, executor=executor
            ),
        )
    if name == "spark":
        return SparkBackend(
            CONFIG,
            context=SparkContext(cluster=CLUSTER, faults=faults, executor=executor),
        )
    return SequentialBackend(CONFIG)


def history_tuples(history):
    return [
        (s.index, s.noise_variance, s.error, s.accuracy)
        for s in history.iterations
    ]


def kill_plan(after_iteration):
    """A plan that kills the fit during iteration ``after_iteration + 1``.

    YtXJob runs once per iteration, so killing its Nth occurrence (0-based)
    with all attempts exhausted aborts iteration N+1 before its checkpoint.
    """
    return FaultPlan(
        events=(KillTask(job="YtXJob", occurrence=after_iteration, attempts=4),)
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestKillAndResume:
    def test_resume_at_every_iteration_boundary_is_bit_identical(
        self, backend_name, data
    ):
        clean_model, clean_history = SPCA(CONFIG, make_backend(backend_name)).fit(data)
        for boundary in range(1, CONFIG.max_iterations):
            hdfs = InMemoryHDFS()
            store = HDFSCheckpointStore(hdfs)
            with pytest.raises(JobFailedError):
                SPCA(CONFIG, make_backend(backend_name, kill_plan(boundary))).fit(
                    data, checkpoint=store
                )
            assert store.iterations() == list(range(1, boundary + 1))
            model, history = SPCA(CONFIG, make_backend(backend_name)).resume(
                data, store
            )
            assert np.array_equal(model.components, clean_model.components)
            assert np.array_equal(model.mean, clean_model.mean)
            assert model.noise_variance == clean_model.noise_variance
            assert history_tuples(history) == history_tuples(clean_history)
            assert history.stop_reason == clean_history.stop_reason

    def test_killed_before_any_checkpoint_raises(self, backend_name, data):
        store = HDFSCheckpointStore(InMemoryHDFS())
        plan = kill_plan(0)  # dies in iteration 1, before the first snapshot
        with pytest.raises(JobFailedError):
            SPCA(CONFIG, make_backend(backend_name, plan)).fit(data, checkpoint=store)
        assert store.iterations() == []
        with pytest.raises(CheckpointError, match="empty"):
            SPCA(CONFIG, make_backend(backend_name)).resume(data, store)

    def test_checkpointing_does_not_perturb_the_fit(self, backend_name, data):
        plain_model, plain_history = SPCA(CONFIG, make_backend(backend_name)).fit(data)
        store = HDFSCheckpointStore(InMemoryHDFS())
        ckpt_model, ckpt_history = SPCA(CONFIG, make_backend(backend_name)).fit(
            data, checkpoint=store
        )
        assert np.array_equal(ckpt_model.components, plain_model.components)
        assert ckpt_model.noise_variance == plain_model.noise_variance
        assert history_tuples(ckpt_history) == history_tuples(plain_history)


@pytest.mark.parametrize(
    "backend_name,executor_name",
    [("mapreduce", "processes"), ("mapreduce", "threads"), ("spark", "threads")],
)
class TestKillAndResumeUnderExecutors:
    """Executor x faults x checkpoint: the full recovery path, concurrent.

    A run under a concurrent executor is killed mid-fit by an unrecoverable
    fault plan, leaves the same checkpoints behind as a serial kill, and a
    concurrent resume reaches the bit-identical model of a clean serial fit.
    """

    def test_killed_concurrent_run_resumes_bit_identical(
        self, backend_name, executor_name, data
    ):
        from repro.engine.exec import make_executor

        clean_model, clean_history = SPCA(CONFIG, make_backend(backend_name)).fit(data)
        with make_executor(executor_name, workers=2) as executor:
            store = HDFSCheckpointStore(InMemoryHDFS())
            killed = make_backend(backend_name, kill_plan(2), executor=executor)
            with pytest.raises(JobFailedError):
                SPCA(CONFIG, killed).fit(data, checkpoint=store)
            assert store.iterations() == [1, 2]
            model, history = SPCA(
                CONFIG, make_backend(backend_name, executor=executor)
            ).resume(data, store)
        assert np.array_equal(model.components, clean_model.components)
        assert np.array_equal(model.mean, clean_model.mean)
        assert model.noise_variance == clean_model.noise_variance
        assert history_tuples(history) == history_tuples(clean_history)
        assert history.stop_reason == clean_history.stop_reason


class TestStores:
    def test_directory_store_round_trip(self, data, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "ckpts")
        clean_model, clean_history = SPCA(CONFIG, make_backend("mapreduce")).fit(data)
        with pytest.raises(JobFailedError):
            SPCA(CONFIG, make_backend("mapreduce", kill_plan(2))).fit(
                data, checkpoint=store
            )
        assert store.iterations() == [1, 2]
        model, history = SPCA(CONFIG, make_backend("mapreduce")).resume(data, store)
        assert np.array_equal(model.components, clean_model.components)
        assert history_tuples(history) == history_tuples(clean_history)

    def test_checkpoint_every_n_iterations(self, data):
        store = HDFSCheckpointStore(InMemoryHDFS())
        policy = CheckpointPolicy(store, every=2)
        SPCA(CONFIG, make_backend("sequential")).fit(data, checkpoint=policy)
        # The stopping iteration (4) is never snapshotted: the run is over.
        assert store.iterations() == [2]

    def test_resume_can_keep_checkpointing(self, data):
        store = HDFSCheckpointStore(InMemoryHDFS())
        with pytest.raises(JobFailedError):
            SPCA(CONFIG, make_backend("mapreduce", kill_plan(1))).fit(
                data, checkpoint=store
            )
        assert store.iterations() == [1]
        SPCA(CONFIG, make_backend("mapreduce")).resume(data, store, checkpoint_every=1)
        assert store.iterations() == [1, 2, 3]

    def test_config_mismatch_refused(self, data):
        store = HDFSCheckpointStore(InMemoryHDFS())
        SPCA(CONFIG, make_backend("sequential")).fit(data, checkpoint=store)
        other = CONFIG.with_options(seed=99)
        with pytest.raises(CheckpointError, match="different configuration"):
            SPCA(other, make_backend("sequential")).resume(data, store)

    def test_invalid_policy_interval(self):
        with pytest.raises(CheckpointError):
            CheckpointPolicy(HDFSCheckpointStore(InMemoryHDFS()), every=0)

    def test_npz_round_trip_preserves_rng_state_and_history(self, tmp_path):
        rng = np.random.default_rng(77)
        rng.random(13)
        snapshot = EMCheckpoint(
            iteration=2,
            components=rng.normal(size=(6, 2)),
            noise_variance=0.25,
            mean=rng.normal(size=6),
            ss1=123.5,
            previous_error=0.125,
            rng_state=rng.bit_generator.state,
            history=(
                IterationStats(1, 0.5, None, None, 0.1, 2.0, 100),
                IterationStats(2, 0.25, 0.125, 0.875, 0.2, 4.0, 200),
            ),
            config={"n_components": 2, "seed": 0},
        )
        path = save_checkpoint(snapshot, tmp_path / "snap.npz")
        loaded = load_checkpoint(path)
        assert loaded.iteration == 2
        assert np.array_equal(loaded.components, snapshot.components)
        assert np.array_equal(loaded.mean, snapshot.mean)
        assert loaded.noise_variance == snapshot.noise_variance
        assert loaded.ss1 == snapshot.ss1
        assert loaded.previous_error == snapshot.previous_error
        assert loaded.config == snapshot.config
        assert loaded.history == snapshot.history
        restored = np.random.default_rng()
        restored.bit_generator.state = loaded.rng_state
        assert restored.random() == rng.random()

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, checkpoint_format_version=np.int64(99))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_latest_of_empty_stores(self, tmp_path):
        assert HDFSCheckpointStore(InMemoryHDFS()).load_latest() is None
        assert DirectoryCheckpointStore(tmp_path / "empty").load_latest() is None
