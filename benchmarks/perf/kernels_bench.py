"""Kernel-backend benchmark: fused/numba vs numpy, plus worker residency.

Three claims, each measured against its own baseline and bitwise-verified:

- **micro ops**: the per-block EM chain (latent -> YtX/XtX -> ss3) and the
  error chain, fused backend vs numpy backend on identical blocks.  The
  fused backend computes the latent block and the densified-centered block
  once per (block, model) and reuses them across the chain; numpy recomputes
  both in every op.
- **end to end**: full ``SPCA.fit`` per engine at fine record granularity
  (many small blocks -> many kernel calls), every kernel backend vs the
  numpy backend on the *same engine*.  Every non-numba fit is checked
  bitwise against its numpy baseline before its timing is reported.
- **residency**: per-iteration bytes crossing the process-pool pickle pipe,
  worker-resident pinning on vs off -- the paper's intermediate-data
  argument applied to the driver-worker pipe (ISSUE target: >= 5x fewer).

A ``raw_blas`` section times the same per-iteration kernel math on the whole
dataset as one block in a single process: the BLAS floor the simulator's
scheduling, serde, and byte accounting sit on top of.  The gap is reported,
not asserted -- it is the honest price of simulating a cluster.

Results are written as ``BENCH_kernels.json``; wall-clock only, ratios are
the meaningful quantity.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import scipy.sparse as sp

from perf.harness import _op, best_of, provenance, _validate_provenance
from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.exec import ProcessPoolTaskExecutor
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.jobs import backends as kb
from repro.obs.metrics import collecting

KERNELS_BENCH_NAME = "BENCH_kernels"

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=4)

REQUIRED_KERNEL_E2E_FIELDS = {
    "engine",
    "kernel_backend",
    "backend_resolved",
    "shape",
    "records_per_task",
    "fit_s",
    "speedup_vs_numpy",
    "bitwise_equal_to_numpy",
}
REQUIRED_RESIDENCY_FIELDS = {
    "executor",
    "shape",
    "records_per_task",
    "plain_bytes_per_iteration",
    "resident_bytes_per_iteration",
    "reduction",
}
REQUIRED_RAW_BLAS_FIELDS = {"shape", "iterations", "raw_s", "engine_fit_s", "gap"}


def _model(rng, cols: int, d: int):
    """A fixed, deterministic model for per-block op timing."""
    mean = rng.normal(size=cols)
    projector = rng.normal(size=(cols, d))
    latent_mean = rng.normal(size=d)
    components = rng.normal(size=(cols, d))
    return mean, projector, latent_mean, components


def _em_chain(backend, blocks, mean, projector, latent_mean, components) -> float:
    """One YtXJob + ss3Job pass over *blocks*: the per-iteration hot path."""
    total = 0.0
    for block in blocks:
        backend.ytx_xtx(block, mean, projector, latent_mean, True)
        total += backend.ss3(
            block, mean, projector, latent_mean, components, True
        )
    return total


def bench_em_chain(repeats: int, n_splits: int, rows: int, cols: int, d: int) -> dict:
    """The per-task EM work across 3 iterations, fused vs numpy.

    Each split is a list of single-row records, exactly what a map task
    receives; each iteration stacks the split into a block and runs the
    YtX/XtX + ss3 chain against that iteration's model.  The fused backend
    stacks each split once for the whole fit and computes each block's
    latent once per iteration; numpy re-stacks and recomputes everywhere.
    The model *changes per iteration* (as in a real fit), so the latent
    memo is only credited with its honest within-iteration reuse.
    """
    splits = [
        [
            sp.random(1, cols, density=0.1, random_state=i * rows + j, format="csr")
            for j in range(rows)
        ]
        for i in range(n_splits)
    ]
    models = [_model(np.random.default_rng(seed), cols, d) for seed in range(3)]
    numpy_backend = kb.NumpyKernelBackend()
    fused_backend = kb.FusedKernelBackend()

    def run(backend) -> None:
        backend.clear()
        for mean, projector, latent_mean, components in models:
            blocks = [backend.stack(split) for split in splits]
            _em_chain(backend, blocks, mean, projector, latent_mean, components)

    return _op(
        "em_block_chain",
        baseline_s=best_of(lambda: run(numpy_backend), repeats),
        optimized_s=best_of(lambda: run(fused_backend), repeats),
        n_splits=n_splits,
        rows_per_block=rows,
        cols=cols,
        n_components=d,
        iterations=len(models),
    )


def bench_densified_error_chain(
    repeats: int, n_splits: int, rows: int, cols: int, d: int
) -> dict:
    """The ablated (no mean-propagation) chain with per-iteration error.

    Stacking from records plus the shared densified-centered block across
    YtX/XtX and the error job.  Note the numpy baseline already benefits
    from the global ``_densify_centered`` memo (a satellite of this PR), so
    the speedup shown here is the *additional* win of the fused backend.
    """
    splits = [
        [
            sp.random(1, cols, density=0.1, random_state=1000 + i * rows + j,
                      format="csr")
            for j in range(rows)
        ]
        for i in range(n_splits)
    ]
    models = [_model(np.random.default_rng(10 + seed), cols, d) for seed in range(3)]
    numpy_backend = kb.NumpyKernelBackend()
    fused_backend = kb.FusedKernelBackend()

    def run(backend) -> None:
        backend.clear()
        for mean, projector, latent_mean, components in models:
            for split in splits:
                block = backend.stack(split)
                backend.ytx_xtx(block, mean, projector, latent_mean, False)
                backend.error_parts(block, mean, components, projector, False)

    return _op(
        "densified_error_chain",
        baseline_s=best_of(lambda: run(numpy_backend), repeats),
        optimized_s=best_of(lambda: run(fused_backend), repeats),
        n_splits=n_splits,
        rows_per_block=rows,
        cols=cols,
        n_components=d,
        iterations=len(models),
    )


# -- end to end ------------------------------------------------------------


def _fit_config(max_iterations: int, kernel_backend: str) -> SPCAConfig:
    return SPCAConfig(
        n_components=5,
        max_iterations=max_iterations,
        tolerance=0.0,
        seed=1,
        compute_error_every_iteration=False,
        kernel_backend=kernel_backend,
    )


def _fit(engine: str, data, records_per_task: int, max_iterations: int,
         kernel_backend: str, executor=None, worker_resident: bool = False):
    config = _fit_config(max_iterations, kernel_backend)
    with warnings.catch_warnings():
        # numba-missing fallback warns once; the document records the
        # resolution explicitly instead.
        warnings.simplefilter("ignore", RuntimeWarning)
        if engine == "mapreduce":
            runtime = MapReduceRuntime(cluster=CLUSTER, executor=executor)
            backend = MapReduceBackend(
                config,
                runtime=runtime,
                records_per_split=records_per_task,
                worker_resident=worker_resident,
            )
        else:
            context = SparkContext(cluster=CLUSTER, executor=executor)
            backend = SparkBackend(
                config, context=context, records_per_partition=records_per_task
            )
        model, _ = SPCA(config, backend).fit(data)
        if worker_resident:
            backend._unpin_resident()
    return model


def bench_kernel_end_to_end(
    data, records_per_task: int, repeats: int, max_iterations: int
) -> list[dict]:
    """Per engine: every kernel backend timed and verified vs numpy."""
    entries = []
    for engine in ("mapreduce", "spark"):
        kb.clear_kernel_backends()
        baseline = _fit(engine, data, records_per_task, max_iterations, "numpy")
        numpy_s = best_of(
            lambda: _fit(engine, data, records_per_task, max_iterations, "numpy"),
            repeats,
        )
        for name in kb.KERNEL_BACKEND_NAMES:
            kb.clear_kernel_backends()
            resolved = kb.resolve_kernel_backend(name).name
            model = _fit(engine, data, records_per_task, max_iterations, name)
            bitwise = bool(
                (model.components == baseline.components).all()
                and (model.mean == baseline.mean).all()
                and model.noise_variance == baseline.noise_variance
            )
            if resolved != "numba" and not bitwise:
                raise AssertionError(
                    f"{engine}/{name} diverged bitwise from its numpy baseline"
                )
            fit_s = numpy_s if name == "numpy" else best_of(
                lambda: _fit(
                    engine, data, records_per_task, max_iterations, name
                ),
                repeats,
            )
            entries.append(
                {
                    "engine": engine,
                    "kernel_backend": name,
                    "backend_resolved": resolved,
                    "shape": list(data.shape),
                    "records_per_task": records_per_task,
                    "fit_s": fit_s,
                    "speedup_vs_numpy": numpy_s / max(fit_s, 1e-12),
                    "bitwise_equal_to_numpy": bitwise,
                }
            )
    return entries


# -- worker residency -------------------------------------------------------


def bench_residency(data, records_per_task: int) -> dict:
    """Per-iteration pickle-pipe bytes, worker-resident pinning on vs off.

    Measured as the difference between a 3-iteration and a 1-iteration fit
    (halved): the steady-state cost of one extra EM iteration, excluding
    the one-time pin/first-dispatch bytes.
    """

    def per_iteration(worker_resident: bool) -> float:
        totals = {}
        for iterations in (1, 3):
            with ProcessPoolTaskExecutor(workers=2) as executor:
                with collecting() as registry:
                    _fit(
                        "mapreduce",
                        data,
                        records_per_task,
                        iterations,
                        "numpy",
                        executor=executor,
                        worker_resident=worker_resident,
                    )
                    totals[iterations] = registry.counter_total(
                        "spca_executor_payload_bytes_total"
                    )
        return (totals[3] - totals[1]) / 2

    plain = per_iteration(False)
    resident = per_iteration(True)
    return {
        "executor": "processes",
        "shape": list(data.shape),
        "records_per_task": records_per_task,
        "plain_bytes_per_iteration": plain,
        "resident_bytes_per_iteration": resident,
        "reduction": plain / max(resident, 1e-12),
    }


# -- raw-BLAS floor ---------------------------------------------------------


def bench_raw_blas(data, max_iterations: int, repeats: int, engine_fit_s: float) -> dict:
    """The per-iteration kernel math on one whole-dataset block, no engine.

    This is what a single process doing straight numpy/BLAS calls pays for
    the same EM arithmetic; ``gap`` is how much slower the best engine fit
    is, i.e. the cost of the simulated cluster around the math.
    """
    d = 5
    rng = np.random.default_rng(2)
    mean = np.asarray(data.mean(axis=0)).ravel()
    projector = rng.normal(size=(data.shape[1], d))
    latent_mean = rng.normal(size=d)
    components = rng.normal(size=(data.shape[1], d))
    backend = kb.NumpyKernelBackend()

    def run() -> None:
        for _ in range(max_iterations):
            _em_chain(
                backend, [data], mean, projector, latent_mean, components
            )

    raw_s = best_of(run, repeats)
    return {
        "shape": list(data.shape),
        "iterations": max_iterations,
        "raw_s": raw_s,
        "engine_fit_s": engine_fit_s,
        "gap": engine_fit_s / max(raw_s, 1e-12),
    }


# -- suite ------------------------------------------------------------------


def run_kernels_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run the kernel-backend suite; returns the BENCH_kernels document."""
    if repeats is None:
        repeats = 2 if quick else 3
    if quick:
        data = sp.random(800, 120, density=0.05, random_state=0, format="csr")
        records_per_task = 8
        max_iterations = 2
        n_blocks, rows = 32, 8
        residency_data = np.random.default_rng(7).normal(size=(512, 32))
        residency_records = 64
    else:
        data = sp.random(2000, 200, density=0.05, random_state=0, format="csr")
        records_per_task = 8
        max_iterations = 5
        n_blocks, rows = 128, 8
        residency_data = np.random.default_rng(7).normal(size=(1024, 32))
        residency_records = 128

    ops = [
        bench_em_chain(repeats, n_blocks, rows, data.shape[1], 5),
        bench_densified_error_chain(repeats, n_blocks // 2, rows, data.shape[1], 5),
    ]
    end_to_end = bench_kernel_end_to_end(
        data, records_per_task, repeats, max_iterations
    )
    residency = bench_residency(residency_data, residency_records)
    best_engine_fit_s = min(entry["fit_s"] for entry in end_to_end)
    raw_blas = bench_raw_blas(data, max_iterations, repeats, best_engine_fit_s)
    resolved = {
        name: kb.resolve_kernel_backend(name).name
        for name in kb.KERNEL_BACKEND_NAMES
    }
    result = {
        "bench": KERNELS_BENCH_NAME,
        "quick": quick,
        "repeats": repeats,
        "created_unix": time.time(),
        "provenance": provenance(
            numba_available=kb.NUMBA_AVAILABLE,
            kernel_backends_resolved=resolved,
        ),
        "ops": ops,
        "end_to_end": end_to_end,
        "residency": residency,
        "raw_blas": raw_blas,
    }
    validate_kernels(result)
    return result


def validate_kernels(result: dict) -> None:
    """Schema check for a BENCH_kernels document; raises ValueError."""
    for field in (
        "bench", "quick", "repeats", "created_unix", "ops", "end_to_end",
        "residency", "raw_blas",
    ):
        if field not in result:
            raise ValueError(f"missing top-level field {field!r}")
    if result["bench"] != KERNELS_BENCH_NAME:
        raise ValueError(
            f"bench must be {KERNELS_BENCH_NAME!r}, got {result['bench']!r}"
        )
    _validate_provenance(result)
    if not result["ops"] or not result["end_to_end"]:
        raise ValueError("ops and end_to_end must be non-empty")
    for op in result["ops"]:
        for field in ("baseline_s", "optimized_s", "speedup"):
            if not (isinstance(op.get(field), float) and op[field] > 0):
                raise ValueError(f"op {op.get('name')!r}: bad {field}")
    numba_available = bool(result["provenance"].get("numba_available"))
    seen = set()
    for entry in result["end_to_end"]:
        missing = REQUIRED_KERNEL_E2E_FIELDS - entry.keys()
        if missing:
            raise ValueError(f"end_to_end entry missing {sorted(missing)}")
        if entry["engine"] not in ("mapreduce", "spark"):
            raise ValueError(f"unknown engine {entry['engine']!r}")
        if entry["kernel_backend"] not in kb.KERNEL_BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel backend {entry['kernel_backend']!r}"
            )
        if not numba_available and entry["backend_resolved"] == "numba":
            raise ValueError("numba resolution recorded without the extra")
        # fused must be bitwise; numba only when it fell back to numpy.
        if entry["backend_resolved"] != "numba" and not entry[
            "bitwise_equal_to_numpy"
        ]:
            raise ValueError(
                f"{entry['engine']}/{entry['kernel_backend']} is not "
                "bitwise equal to its numpy baseline"
            )
        seen.add((entry["engine"], entry["kernel_backend"]))
    for engine in ("mapreduce", "spark"):
        for name in kb.KERNEL_BACKEND_NAMES:
            if (engine, name) not in seen:
                raise ValueError(f"missing end_to_end entry {engine}/{name}")
    residency = result["residency"]
    missing = REQUIRED_RESIDENCY_FIELDS - residency.keys()
    if missing:
        raise ValueError(f"residency missing {sorted(missing)}")
    if residency["resident_bytes_per_iteration"] <= 0:
        raise ValueError("residency measured no resident dispatch bytes")
    if residency["reduction"] <= 1:
        raise ValueError("residency must reduce per-iteration bytes")
    raw = result["raw_blas"]
    missing = REQUIRED_RAW_BLAS_FIELDS - raw.keys()
    if missing:
        raise ValueError(f"raw_blas missing {sorted(missing)}")
    for field in ("raw_s", "engine_fit_s", "gap"):
        if not (isinstance(raw[field], float) and raw[field] > 0):
            raise ValueError(f"raw_blas: bad {field}")


def summarize_kernels(result: dict) -> str:
    prov = result["provenance"]
    lines = [
        f"{result['bench']}  (quick={result['quick']}, repeats={result['repeats']}, "
        f"cpus={prov['cpu_count']}, numba={prov['numba_available']}, "
        f"sha={prov['git_sha'][:12]})"
    ]
    lines.append(f"{'op (fused vs numpy)':<34}{'baseline s':>12}{'fused s':>12}{'speedup':>9}")
    for op in result["ops"]:
        lines.append(
            f"{op['name']:<34}{op['baseline_s']:>12.5f}"
            f"{op['optimized_s']:>12.5f}{op['speedup']:>8.2f}x"
        )
    lines.append(
        f"{'fit':<34}{'resolved':>12}{'fit s':>12}{'vs numpy':>9}"
    )
    for entry in result["end_to_end"]:
        label = f"{entry['engine']}/{entry['kernel_backend']}"
        check = "" if entry["bitwise_equal_to_numpy"] else "  (tolerance)"
        lines.append(
            f"{label:<34}{entry['backend_resolved']:>12}"
            f"{entry['fit_s']:>12.4f}{entry['speedup_vs_numpy']:>8.2f}x{check}"
        )
    residency = result["residency"]
    lines.append(
        f"residency ({residency['executor']}, shape={residency['shape']}): "
        f"{residency['plain_bytes_per_iteration']:.0f} -> "
        f"{residency['resident_bytes_per_iteration']:.0f} B/iteration "
        f"({residency['reduction']:.1f}x fewer)"
    )
    raw = result["raw_blas"]
    lines.append(
        f"raw BLAS floor: {raw['raw_s']:.4f}s vs best engine fit "
        f"{raw['engine_fit_s']:.4f}s (simulator gap {raw['gap']:.1f}x)"
    )
    return "\n".join(lines)
