"""Figure 5: accuracy vs time on Tweets, including smart-guess init (sPCA-SG).

Paper shape: sPCA dominates Mahout-PCA at every point in time, and the
smart-guess warm start (fit on a small row sample first) lifts the early
part of the curve at the cost of a small initialization delay.
"""

import pytest

from harness import dataset_ideal_accuracy, default_config, run_mahout, run_spca
from repro.data.paper import tweets_series
from repro.metrics import percent_of_ideal


@pytest.mark.benchmark(group="fig5")
def test_fig5_accuracy_vs_time_tweets(benchmark, report):
    spec = tweets_series()[1]  # 6K-column point
    data = spec.generate()
    ideal = dataset_ideal_accuracy(data)
    outcomes = {}

    def run_all():
        outcomes["spca"] = run_spca(data, "mapreduce", ideal=ideal)
        sg_config = default_config(
            ideal_accuracy=ideal, smart_init=True,
            smart_init_fraction=0.05, smart_init_iterations=20,
        )
        outcomes["spca_sg"] = run_spca(data, "mapreduce", ideal=ideal, config=sg_config)
        outcomes["mahout"] = run_mahout(data, ideal=ideal, power_iterations=5)
        return 3

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    spca = outcomes["spca"]
    spca_sg = outcomes["spca_sg"]
    mahout = outcomes["mahout"]

    report(f"Figure 5: accuracy vs time, Tweets ({spec.label}); ideal={ideal:.4f}")
    report(f"{'series':<18}{'time (sim s)':>14}{'accuracy':>10}{'% of ideal':>12}")
    for label, outcome in (
        ("sPCA-SG", spca_sg), ("sPCA-MapReduce", spca), ("Mahout-PCA", mahout),
    ):
        for seconds, accuracy in outcome.accuracy_timeline:
            report(
                f"{label:<18}{seconds:>14.1f}{accuracy:>10.4f}"
                f"{percent_of_ideal(accuracy, ideal):>12.1f}"
            )

    # sPCA stops once it hits the 95%-of-ideal target, so assert it got
    # there (Mahout may keep refining past its own target-crossing).
    assert spca.final_accuracy >= 0.95 * ideal

    # The smart guess lifts first-iteration accuracy above cold start.
    assert spca_sg.accuracy_timeline[0][1] >= spca.accuracy_timeline[0][1]

    # sPCA reaches 95% of ideal before Mahout.
    def first_time(outcome, threshold):
        return next((t for t, a in outcome.accuracy_timeline if a >= threshold), None)

    spca_time = first_time(spca, 0.95 * ideal)
    mahout_time = first_time(mahout, 0.95 * ideal)
    assert spca_time is not None
    assert mahout_time is None or spca_time < mahout_time
