"""Base-class contracts of the MapReduce programming API."""

import pytest

from repro.engine.mapreduce.api import (
    Combiner,
    IdentityMapper,
    MapReduceJob,
    Mapper,
    Reducer,
    SumReducer,
    TaskContext,
)


@pytest.fixture
def ctx():
    return TaskContext(job_name="j", task_id=3, config={"k": 1})


class TestTaskContext:
    def test_increment_defaults_to_one(self, ctx):
        ctx.increment("records")
        ctx.increment("records")
        ctx.increment("bytes", 100)
        assert ctx.counters["records"] == 2
        assert ctx.counters["bytes"] == 100

    def test_carries_config_and_identity(self, ctx):
        assert ctx.job_name == "j"
        assert ctx.task_id == 3
        assert ctx.config["k"] == 1


class TestBaseClasses:
    def test_default_mapper_is_identity(self, ctx):
        assert list(Mapper().map("key", "value", ctx)) == [("key", "value")]
        assert list(Mapper().cleanup(ctx)) == []

    def test_identity_mapper_alias(self, ctx):
        assert list(IdentityMapper().map(1, 2, ctx)) == [(1, 2)]

    def test_default_reducer_passes_value_list(self, ctx):
        assert list(Reducer().reduce("k", [1, 2], ctx)) == [("k", [1, 2])]
        assert list(Reducer().cleanup(ctx)) == []

    def test_combiner_is_a_reducer(self):
        assert issubclass(Combiner, Reducer)

    def test_sum_reducer_handles_numbers(self, ctx):
        assert list(SumReducer().reduce("k", [1, 2, 3], ctx)) == [("k", 6)]

    def test_sum_reducer_handles_arrays(self, ctx):
        import numpy as np

        ((key, total),) = list(
            SumReducer().reduce("k", [np.ones(3), 2 * np.ones(3)], ctx)
        )
        np.testing.assert_allclose(total, 3 * np.ones(3))

    def test_setup_hooks_are_noops_by_default(self, ctx):
        Mapper().setup(ctx)
        Reducer().setup(ctx)


class TestJobDescription:
    def test_defaults(self):
        job = MapReduceJob(name="x", mapper=Mapper())
        assert job.reducer is None
        assert job.combiner is None
        assert job.num_reducers == 1
        assert job.config == {}
        assert job.output_path is None
        assert not job.output_is_intermediate

    def test_config_isolated_per_job(self):
        a = MapReduceJob(name="a", mapper=Mapper())
        b = MapReduceJob(name="b", mapper=Mapper())
        a.config["x"] = 1
        assert "x" not in b.config
