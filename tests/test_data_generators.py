"""Dataset generators: shapes, sparsity, structure, determinism."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PAPER_DATASETS,
    bag_of_words,
    lowrank_dense,
    make_dataset,
    nmr_spectra,
    sift_features,
    tweets_series,
)
from repro.data.paper import SCALED_DRIVER_MEMORY_MB, scaled_cluster
from repro.errors import ShapeError


class TestBagOfWords:
    def test_shape_and_binary_values(self):
        matrix = bag_of_words(500, 300, seed=1)
        assert matrix.shape == (500, 300)
        assert set(np.unique(matrix.data)) == {1.0}

    def test_sparsity_matches_words_per_doc(self):
        matrix = bag_of_words(1000, 2000, words_per_doc=8.0, seed=2)
        mean_words = matrix.getnnz(axis=1).mean()
        # ~8 tail words (duplicates collapse) + ~10 stopword-head words.
        assert 8.0 < mean_words < 22.0

    def test_stopword_head_dominates_column_mass(self):
        matrix = bag_of_words(2000, 1000, words_per_doc=8.0, seed=11)
        col_mass = np.asarray(matrix.sum(axis=0)).ravel()
        assert col_mass.argmax() < 40  # the heaviest column is a stopword

    def test_no_stopwords_option(self):
        matrix = bag_of_words(300, 400, n_stopwords=0, seed=12)
        assert matrix.shape == (300, 400)

    def test_rank10_accuracy_is_positive(self):
        from repro.metrics import ideal_accuracy

        matrix = bag_of_words(3000, 600, words_per_doc=8.0, seed=13)
        assert ideal_accuracy(matrix, 10) > 0.3

    def test_every_document_has_a_word(self):
        matrix = bag_of_words(200, 100, words_per_doc=1.0, seed=3)
        assert matrix.getnnz(axis=1).min() >= 1

    def test_word_frequencies_power_law(self):
        matrix = bag_of_words(3000, 500, words_per_doc=10.0, seed=4)
        frequencies = np.asarray(matrix.sum(axis=0)).ravel()
        # Zipf: the head dominates the tail.
        assert frequencies[:10].sum() > frequencies[-100:].sum()

    def test_deterministic(self):
        a = bag_of_words(50, 40, seed=9)
        b = bag_of_words(50, 40, seed=9)
        assert (a != b).nnz == 0

    def test_validation(self):
        with pytest.raises(ShapeError):
            bag_of_words(0, 10)
        with pytest.raises(ShapeError):
            bag_of_words(10, 10, words_per_doc=0.0)


class TestNMRSpectra:
    def test_shape_and_nonnegative(self):
        spectra = nmr_spectra(50, 400, seed=5)
        assert spectra.shape == (50, 400)
        assert spectra.min() >= 0.0

    def test_approximately_low_rank(self):
        spectra = nmr_spectra(100, 600, n_metabolites=8, noise=0.001, seed=6)
        centered = spectra - spectra.mean(axis=0)
        singular_values = np.linalg.svd(centered, compute_uv=False)
        # The top-8 directions carry almost all the variance.
        assert singular_values[8:].sum() < 0.05 * singular_values.sum()

    def test_validation(self):
        with pytest.raises(ShapeError):
            nmr_spectra(0, 10)


class TestSIFTFeatures:
    def test_shape_and_range(self):
        vectors = sift_features(300, seed=7)
        assert vectors.shape == (300, 128)
        assert vectors.min() >= 0.0
        assert vectors.max() <= 512.0

    def test_clustered_structure(self):
        vectors = sift_features(2000, n_clusters=4, seed=8)
        centered = vectors - vectors.mean(axis=0)
        singular_values = np.linalg.svd(centered, compute_uv=False)
        # 4 clusters -> ~3 strong directions above the noise floor.
        assert singular_values[2] > 2.0 * singular_values[10]

    def test_validation(self):
        with pytest.raises(ShapeError):
            sift_features(0)


class TestLowrankDense:
    def test_rank_validation(self):
        with pytest.raises(ShapeError):
            lowrank_dense(5, 5, rank=6)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_spectrum_dominated_by_rank(self, seed):
        data = lowrank_dense(100, 30, rank=3, noise=0.01, seed=seed)
        centered = data - data.mean(axis=0)
        singular_values = np.linalg.svd(centered, compute_uv=False)
        assert singular_values[2] > 5.0 * singular_values[3]


class TestPaperSpecs:
    def test_all_series_materialize(self):
        for name, series_fn in PAPER_DATASETS.items():
            specs = series_fn()
            assert specs, name
            smallest = min(specs, key=lambda s: s.n_rows * s.n_cols)
            matrix = make_dataset(smallest)
            assert matrix.shape == (smallest.n_rows, smallest.n_cols)
            assert sp.issparse(matrix) == smallest.sparse

    def test_tweets_column_series_matches_paper_ratios(self):
        specs = tweets_series()
        assert [s.n_cols for s in specs] == [200, 600, 7150]
        assert all("1.26B" in s.paper_size for s in specs)

    def test_scaled_cluster_failure_boundary(self):
        # 600^2 doubles fit in the scaled driver; 1000^2 do not.
        cluster = scaled_cluster()
        limit = cluster.driver_memory_bytes
        assert 600 * 600 * 8 < limit < 1000 * 1000 * 8
        assert cluster.driver_memory_mb == SCALED_DRIVER_MEMORY_MB

    def test_scaled_cluster_node_sweep(self):
        assert scaled_cluster(2).total_cores == 16
        assert scaled_cluster(8).total_cores == 64

    def test_spec_label(self):
        spec = tweets_series()[0]
        assert spec.label == "tweets 20000x200"
