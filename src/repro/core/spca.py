"""The sPCA driver: Algorithm 4 of the paper.

One driver program implements the EM control flow and executes every small
(d x d or D x d) operation locally; the three data-sized computations --
meanJob + FnormJob (once, before the loop), the consolidated YtXJob and
ss3Job (each iteration) -- are dispatched to a :class:`Backend`.  Swapping
the backend switches between sPCA-Sequential, sPCA-MapReduce and sPCA-Spark
without touching this file, which is the paper's claim that "the design is
general and can be implemented on different platforms".
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import SPCAConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends need core)
    from repro.backends.base import Backend
from repro.core.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    EMCheckpoint,
)
from repro.core.convergence import ConvergenceTracker, IterationStats, TrainingHistory
from repro.core.initialization import random_initialization, smart_guess_initialization
from repro.core.model import PCAModel
from repro.core.ppca import fit_ppca
from repro.errors import CheckpointError, ShapeError
from repro.linalg.blocks import Matrix
from repro.obs import get_tracer
from repro.obs.metrics import get_registry


class SPCA:
    """Scalable PCA.

    Example:
        >>> import numpy as np
        >>> from repro.core import SPCA, SPCAConfig
        >>> rng = np.random.default_rng(0)
        >>> data = rng.normal(size=(200, 20)) @ rng.normal(size=(20, 20))
        >>> model, history = SPCA(SPCAConfig(n_components=3)).fit(data)
        >>> model.components.shape
        (20, 3)
    """

    def __init__(self, config: SPCAConfig, backend: Backend | None = None):
        if backend is None:
            from repro.backends.sequential import SequentialBackend

            backend = SequentialBackend(config)
        self.config = config
        self.backend = backend

    def fit(
        self,
        data: Matrix,
        checkpoint: CheckpointPolicy | CheckpointStore | None = None,
    ) -> tuple[PCAModel, TrainingHistory]:
        """Run the EM loop of Algorithm 4 and return the model + history.

        Args:
            data: the N x D input matrix (dense or sparse).
            checkpoint: when given, model state is snapshotted to the store
                after every N-th iteration (a bare store means every
                iteration); a killed run can then continue via
                :meth:`resume` and produce the bit-identical final model.
        """
        config = self.config
        n_samples, n_features = data.shape
        self._validate_shape(n_samples, n_features)
        tracer = get_tracer()
        with tracer.span(
            "run",
            f"spca.fit[N={n_samples},D={n_features},d={config.n_components}]",
            n_samples=n_samples,
            n_features=n_features,
            n_components=config.n_components,
            backend=type(self.backend).__name__,
            kernel_backend=config.kernel_backend,
            kernel_backend_resolved=self.backend.kernels.name,
        ) as run_span:
            model, history = self._fit_traced(
                data, tracer, checkpoint=self._as_policy(checkpoint)
            )
            run_span.set(
                stop_reason=history.stop_reason,
                n_iterations=history.n_iterations,
            )
        return model, history

    def resume(
        self,
        data: Matrix,
        store: CheckpointStore,
        checkpoint_every: int | None = None,
    ) -> tuple[PCAModel, TrainingHistory]:
        """Continue a checkpointed fit from the newest snapshot in *store*.

        The snapshot carries the EM rng state, the convergence tracker's
        memory, and the recorded history, so the resumed run finishes with
        exactly the model the uninterrupted run would have produced.

        Args:
            data: the same input matrix the original fit ran on.
            store: the store the original fit checkpointed into.
            checkpoint_every: continue snapshotting into *store* at this
                interval (None disables further checkpoints).

        Raises:
            CheckpointError: if the store is empty or was written under a
                different :class:`SPCAConfig`.
        """
        config = self.config
        ckpt = store.load_latest()
        if ckpt is None:
            raise CheckpointError("checkpoint store is empty; nothing to resume")
        stored_config = dict(ckpt.config)
        current_config = asdict(config)
        # kernel_backend selects an implementation, not different math: every
        # backend is bitwise equal (or tolerance-tested, for numba), so a
        # resume may switch it -- and checkpoints written before the field
        # existed stay resumable.
        stored_config.pop("kernel_backend", None)
        current_config.pop("kernel_backend", None)
        if stored_config != current_config:
            raise CheckpointError(
                "checkpoint was written under a different configuration: "
                f"stored {ckpt.config!r} vs current {asdict(config)!r}"
            )
        n_samples, n_features = data.shape
        self._validate_shape(n_samples, n_features)
        checkpoint = (
            CheckpointPolicy(store, checkpoint_every)
            if checkpoint_every is not None
            else None
        )
        tracer = get_tracer()
        with tracer.span(
            "run",
            f"spca.resume[N={n_samples},D={n_features},"
            f"d={config.n_components},from={ckpt.iteration}]",
            n_samples=n_samples,
            n_features=n_features,
            n_components=config.n_components,
            backend=type(self.backend).__name__,
            kernel_backend=config.kernel_backend,
            kernel_backend_resolved=self.backend.kernels.name,
            resumed_from_iteration=ckpt.iteration,
        ) as run_span:
            model, history = self._fit_traced(
                data, tracer, checkpoint=checkpoint, resume_from=ckpt
            )
            run_span.set(
                stop_reason=history.stop_reason,
                n_iterations=history.n_iterations,
            )
        return model, history

    def _validate_shape(self, n_samples: int, n_features: int) -> None:
        if self.config.n_components > min(n_samples, n_features):
            raise ShapeError(
                f"n_components={self.config.n_components} exceeds "
                f"min(N, D)={min(n_samples, n_features)}"
            )

    @staticmethod
    def _as_policy(
        checkpoint: CheckpointPolicy | CheckpointStore | None,
    ) -> CheckpointPolicy | None:
        if checkpoint is None or isinstance(checkpoint, CheckpointPolicy):
            return checkpoint
        return CheckpointPolicy(checkpoint, every=1)

    def _fit_traced(
        self,
        data: Matrix,
        tracer,
        checkpoint: CheckpointPolicy | None = None,
        resume_from: EMCheckpoint | None = None,
    ) -> tuple[PCAModel, TrainingHistory]:
        config = self.config
        n_samples, n_features = data.shape
        rng = np.random.default_rng(config.seed)
        started = time.perf_counter()
        sim_start = self.backend.simulated_seconds
        bytes_start = self.backend.intermediate_bytes

        history = TrainingHistory()
        tracker = ConvergenceTracker(
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            target_accuracy=config.target_accuracy,
            ideal_accuracy=config.ideal_accuracy,
        )
        if resume_from is None:
            components, noise_variance = self._initialize(data, rng)
            dataset = self.backend.load(data)
            mean = self.backend.column_means(dataset)            # meanJob
            ss1 = self.backend.frobenius_centered(dataset, mean)  # FnormJob
            start_iteration = 1
            previous_ss = None
        else:
            # The data-independent preamble (initialization, meanJob,
            # FnormJob) is skipped entirely: its results and the rng draws
            # it consumed are all part of the snapshot.
            components = np.array(resume_from.components, copy=True)
            noise_variance = float(resume_from.noise_variance)
            mean = np.array(resume_from.mean, copy=True)
            ss1 = float(resume_from.ss1)
            rng = np.random.default_rng()
            rng.bit_generator.state = resume_from.rng_state
            for stats in resume_from.history:
                history.append(stats)
            tracker.restore(resume_from.iteration, resume_from.previous_error)
            dataset = self.backend.load(data)
            self.backend.charge_checkpoint(resume_from.nbytes, kind="restore")
            if tracer.enabled:
                tracer.event(
                    "checkpoint_restore",
                    iteration=resume_from.iteration,
                    bytes=resume_from.nbytes,
                )
            start_iteration = resume_from.iteration + 1
            previous_ss = noise_variance

        identity = np.eye(config.n_components)
        # Cumulative sim seconds at the previous iteration's close; the
        # per-iteration histogram records successive differences.
        previous_sim = 0.0
        for iteration in range(start_iteration, config.max_iterations + 1):
            with tracer.span(
                "iteration", f"iteration[{iteration}]", index=iteration
            ) as iter_span:
                moment = components.T @ components + noise_variance * identity
                moment_inv = np.linalg.inv(moment)
                projector = components @ moment_inv           # CM = C * M^-1
                latent_mean = mean @ projector                # Xm = Ym * CM
                previous_components = components

                if config.use_job_consolidation:
                    ytx, xtx = self.backend.ytx_xtx(
                        dataset, mean, projector, latent_mean
                    )
                else:
                    # Ablation: two separate distributed passes (Figure 2
                    # before the consolidation of Figure 3).
                    _, xtx = self.backend.ytx_xtx(dataset, mean, projector, latent_mean)
                    ytx, _ = self.backend.ytx_xtx(dataset, mean, projector, latent_mean)
                xtx = xtx + n_samples * noise_variance * moment_inv
                components = ytx @ np.linalg.inv(xtx)         # C = YtX / XtX
                ss2 = float(np.trace(xtx @ components.T @ components))
                ss3 = self.backend.ss3(
                    dataset, mean, projector, latent_mean, components
                )
                noise_variance = max(
                    (ss1 + ss2 - 2.0 * ss3) / (n_samples * n_features), 1e-12
                )

                error = None
                if config.compute_error_every_iteration:
                    error = self.backend.reconstruction_error(
                        dataset, mean, components, config.error_sample_fraction, rng
                    )
                stats = IterationStats(
                    index=iteration,
                    noise_variance=noise_variance,
                    error=error,
                    accuracy=None if error is None else 1.0 - error,
                    elapsed_seconds=time.perf_counter() - started,
                    simulated_seconds=self.backend.simulated_seconds - sim_start,
                    intermediate_bytes=self.backend.intermediate_bytes - bytes_start,
                )
                history.append(stats)
                convergence_delta = (
                    None if previous_ss is None else abs(previous_ss - noise_variance)
                )
                if tracer.enabled:
                    denom = float(np.linalg.norm(previous_components))
                    subspace_delta = (
                        float(np.linalg.norm(components - previous_components)) / denom
                        if denom > 0.0
                        else float("inf")
                    )
                    iter_span.set(
                        objective=noise_variance,
                        convergence_delta=convergence_delta,
                        subspace_delta=subspace_delta,
                        error=error,
                        accuracy=stats.accuracy,
                        intermediate_bytes=stats.intermediate_bytes,
                    )
                registry = get_registry()
                if registry.enabled:
                    registry.counter("spca_em_iterations_total").inc()
                    registry.histogram("spca_iteration_sim_seconds").observe(
                        stats.simulated_seconds - previous_sim
                    )
                    registry.gauge("spca_em_iteration").set(iteration)
                    registry.gauge("spca_em_objective").set(noise_variance)
                    if convergence_delta is not None:
                        registry.gauge("spca_em_convergence_delta").set(
                            convergence_delta
                        )
                    if stats.accuracy is not None:
                        registry.gauge("spca_em_accuracy").set(stats.accuracy)
                previous_sim = stats.simulated_seconds
                previous_ss = noise_variance
                should_stop = tracker.update(error)
                if (
                    checkpoint is not None
                    and not should_stop
                    and checkpoint.due(iteration)
                ):
                    # The rng state is captured after this iteration's draws
                    # and previous_error after the tracker update, so the
                    # resumed loop replays the remaining iterations exactly.
                    snapshot = EMCheckpoint(
                        iteration=iteration,
                        components=np.array(components, copy=True),
                        noise_variance=noise_variance,
                        mean=np.array(mean, copy=True),
                        ss1=ss1,
                        previous_error=tracker.previous_error,
                        rng_state=rng.bit_generator.state,
                        history=tuple(history.iterations),
                        config=asdict(config),
                    )
                    nbytes = checkpoint.store.save(snapshot)
                    self.backend.charge_checkpoint(nbytes, kind="write")
                    if tracer.enabled:
                        tracer.event(
                            "checkpoint_write", iteration=iteration, bytes=nbytes
                        )
                if should_stop:
                    break
        history.stop_reason = tracker.stop_reason or "max_iterations"

        model = PCAModel(
            components=components,
            mean=mean,
            noise_variance=noise_variance,
            n_samples=n_samples,
        )
        return model, history

    def _initialize(
        self, data: Matrix, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        config = self.config
        if not config.smart_init:
            return random_initialization(data.shape[1], config.n_components, rng)

        def fit_sample(sample):
            model = fit_ppca(
                sample,
                config.n_components,
                max_iterations=config.smart_init_iterations,
                seed=config.seed,
            )
            return model.components, model.noise_variance

        return smart_guess_initialization(
            data, fit_sample, config.smart_init_fraction, rng
        )
