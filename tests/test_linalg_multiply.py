"""Efficient multiplication patterns (Section 3.3) against dense references."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.linalg import (
    broadcast_times,
    partition_rows,
    transpose_times_accumulate,
    xcy_associative,
)
from repro.linalg.multiply import xcy_block


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def test_broadcast_times_sparse(rng):
    matrix = sp.random(40, 10, density=0.2, random_state=8, format="csr")
    small = rng.normal(size=(10, 3))
    np.testing.assert_allclose(
        broadcast_times(matrix, small), matrix.todense() @ small, atol=1e-12
    )


def test_broadcast_times_shape_error(rng):
    with pytest.raises(ShapeError):
        broadcast_times(np.ones((4, 3)), np.ones((5, 2)))


def test_transpose_times_accumulate_matches_direct(rng):
    matrix = sp.random(60, 14, density=0.25, random_state=3, format="csr")
    right = rng.normal(size=(60, 5))
    blocks = partition_rows(matrix, 4)
    right_blocks = [right[b.start : b.stop] for b in blocks]
    result = transpose_times_accumulate(
        [b.data for b in blocks], right_blocks
    )
    np.testing.assert_allclose(result, matrix.todense().T @ right, atol=1e-10)


def test_transpose_times_accumulate_rejects_empty():
    with pytest.raises(ShapeError):
        transpose_times_accumulate([], [])


def test_transpose_times_accumulate_rejects_mismatch(rng):
    with pytest.raises(ShapeError):
        transpose_times_accumulate([np.ones((3, 2))], [np.ones((4, 2))])


def test_xcy_associative_matches_naive_sparse(rng):
    y_row = sp.random(1, 30, density=0.2, random_state=5, format="csr")
    components = rng.normal(size=(30, 4))
    x_row = rng.normal(size=4)
    naive = float((x_row @ components.T) @ np.asarray(y_row.todense()).ravel())
    assert xcy_associative(x_row, components, y_row) == pytest.approx(naive)


def test_xcy_associative_dense(rng):
    y_row = rng.normal(size=12)
    components = rng.normal(size=(12, 3))
    x_row = rng.normal(size=3)
    naive = float((x_row @ components.T) @ y_row)
    assert xcy_associative(x_row, components, y_row) == pytest.approx(naive)


def test_xcy_associative_shape_errors(rng):
    with pytest.raises(ShapeError):
        xcy_associative(np.ones(3), np.ones((5, 4)), np.ones(5))
    with pytest.raises(ShapeError):
        xcy_associative(np.ones(4), np.ones((5, 4)), np.ones(6))
    with pytest.raises(ShapeError):
        xcy_associative(np.ones(4), np.ones((5, 4)), sp.csr_matrix((1, 6)))


def test_xcy_block_matches_rowwise(rng):
    matrix = sp.random(25, 18, density=0.3, random_state=7, format="csr")
    components = rng.normal(size=(18, 4))
    latent = rng.normal(size=(25, 4))
    rowwise = sum(
        xcy_associative(latent[i], components, matrix[i]) for i in range(25)
    )
    assert xcy_block(latent, components, matrix) == pytest.approx(rowwise)


def test_xcy_block_shape_error(rng):
    with pytest.raises(ShapeError):
        xcy_block(np.ones((3, 4)), np.ones((6, 4)), np.ones((4, 6)))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    d_cols=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_xcy_block_is_trace_identity(n, d_cols, k, seed):
    # sum_i X_i C' Y_i' == trace(C' Y' X)
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(n, d_cols))
    components = rng.normal(size=(d_cols, k))
    latent = rng.normal(size=(n, k))
    trace = float(np.trace(components.T @ matrix.T @ latent))
    assert xcy_block(latent, components, matrix) == pytest.approx(trace, abs=1e-8)
