"""Shared test fixtures.

Runtime shape contracts (:mod:`repro.lint.contracts`) are armed for the whole
suite so every kernel call in every test doubles as a contract check.  The
fixture mirrors :mod:`repro.lint.pytest_plugin`; it is duplicated here because
``pytest_plugins`` may only be declared in the rootdir conftest.
"""

from __future__ import annotations

import pytest

from repro.lint import contracts


@pytest.fixture(scope="session", autouse=True)
def repro_runtime_contracts():
    """Enable runtime contract checking for the whole test session."""
    with contracts.checked():
        yield
