"""Unit tests for repro.engine.exec: executors, shm transport, fault plans.

The equivalence *property* (serial == threads == processes through a full
engine run) lives in ``tests/test_executor_equivalence.py``; this module
tests the layer's own contracts -- index ordering, exception selection,
shared-memory round-trips and leak-freedom, sizeof-cache hygiene, and the
``plan_task`` RNG-stream fidelity the concurrent drivers rely on.
"""

import gc
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine.exec import (
    EXECUTOR_NAMES,
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ShmArrayRef,
    ShmBlockRegistry,
    ShmSparseRef,
    ThreadPoolTaskExecutor,
    decode_payload,
    encode_payload,
    make_executor,
    resolve_executor,
)
from repro.engine.serde import sizeof, sizeof_cache_entries
from repro.errors import InvalidPlanError
from repro.faults import FaultSite, PlannedFaults, RandomFaults
from repro.faults.plan import FaultPlan, KillTask, Straggler
from repro.obs import tracing


def _square(x):
    return x * x


def _jittered_square(x):
    # Sleep longer for earlier tasks so completion order inverts submission
    # order -- the executor must still return results by index.
    time.sleep((7 - x) * 0.002)
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"task {x} failed")
    return x


def _payload_total(payload):
    dense, sparse, extras = payload
    return float(dense.sum()) + float(sparse.sum()) + sum(extras)


@pytest.fixture(params=EXECUTOR_NAMES)
def executor(request):
    with make_executor(request.param, workers=2) as ex:
        yield ex


class TestFactory:
    def test_make_executor_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        with make_executor("threads", 3) as ex:
            assert isinstance(ex, ThreadPoolTaskExecutor)
            assert ex.workers == 3
        with make_executor("processes", 2) as ex:
            assert isinstance(ex, ProcessPoolTaskExecutor)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidPlanError):
            make_executor("gpu")

    def test_resolve_executor(self):
        assert resolve_executor(None).serial
        assert resolve_executor("serial").serial
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex
        with pytest.raises(InvalidPlanError):
            resolve_executor(42)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadPoolTaskExecutor(-1)


class TestContract:
    def test_results_in_index_order(self, executor):
        assert executor.run_tasks(_square, list(range(20))) == [
            x * x for x in range(20)
        ]

    def test_order_despite_inverted_completion(self, executor):
        assert executor.run_tasks(_jittered_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_empty_batch(self, executor):
        assert executor.run_tasks(_square, []) == []

    def test_lowest_index_failure_propagates(self, executor):
        # Index 1 (payload 3) is the first failing task a serial loop hits.
        with pytest.raises(ValueError, match="task 3 failed"):
            executor.run_tasks(_fail_on_odd, [0, 3, 1, 5])

    def test_serial_emits_no_events(self):
        with tracing() as tracer:
            SerialExecutor().run_tasks(_square, [1, 2, 3])
        assert tracer.events == []

    def test_concurrent_executors_emit_dispatch_and_join(self):
        with ThreadPoolTaskExecutor(2) as ex:
            with tracing() as tracer:
                ex.run_tasks(_square, [1, 2, 3], label="unit")
        kinds = [e.type for e in tracer.events]
        assert kinds == ["executor_dispatch", "executor_join"]
        dispatch, join = tracer.events
        assert dispatch.attrs["label"] == "unit"
        assert dispatch.attrs["n_tasks"] == 3
        assert dispatch.attrs["executor"] == "threads"
        assert len(join.attrs["task_wall_s"]) == 3

    def test_closure_executor(self):
        serial = SerialExecutor()
        assert serial.closure_executor() is serial
        with ThreadPoolTaskExecutor(2) as threads:
            assert threads.closure_executor() is threads
        with ProcessPoolTaskExecutor(2) as procs:
            sibling = procs.closure_executor()
            assert sibling is not procs
            assert sibling.workers == procs.workers
            # Closures run fine through the sibling, and its dispatch events
            # say where they fell back from.
            acc = []
            with tracing() as tracer:
                out = sibling.run_tasks(lambda x: acc.append(x) or x, [1, 2])
            assert out == [1, 2] and acc == [1, 2]
            assert tracer.events[0].attrs["fallback_from"] == "processes"

    def test_processes_unpicklable_task_runs_inline(self):
        captured = []
        with ProcessPoolTaskExecutor(2) as ex:
            out = ex.run_tasks(lambda x: captured.append(x) or x + 1, [5, 6])
        assert out == [6, 7]
        assert captured == [5, 6]  # ran in this process, in index order


class TestSharedMemory:
    def test_dense_round_trip_is_bitwise(self):
        registry = ShmBlockRegistry()
        try:
            arr = np.random.default_rng(0).standard_normal((64, 33))
            ref = encode_payload(arr, registry, threshold=0)
            assert isinstance(ref, ShmArrayRef)
            out = decode_payload(ref)
            assert out.dtype == arr.dtype and out.shape == arr.shape
            assert np.array_equal(out, arr)
        finally:
            registry.unlink_all()

    def test_non_contiguous_array_survives(self):
        registry = ShmBlockRegistry()
        try:
            base = np.arange(400, dtype=np.float64).reshape(20, 20)
            view = base[::2, 1::3]  # non-contiguous slice
            out = decode_payload(encode_payload(view, registry, threshold=0))
            assert np.array_equal(out, view)
        finally:
            registry.unlink_all()

    def test_sparse_round_trip(self):
        registry = ShmBlockRegistry()
        try:
            mat = sp.random(50, 40, density=0.3, random_state=1, format="csr")
            ref = encode_payload(mat, registry, threshold=0)
            assert isinstance(ref, ShmSparseRef)
            out = decode_payload(ref)
            assert out.format == "csr"
            assert (out != mat).nnz == 0
            assert np.array_equal(out.indptr, mat.indptr)
        finally:
            registry.unlink_all()

    def test_nested_containers_and_threshold(self):
        registry = ShmBlockRegistry()
        try:
            big = np.ones(10_000)
            small = np.ones(3)
            payload = {"a": [big, small], "b": (small, {"c": big}), "d": 7}
            encoded = encode_payload(payload, registry, threshold=1024)
            assert isinstance(encoded["a"][0], ShmArrayRef)
            assert encoded["a"][1] is small  # below threshold: passed as-is
            assert isinstance(encoded["b"][1]["c"], ShmArrayRef)
            decoded = decode_payload(encoded)
            assert np.array_equal(decoded["a"][0], big)
            assert decoded["a"][1] is small
            assert decoded["d"] == 7
        finally:
            registry.unlink_all()

    def test_repeat_shares_are_memoized(self):
        registry = ShmBlockRegistry()
        try:
            arr = np.ones(5000)
            ref1 = registry.share_array(arr)
            ref2 = registry.share_array(arr)
            assert ref1.name == ref2.name
            assert len(registry.active_segments()) == 1
        finally:
            registry.unlink_all()

    def test_segment_unlinked_when_array_collected(self):
        registry = ShmBlockRegistry()
        try:
            arr = np.ones(5000)
            registry.share_array(arr)
            assert len(registry.active_segments()) == 1
            del arr
            gc.collect()
            assert registry.active_segments() == []
        finally:
            registry.unlink_all()

    def test_unlink_all_is_idempotent(self):
        registry = ShmBlockRegistry()
        arrs = [np.ones(4000), np.zeros(4000)]
        for a in arrs:
            registry.share_array(a)
        assert len(registry.active_segments()) == 2
        registry.unlink_all()
        assert registry.active_segments() == []
        registry.unlink_all()  # second call is a no-op

    def test_process_executor_leaves_no_segments(self):
        # Acceptance criterion: after shutdown, every segment is unlinked.
        ex = ProcessPoolTaskExecutor(workers=2, shm_threshold=0)
        rng = np.random.default_rng(3)
        payloads = [
            (
                rng.standard_normal((40, 10)),
                sp.random(30, 8, density=0.4, random_state=i, format="csr"),
                [1.0, float(i)],
            )
            for i in range(6)
        ]
        expected = [_payload_total(p) for p in payloads]
        got = ex.run_tasks(_payload_total, payloads)
        assert got == pytest.approx(expected)
        assert ex.registry.active_segments() != []  # payloads still alive
        ex.shutdown()
        assert ex.registry.active_segments() == []

    def test_shutdown_clears_sizeof_cache(self):
        with ThreadPoolTaskExecutor(2) as ex:
            probe = np.ones(128)
            sizeof(probe)
            assert sizeof_cache_entries() > 0
        del ex
        assert sizeof_cache_entries() == 0


class TestPlanTask:
    def test_random_faults_plan_matches_serial_draws(self):
        """plan_task must consume the generator exactly like a retry loop."""
        planned = RandomFaults(rate=0.4, seed=123)
        looped = RandomFaults(rate=0.4, seed=123)
        sites = [
            FaultSite("mapreduce", "YtXJob", kind, task_id, 0)
            for kind in ("map", "reduce")
            for task_id in range(6)
        ]
        for site in sites:
            plan = planned.plan_task(site, max_attempts=4)
            manual = []
            for attempt in range(1, 5):
                s = FaultSite(site.engine, site.job, site.kind, site.task_id, attempt)
                factor = looped.time_factor(s)
                label = looped.fail(s)
                manual.append((factor, label))
                if label is None:
                    break
            assert plan == manual

    def test_planned_faults_kill_plan(self):
        plan = FaultPlan(events=(KillTask(job="J", task=0, attempts=2),))
        inj = PlannedFaults(plan)
        inj.begin_job("mapreduce", "J")
        decisions = inj.plan_task(FaultSite("mapreduce", "J", "map", 0, 0), 4)
        assert [label for _, label in decisions] == [
            "kill_task",
            "kill_task",
            None,
        ]
        untouched = inj.plan_task(FaultSite("mapreduce", "J", "map", 1, 0), 4)
        assert untouched == [(1.0, None)]

    def test_planned_faults_straggler_factor(self):
        plan = FaultPlan(events=(Straggler(job="J", task=2, factor=5.0),))
        inj = PlannedFaults(plan)
        inj.begin_job("mapreduce", "J")
        decisions = inj.plan_task(FaultSite("mapreduce", "J", "map", 2, 0), 4)
        assert decisions == [(5.0, None)]
