"""Timing harness for the batched record pipeline.

Measures the record-pipeline hot ops (shuffle partitioning, ``sizeof``
memoization, map-task dispatch) and end-to-end ``SPCA.fit`` on both engine
backends, each as optimized-vs-baseline pairs.  The baseline is the same
engine with the optimization disabled (``enable_batch=False``, cold size
cache, per-record partitioner), so every reported speedup isolates one
change.  Results are written as ``BENCH_3.json``; see the perf section of
``benchmarks/README.md`` for the schema.

Wall-clock only: these are real Python timings of the simulator itself, not
simulated cluster seconds.  Ratios are the meaningful quantity.
"""

from __future__ import annotations

import os
import pathlib
import platform
import subprocess
import time
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.exec import EXECUTOR_NAMES, make_executor
from repro.engine.mapreduce import MapReduceJob, MapReduceRuntime
from repro.engine.mapreduce.runtime import _partition_of, _partition_pairs
from repro.engine.serde import clear_sizeof_cache, sizeof
from repro.engine.spark.context import SparkContext
from repro.jobs import mapreduce_jobs as mr
from repro.obs import collecting, tracing
from repro.obs.export import TraceData
from repro.obs.metrics import METRICS_SCHEMA

BENCH_NAME = "BENCH_3"
EXEC_BENCH_NAME = "BENCH_5"

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=4)

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

REQUIRED_OP_FIELDS = {"name", "baseline_s", "optimized_s", "speedup", "params"}
REQUIRED_E2E_FIELDS = {
    "backend",
    "shape",
    "records_per_task",
    "per_record_s",
    "batch_s",
    "speedup",
}
REQUIRED_PROVENANCE_FIELDS = {"git_sha", "cpu_count", "python", "platform"}
REQUIRED_EXEC_FIELDS = {
    "backend",
    "executor",
    "workers",
    "shape",
    "records_per_task",
    "fit_s",
    "speedup_vs_serial",
}


def provenance(**config: Any) -> dict:
    """Machine/build provenance recorded in every BENCH_* document.

    Timings are meaningless without knowing what produced them: the commit,
    the core count (a 1-core container cannot show multi-core speedups, and
    the document must say so), and the interpreter.  Extra keyword arguments
    record the benchmark's own configuration (executor, workers, ...).
    """
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "git_sha": git_sha,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        **config,
    }


def _validate_provenance(result: dict) -> None:
    prov = result.get("provenance")
    if not isinstance(prov, dict):
        raise ValueError("missing top-level field 'provenance'")
    missing = REQUIRED_PROVENANCE_FIELDS - prov.keys()
    if missing:
        raise ValueError(f"provenance missing fields {sorted(missing)}")
    if not (isinstance(prov["cpu_count"], int) and prov["cpu_count"] >= 1):
        raise ValueError("provenance cpu_count must be a positive int")


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best (minimum) wall-clock seconds of *repeats* calls to *fn*."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _op(name: str, baseline_s: float, optimized_s: float, **params: Any) -> dict:
    return {
        "name": name,
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / max(optimized_s, 1e-12),
        "params": params,
    }


# -- micro ops -------------------------------------------------------------


def bench_shuffle_partitioning(repeats: int, n_records: int) -> dict:
    """One crc32 per distinct key repr vs one per record."""
    keys = ["YtX", "XtX", "mean/sums", "mean/count", "fnorm", "ss3"]
    pairs = [(keys[i % len(keys)], i) for i in range(n_records)]

    def per_record():
        buckets = [[] for _ in range(4)]
        for pair in pairs:
            buckets[_partition_of(pair[0], 4)].append(pair)
        return buckets

    return _op(
        "shuffle_partitioning",
        baseline_s=best_of(per_record, repeats),
        optimized_s=best_of(lambda: _partition_pairs(pairs, 4), repeats),
        n_records=n_records,
        n_distinct_keys=len(keys),
    )


def bench_sizeof_memoization(repeats: int, n_values: int) -> dict:
    """Warm identity-keyed cache vs re-measuring every value."""
    rng = np.random.default_rng(0)
    values = [
        sp.random(64, 64, density=0.1, random_state=i, format="csr")
        if i % 2
        else rng.normal(size=(64, 64))
        for i in range(n_values)
    ]

    def cold():
        clear_sizeof_cache()
        for value in values:
            sizeof(value)

    def warm():
        for value in values:
            sizeof(value)

    cold_s = best_of(cold, repeats)
    clear_sizeof_cache()
    sizeof(values)  # populate once
    warm_s = best_of(warm, repeats)
    return _op(
        "sizeof_memoization",
        baseline_s=cold_s,
        optimized_s=warm_s,
        n_values=n_values,
    )


def bench_map_dispatch(repeats: int, records_per_split: int) -> dict:
    """One ``map_batch`` stacked-kernel call vs per-record ``map`` calls."""
    split = [
        (i * 4, sp.random(4, 128, density=0.1, random_state=i, format="csr"))
        for i in range(records_per_split)
    ]
    splits = [split]

    def run(enable_batch: bool) -> None:
        runtime = MapReduceRuntime(cluster=CLUSTER, enable_batch=enable_batch)
        job = MapReduceJob(
            name="meanJob", mapper=mr.MeanMapper(), reducer=mr.MatrixSumReducer()
        )
        runtime.run(job, splits)

    return _op(
        "map_task_dispatch",
        baseline_s=best_of(lambda: run(False), repeats),
        optimized_s=best_of(lambda: run(True), repeats),
        records_per_split=records_per_split,
    )


# -- end-to-end ------------------------------------------------------------


def _fit_config(max_iterations: int) -> SPCAConfig:
    return SPCAConfig(
        n_components=5,
        max_iterations=max_iterations,
        tolerance=0.0,
        seed=1,
        compute_error_every_iteration=False,
    )


def bench_end_to_end(
    backend_kind: str,
    data,
    records_per_task: int,
    repeats: int,
    max_iterations: int,
) -> dict:
    """Full ``SPCA.fit`` wall clock, batch vs per-record, one backend."""
    config = _fit_config(max_iterations)

    def fit(enable_batch: bool) -> None:
        if backend_kind == "mapreduce":
            runtime = MapReduceRuntime(cluster=CLUSTER, enable_batch=enable_batch)
            backend = MapReduceBackend(
                config, runtime=runtime, records_per_split=records_per_task
            )
        else:
            context = SparkContext(cluster=CLUSTER, enable_batch=enable_batch)
            backend = SparkBackend(
                config, context=context, records_per_partition=records_per_task
            )
        SPCA(config, backend).fit(data)

    per_record_s = best_of(lambda: fit(False), repeats)
    batch_s = best_of(lambda: fit(True), repeats)
    return {
        "backend": backend_kind,
        "shape": list(data.shape),
        "records_per_task": records_per_task,
        "per_record_s": per_record_s,
        "batch_s": batch_s,
        "speedup": per_record_s / max(batch_s, 1e-12),
    }


# -- suite -----------------------------------------------------------------


def run_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run every benchmark; returns the BENCH_3 result document."""
    if repeats is None:
        repeats = 2 if quick else 3
    if quick:
        data = sp.random(800, 120, density=0.05, random_state=0, format="csr")
        granularities = [8]
        max_iterations = 2
        n_records = 2000
        n_values = 64
    else:
        data = sp.random(4000, 400, density=0.05, random_state=0, format="csr")
        granularities = [16, 32]
        max_iterations = 3
        n_records = 20000
        n_values = 256

    # Collect engine metrics across every fit the suite performs; the
    # snapshot is stamped into the document so a BENCH_3.json records not
    # just timings but what the engines actually did (jobs, bytes moved).
    with collecting() as registry:
        ops = [
            bench_shuffle_partitioning(repeats, n_records),
            bench_sizeof_memoization(repeats, n_values),
            bench_map_dispatch(repeats, 64 if quick else 256),
        ]
        end_to_end = [
            bench_end_to_end(kind, data, granularity, repeats, max_iterations)
            for kind in ("mapreduce", "spark")
            for granularity in granularities
        ]
        metrics_snapshot = registry.snapshot()
    result = {
        "bench": BENCH_NAME,
        "quick": quick,
        "repeats": repeats,
        "created_unix": time.time(),
        # The batch suite always measures the serial executor: it isolates
        # the batching optimization, not cross-core scaling (BENCH_5 does).
        "provenance": provenance(executor="serial", workers=1),
        "ops": ops,
        "end_to_end": end_to_end,
        "metrics": metrics_snapshot,
    }
    validate(result)
    return result


def _validate_metrics(result: dict) -> None:
    """Check the stamped metrics snapshot, when present.

    Optional for backward compatibility with documents generated before the
    metrics registry existed; when the block is there it must be a valid
    ``repro.metrics/1`` snapshot that saw at least one engine job.
    """
    snapshot = result.get("metrics")
    if snapshot is None:
        return
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"metrics block schema must be {METRICS_SCHEMA!r}, "
            f"got {snapshot.get('schema')!r}"
        )
    jobs = [
        c for c in snapshot.get("counters", []) if c["name"] == "spca_jobs_total"
    ]
    if not jobs or sum(c["value"] for c in jobs) <= 0:
        raise ValueError("metrics block recorded no engine jobs")


def validate(result: dict) -> None:
    """Schema check for a BENCH_3 document; raises ValueError on violation."""
    for field in ("bench", "quick", "repeats", "created_unix", "ops", "end_to_end"):
        if field not in result:
            raise ValueError(f"missing top-level field {field!r}")
    if result["bench"] != BENCH_NAME:
        raise ValueError(f"bench must be {BENCH_NAME!r}, got {result['bench']!r}")
    _validate_provenance(result)
    _validate_metrics(result)
    if not result["ops"] or not result["end_to_end"]:
        raise ValueError("ops and end_to_end must be non-empty")
    for op in result["ops"]:
        missing = REQUIRED_OP_FIELDS - op.keys()
        if missing:
            raise ValueError(f"op {op.get('name')!r} missing fields {sorted(missing)}")
        for field in ("baseline_s", "optimized_s", "speedup"):
            if not (isinstance(op[field], float) and op[field] > 0):
                raise ValueError(f"op {op['name']!r}: {field} must be positive")
    for entry in result["end_to_end"]:
        missing = REQUIRED_E2E_FIELDS - entry.keys()
        if missing:
            raise ValueError(
                f"end_to_end {entry.get('backend')!r} missing {sorted(missing)}"
            )
        if entry["backend"] not in ("mapreduce", "spark"):
            raise ValueError(f"unknown backend {entry['backend']!r}")
        for field in ("per_record_s", "batch_s", "speedup"):
            if not (isinstance(entry[field], float) and entry[field] > 0):
                raise ValueError(
                    f"end_to_end {entry['backend']!r}: {field} must be positive"
                )


# -- executor scaling suite (BENCH_5) --------------------------------------


def _fit_once(
    backend_kind: str,
    data,
    records_per_task: int,
    max_iterations: int,
    executor,
) -> None:
    config = _fit_config(max_iterations)
    if backend_kind == "mapreduce":
        runtime = MapReduceRuntime(cluster=CLUSTER, executor=executor)
        backend = MapReduceBackend(
            config, runtime=runtime, records_per_split=records_per_task
        )
    else:
        context = SparkContext(cluster=CLUSTER, executor=executor)
        backend = SparkBackend(
            config, context=context, records_per_partition=records_per_task
        )
    SPCA(config, backend).fit(data)


def run_executor_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """End-to-end ``SPCA.fit`` under every executor; the BENCH_5 document.

    For each backend: a serial baseline, then ``threads`` and ``processes``
    across a worker-scaling curve.  ``speedup_vs_serial`` is recorded as
    measured -- on a single-core machine (see ``provenance.cpu_count``) the
    curve is honestly flat-to-negative, which is exactly why provenance is
    part of the schema.
    """
    if repeats is None:
        repeats = 1 if quick else 2
    if quick:
        data = sp.random(600, 100, density=0.05, random_state=0, format="csr")
        records_per_task = 8
        max_iterations = 2
        worker_counts = [1, 2]
    else:
        data = sp.random(2400, 240, density=0.05, random_state=0, format="csr")
        records_per_task = 16
        max_iterations = 3
        worker_counts = [1, 2, 4]

    def entry(executor_name: str, workers: int, fit_s: float, serial_s: float, kind: str) -> dict:
        return {
            "backend": kind,
            "executor": executor_name,
            "workers": workers,
            "shape": list(data.shape),
            "records_per_task": records_per_task,
            "fit_s": fit_s,
            "speedup_vs_serial": serial_s / max(fit_s, 1e-12),
        }

    end_to_end = []
    with collecting() as registry:
        for kind in ("mapreduce", "spark"):
            serial_s = best_of(
                lambda: _fit_once(kind, data, records_per_task, max_iterations, None),
                repeats,
            )
            end_to_end.append(entry("serial", 1, serial_s, serial_s, kind))
            for executor_name in ("threads", "processes"):
                for workers in worker_counts:
                    with make_executor(executor_name, workers) as executor:
                        fit_s = best_of(
                            lambda: _fit_once(
                                kind, data, records_per_task, max_iterations, executor
                            ),
                            repeats,
                        )
                    end_to_end.append(
                        entry(executor_name, workers, fit_s, serial_s, kind)
                    )
        metrics_snapshot = registry.snapshot()
    result = {
        "bench": EXEC_BENCH_NAME,
        "quick": quick,
        "repeats": repeats,
        "created_unix": time.time(),
        "provenance": provenance(worker_counts=worker_counts),
        "end_to_end": end_to_end,
        "metrics": metrics_snapshot,
    }
    validate_executor(result)
    return result


def validate_executor(result: dict) -> None:
    """Schema check for a BENCH_5 document; raises ValueError on violation."""
    for field in ("bench", "quick", "repeats", "created_unix", "end_to_end"):
        if field not in result:
            raise ValueError(f"missing top-level field {field!r}")
    if result["bench"] != EXEC_BENCH_NAME:
        raise ValueError(
            f"bench must be {EXEC_BENCH_NAME!r}, got {result['bench']!r}"
        )
    _validate_provenance(result)
    _validate_metrics(result)
    if not result["end_to_end"]:
        raise ValueError("end_to_end must be non-empty")
    curves: dict[tuple[str, str], set[int]] = {}
    for item in result["end_to_end"]:
        missing = REQUIRED_EXEC_FIELDS - item.keys()
        if missing:
            raise ValueError(
                f"end_to_end {item.get('backend')!r} missing {sorted(missing)}"
            )
        if item["backend"] not in ("mapreduce", "spark"):
            raise ValueError(f"unknown backend {item['backend']!r}")
        if item["executor"] not in EXECUTOR_NAMES:
            raise ValueError(f"unknown executor {item['executor']!r}")
        if not (isinstance(item["workers"], int) and item["workers"] >= 1):
            raise ValueError("workers must be a positive int")
        for field in ("fit_s", "speedup_vs_serial"):
            if not (isinstance(item[field], float) and item[field] > 0):
                raise ValueError(
                    f"end_to_end {item['backend']!r}: {field} must be positive"
                )
        curves.setdefault((item["backend"], item["executor"]), set()).add(
            item["workers"]
        )
    for kind in ("mapreduce", "spark"):
        if (kind, "serial") not in curves:
            raise ValueError(f"missing serial baseline for backend {kind!r}")
        for executor_name in ("threads", "processes"):
            counts = curves.get((kind, executor_name), set())
            if len(counts) < 2:
                raise ValueError(
                    f"{kind}/{executor_name} needs a worker-scaling curve "
                    f"(>= 2 worker counts), got {sorted(counts)}"
                )


def summarize_executor(result: dict) -> str:
    prov = result["provenance"]
    lines = [
        f"{result['bench']}  (quick={result['quick']}, repeats={result['repeats']}, "
        f"cpus={prov['cpu_count']}, sha={prov['git_sha'][:12]})"
    ]
    lines.append(f"{'fit':<28}{'workers':>8}{'fit s':>12}{'vs serial':>11}")
    for item in result["end_to_end"]:
        label = f"{item['backend']}/{item['executor']}"
        lines.append(
            f"{label:<28}{item['workers']:>8}{item['fit_s']:>12.4f}"
            f"{item['speedup_vs_serial']:>10.2f}x"
        )
    return "\n".join(lines)


def traced_quick_fit() -> tuple[TraceData, dict]:
    """One deterministic quick-shape fit, traced and metered.

    Used by ``run.py --trace-out/--metrics-out`` and by CI's trace-diff
    step.  The shapes and seeds match the quick batch suite, and the
    returned trace uses simulated time only, so two runs of this function
    on any machine produce diff-identical traces.
    """
    data = sp.random(800, 120, density=0.05, random_state=0, format="csr")
    config = _fit_config(max_iterations=2)
    with tracing() as tracer, collecting() as registry:
        backend = SparkBackend(
            config,
            context=SparkContext(cluster=CLUSTER),
            records_per_partition=8,
        )
        SPCA(config, backend).fit(data)
        snapshot = registry.snapshot()
    return TraceData.from_tracer(tracer), snapshot


def summarize(result: dict) -> str:
    lines = [f"{result['bench']}  (quick={result['quick']}, repeats={result['repeats']})"]
    lines.append(f"{'op':<24}{'baseline s':>12}{'optimized s':>13}{'speedup':>9}")
    for op in result["ops"]:
        lines.append(
            f"{op['name']:<24}{op['baseline_s']:>12.4f}"
            f"{op['optimized_s']:>13.4f}{op['speedup']:>8.2f}x"
        )
    lines.append(
        f"{'end-to-end fit':<24}{'per-record s':>12}{'batch s':>13}{'speedup':>9}"
    )
    for entry in result["end_to_end"]:
        label = f"{entry['backend']}/r{entry['records_per_task']}"
        lines.append(
            f"{label:<24}{entry['per_record_s']:>12.4f}"
            f"{entry['batch_s']:>13.4f}{entry['speedup']:>8.2f}x"
        )
    return "\n".join(lines)
