"""Shared-memory lifetime on exception paths, and sizeof-memo hygiene.

The leak contract: after any failure -- a worker dying mid-task, a task
raising, an attach to a vanished segment, a fill error during ``share_array``
-- executor shutdown leaves zero live segments and no orphaned ``/dev/shm``
files.  Plus the stale-id regression for the identity-keyed ``sizeof`` memo
and its clear-on-commit in the shm batch path.
"""

from __future__ import annotations

import os
import weakref

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.engine import serde
from repro.engine.exec.processes import ProcessPoolTaskExecutor
from repro.engine.exec.shm import ShmBlockRegistry, _ATTACHED, _attach
from repro.engine.serde import clear_sizeof_cache, sizeof, sizeof_cache_entries


def _shm_names() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _die(_payload):
    os._exit(13)  # simulates a worker killed mid-task (no cleanup runs)


def _boom(_payload):
    raise RuntimeError("task failure")


def _ok(payload):
    return float(np.asarray(payload).sum())


class TestShareArrayExceptionPath:
    def test_fill_failure_unlinks_the_segment(self, monkeypatch):
        registry = ShmBlockRegistry()
        before = _shm_names()

        class ExplodingNdarray:
            def __call__(self, *args, **kwargs):
                raise MemoryError("simulated fill failure")

        monkeypatch.setattr(
            "repro.engine.exec.shm.np.ndarray", ExplodingNdarray()
        )
        with pytest.raises(MemoryError):
            registry.share_array(np.ones((64, 64)))
        assert registry.active_segments() == []
        assert _shm_names() - before == set()

    def test_attach_failure_leaves_worker_cache_clean(self):
        with pytest.raises(FileNotFoundError):
            _attach("repro_no_such_segment")
        assert "repro_no_such_segment" not in _ATTACHED


class TestExecutorFailureLeaks:
    def test_worker_death_mid_task_leaks_nothing(self):
        before = _shm_names()
        executor = ProcessPoolTaskExecutor(workers=2, shm_threshold=0)
        payloads = [np.ones((32, 32)) for _ in range(2)]
        try:
            with pytest.raises(BrokenProcessPool):
                executor.run_tasks(_die, payloads)
        finally:
            executor.shutdown()
        assert executor.registry.active_segments() == []
        assert _shm_names() - before == set()

    def test_raising_tasks_leak_nothing(self):
        before = _shm_names()
        executor = ProcessPoolTaskExecutor(workers=2, shm_threshold=0)
        payloads = [np.ones((16, 16)) for _ in range(4)]
        try:
            with pytest.raises(RuntimeError):
                executor.run_tasks(_boom, payloads)
        finally:
            executor.shutdown()
        assert executor.registry.active_segments() == []
        assert _shm_names() - before == set()

    def test_shutdown_with_segments_from_in_flight_batch(self):
        # The batch completed but its source arrays are still alive (their
        # segments too); shutdown must reclaim every one of them.
        before = _shm_names()
        executor = ProcessPoolTaskExecutor(workers=2, shm_threshold=0)
        payloads = [np.full((32, 32), float(i)) for i in range(3)]
        results = executor.run_tasks(_ok, payloads)
        assert results == [float(np.full((32, 32), float(i)).sum()) for i in range(3)]
        assert executor.registry.active_segments() != []
        executor.shutdown()
        assert executor.registry.active_segments() == []
        assert _shm_names() - before == set()


class TestSizeofMemoStaleId:
    def test_recycled_id_cannot_alias_a_dead_entry(self):
        # Simulate the hazard: an entry whose weakref died still sits in the
        # memo under an id() the allocator has since recycled for a new,
        # differently-sized array.  The identity check must reject the hit.
        clear_sizeof_cache()
        array = np.ones((8, 8))
        victim = np.ones((2,))
        stale_ref = weakref.ref(victim)
        del victim
        assert stale_ref() is None
        bogus_size = 3
        serde._memo[id(array)] = (stale_ref, bogus_size)
        assert sizeof(array) == array.nbytes + serde._CONTAINER_OVERHEAD
        clear_sizeof_cache()

    def test_weakref_death_evicts_the_entry(self):
        clear_sizeof_cache()
        array = np.ones((4, 4))
        sizeof(array)
        assert sizeof_cache_entries() == 1
        del array
        import gc

        gc.collect()
        assert sizeof_cache_entries() == 0

    def test_shm_batch_clears_memo_on_commit(self):
        clear_sizeof_cache()
        executor = ProcessPoolTaskExecutor(workers=2, shm_threshold=0)
        try:
            big = np.ones((64, 64))
            sizeof(big)  # seed the memo
            assert sizeof_cache_entries() >= 1
            executor.run_tasks(_ok, [big])
            # The batch rode shared memory -> memo cleared at commit.
            assert sizeof_cache_entries() == 0
        finally:
            executor.shutdown()

    def test_pickle_only_batch_keeps_memo(self):
        clear_sizeof_cache()
        # Threshold high enough that nothing rides shared memory.
        executor = ProcessPoolTaskExecutor(workers=2, shm_threshold=1 << 30)
        try:
            array = np.ones((8, 8))
            sizeof(array)
            assert sizeof_cache_entries() == 1
            executor.run_tasks(_ok, [np.ones((4, 4))])
            assert sizeof_cache_entries() == 1
        finally:
            executor.shutdown()
