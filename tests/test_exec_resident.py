"""Worker-resident payloads: pin once, ship a tiny ref, stay bitwise equal.

Covers the resident store (`repro.engine.exec.resident`), the executor pin
API (base + the process executor's shared-memory staging), the runtime's
``ResidentDataset`` plumbing, and the end-to-end claims: a worker-resident
fit is bitwise identical to a plain one, and after iteration 1 the bytes
crossing the process-pool pickle pipe shrink by well over the 5x target.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.backends.mapreduce import MapReduceBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.exec import (
    ProcessPoolTaskExecutor,
    ResidentPayloadRef,
    SerialExecutor,
    ThreadPoolTaskExecutor,
    clear_resident_store,
    resident_keys,
    resolve_payload,
)
from repro.engine.exec import resident
from repro.engine.mapreduce.runtime import MapReduceRuntime, ResidentDataset
from repro.errors import EngineError
from repro.obs.metrics import collecting

CLUSTER = ClusterSpec(num_nodes=1, cores_per_node=4)


@pytest.fixture(autouse=True)
def _clean_store():
    clear_resident_store()
    yield
    clear_resident_store()


def make_payload():
    rng = np.random.default_rng(3)
    return [("r0", rng.normal(size=(64, 8))), ("r1", rng.normal(size=(64, 8)))]


# -- the store ---------------------------------------------------------------


def test_resolve_passthrough_for_plain_objects():
    payload = make_payload()
    assert resolve_payload(payload) is payload
    assert resolve_payload(None) is None


def test_ref_is_picklable_and_small():
    ref = ResidentPayloadRef(key="k/0", generation=4, segment="seg", nbytes=9)
    blob = pickle.dumps(ref)
    assert pickle.loads(blob) == ref
    assert len(blob) < 200


def test_base_pin_resolves_to_identical_object():
    executor = ThreadPoolTaskExecutor(workers=2)
    try:
        payload = make_payload()
        ref = executor.pin_payload("split/0", payload)
        assert ref.segment is None
        assert resolve_payload(ref) is payload
        assert resident_keys() == ["split/0"]
    finally:
        executor.shutdown()
    assert resident_keys() == []


def test_repin_bumps_generation_and_invalidates_old_ref():
    executor = SerialExecutor()
    try:
        first = executor.pin_payload("split/0", make_payload())
        replacement = make_payload()
        second = executor.pin_payload("split/0", replacement)
        assert second.generation > first.generation
        assert resolve_payload(second) is replacement
        # The stale ref must not silently resolve against the new entry.
        with pytest.raises(EngineError, match="split/0"):
            resolve_payload(first)
    finally:
        executor.shutdown()


def test_unresolvable_ref_without_segment_raises_engine_error():
    ref = ResidentPayloadRef(key="ghost", generation=999)
    with pytest.raises(EngineError, match="ghost"):
        resolve_payload(ref)


# -- the process executor: shared-memory staging -----------------------------


def test_processes_pin_stages_one_segment_and_unpin_releases_it():
    executor = ProcessPoolTaskExecutor(workers=2)
    try:
        payload = make_payload()
        ref = executor.pin_payload("split/0", payload)
        assert ref.segment is not None
        assert ref.nbytes > 0
        assert executor.registry.pinned_segments() == [ref.segment]
        # Driver-side resolution returns the *original* object.
        assert resolve_payload(ref) is payload
        executor.unpin_payload("split/0")
        assert executor.registry.pinned_segments() == []
        assert resident_keys() == []
    finally:
        executor.shutdown()


def test_processes_ref_restores_from_segment_on_store_miss():
    # Simulate a worker forked before the pin: evict the inherited entry and
    # force resolution down the attach-and-unpickle path.
    executor = ProcessPoolTaskExecutor(workers=2)
    try:
        payload = make_payload()
        ref = executor.pin_payload("split/0", payload)
        resident.evict("split/0")
        restored = resolve_payload(ref)
        assert restored is not payload
        assert [key for key, _ in restored] == [key for key, _ in payload]
        for (_, got), (_, expected) in zip(restored, payload):
            assert (np.asarray(got) == expected).all()
        # The miss path caches: the next resolve is a store hit.
        assert resolve_payload(ref) is restored
    finally:
        executor.shutdown()


def test_shutdown_releases_pins_and_segments():
    executor = ProcessPoolTaskExecutor(workers=2)
    executor.pin_payload("split/0", make_payload())
    executor.pin_payload("split/1", make_payload())
    assert len(executor.registry.pinned_segments()) == 2
    executor.shutdown()
    assert executor.registry.pinned_segments() == []
    assert executor.registry.active_segments() == []
    assert resident_keys() == []


# -- the runtime dataset -----------------------------------------------------


def test_resident_dataset_exposes_real_splits():
    splits = [[("a", 1)], [("b", 2), ("c", 3)]]
    refs = [
        ResidentPayloadRef(key="s/0", generation=1),
        ResidentPayloadRef(key="s/1", generation=2),
    ]
    dataset = ResidentDataset(splits, refs)
    assert len(dataset) == 2
    assert list(dataset) == splits
    assert dataset[1] == splits[1]
    with pytest.raises(ValueError):
        ResidentDataset(splits, refs[:1])


# -- end to end --------------------------------------------------------------


FIT_DATA = np.random.default_rng(7).normal(size=(1024, 32))
FIT_CONFIG = SPCAConfig(
    n_components=3, max_iterations=3, tolerance=0.0, seed=11,
    compute_error_every_iteration=False,
)


def fit_mapreduce(executor, worker_resident, config=FIT_CONFIG):
    runtime = MapReduceRuntime(cluster=CLUSTER, executor=executor)
    backend = MapReduceBackend(
        config,
        runtime=runtime,
        records_per_split=128,
        worker_resident=worker_resident,
    )
    model, _ = SPCA(config, backend).fit(FIT_DATA)
    backend._unpin_resident()
    return model


@pytest.mark.parametrize(
    "executor_factory",
    [ThreadPoolTaskExecutor, ProcessPoolTaskExecutor],
    ids=["threads", "processes"],
)
def test_resident_fit_bitwise_equals_plain(executor_factory):
    with executor_factory(workers=2) as executor:
        plain = fit_mapreduce(executor, worker_resident=False)
        pinned = fit_mapreduce(executor, worker_resident=True)
        assert resident_keys() == []
        if isinstance(executor, ProcessPoolTaskExecutor):
            assert executor.registry.pinned_segments() == []
    assert (pinned.components == plain.components).all()
    assert (pinned.mean == plain.mean).all()
    assert pinned.noise_variance == plain.noise_variance


def payload_bytes_per_iteration(worker_resident):
    """Dispatch bytes attributable to one extra EM iteration."""
    totals = {}
    for iterations in (1, 3):
        config = FIT_CONFIG.with_options(max_iterations=iterations)
        with ProcessPoolTaskExecutor(workers=2) as executor:
            with collecting() as registry:
                fit_mapreduce(executor, worker_resident, config=config)
                totals[iterations] = registry.counter_total(
                    "spca_executor_payload_bytes_total"
                )
    return (totals[3] - totals[1]) / 2


def test_resident_iterations_ship_5x_fewer_driver_bytes():
    plain = payload_bytes_per_iteration(worker_resident=False)
    pinned = payload_bytes_per_iteration(worker_resident=True)
    assert pinned > 0
    # ISSUE acceptance: >= 5x fewer per-iteration driver bytes once the
    # splits are worker-resident (measured ~16x at this shape).
    assert plain / pinned >= 5.0


def test_pin_bytes_are_metered():
    with ProcessPoolTaskExecutor(workers=2) as executor:
        with collecting() as registry:
            fit_mapreduce(executor, worker_resident=True)
            pinned = registry.counter_total("spca_executor_pin_bytes_total")
    assert pinned > 0
