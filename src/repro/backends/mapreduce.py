"""sPCA-MapReduce: the backend running Algorithm 4's jobs on the MR engine."""

from __future__ import annotations

import itertools

import numpy as np
import scipy.sparse as sp

from repro.backends.base import Backend
from repro.core.config import SPCAConfig
from repro.engine.mapreduce.api import MapReduceJob
from repro.engine.mapreduce.runtime import MapReduceRuntime, ResidentDataset
from repro.jobs import mapreduce_jobs as mr
from repro.linalg.blocks import Matrix, partition_rows


class MapReduceBackend(Backend):
    """Runs each distributed sPCA job as one MapReduce job.

    The engine models the disk-based platform: every job re-reads its input
    from (simulated) HDFS, pays a multi-second job-submission overhead, and
    spills its shuffle through disk.  The optimization flags of the config
    select the optimized or ablated job variants.

    Args:
        config: the run configuration (including ablation switches).
        runtime: the MapReduce engine; a default 8x8-core one is created
            when omitted.
        blocks_per_core: input splits per cluster core (more splits = finer
            scheduling granularity).
        records_per_split: row-block records per input split.  The default 1
            keeps the historical coarse layout (one block per split);
            larger values model the paper's real record granularity -- an
            HDFS split holds many row records -- and are what the batched
            ``map_batch`` pipeline is built to chew through.
        worker_resident: pin each input split in the executor's resident
            store at ``load`` time, so every job of every EM iteration ships
            a tiny ref to workers instead of the split itself (see
            :mod:`repro.engine.exec.resident`).  A no-op on the serial
            executor, which has no driver-worker pipe to save.
    """

    _pin_sequence = itertools.count(1)

    def __init__(
        self,
        config: SPCAConfig,
        runtime: MapReduceRuntime | None = None,
        blocks_per_core: int = 1,
        records_per_split: int = 1,
        worker_resident: bool = False,
    ):
        super().__init__(config)
        if records_per_split < 1:
            from repro.errors import InvalidPlanError

            raise InvalidPlanError(
                f"records_per_split must be >= 1, got {records_per_split}"
            )
        self.runtime = runtime or MapReduceRuntime()
        self.blocks_per_core = blocks_per_core
        self.records_per_split = records_per_split
        self.worker_resident = worker_resident
        self._pinned_keys: list[str] = []
        self._iteration = 0
        self._materialized_iteration = -1

    # -- Backend API -------------------------------------------------------

    def load(self, data: Matrix) -> list[list]:
        num_splits = self.runtime.cluster.total_cores * self.blocks_per_core
        blocks = partition_rows(data, num_splits * self.records_per_split)
        records = [(block.start, block.data) for block in blocks]
        if self.records_per_split == 1:
            splits = [[record] for record in records]
        else:
            groups = np.array_split(
                np.arange(len(records)), min(num_splits, len(records))
            )
            splits = [
                [records[i] for i in group] for group in groups if len(group) > 0
            ]
        return self._pin_splits(splits)

    def _pin_splits(self, splits: list[list]) -> "list[list] | ResidentDataset":
        """Pin the loaded splits worker-resident when configured to.

        The serial executor resolves payloads in the driver itself, so there
        is nothing to save and the plain splits are returned unchanged.
        """
        executor = self.runtime.executor
        if not self.worker_resident or executor.serial:
            return splits
        self._unpin_resident()
        prefix = f"mr-input-{next(self._pin_sequence)}"
        refs = []
        for index, split in enumerate(splits):
            key = f"{prefix}/{index}"
            refs.append(executor.pin_payload(key, split))
            self._pinned_keys.append(key)
        return ResidentDataset(splits, refs)

    def _unpin_resident(self) -> None:
        """Release this backend's pins (re-load, tests)."""
        executor = self.runtime.executor
        for key in self._pinned_keys:
            executor.unpin_payload(key)
        self._pinned_keys = []

    def column_means(self, dataset) -> np.ndarray:
        job = MapReduceJob(
            name="meanJob",
            mapper=mr.MeanMapper(),
            reducer=mr.MatrixSumReducer(),
            config={"kernel_backend": self.config.kernel_backend},
        )
        output = dict(self.runtime.run(job, dataset))
        return output[mr.KEY_SUMS] / output[mr.KEY_COUNT]

    def frobenius_centered(self, dataset, mean) -> float:
        job = MapReduceJob(
            name="FnormJob",
            mapper=mr.FnormMapper(),
            reducer=mr.MatrixSumReducer(),
            config={
                "mean": mean,
                "efficient": self.config.use_efficient_frobenius,
                "kernel_backend": self.config.kernel_backend,
            },
        )
        output = dict(self.runtime.run(job, dataset))
        return float(output[mr.KEY_FNORM])

    def ytx_xtx(self, dataset, mean, projector, latent_mean):
        self._iteration += 1
        job_input = dataset
        if not self.config.use_x_recomputation:
            job_input = self._materialize_latent(dataset, mean, projector, latent_mean)
        config = {
            "mean": mean,
            "projector": projector,
            "latent_mean": latent_mean,
            "mean_propagation": self.config.use_mean_propagation,
            "kernel_backend": self.config.kernel_backend,
        }
        job = MapReduceJob(
            name="YtXJob",
            mapper=mr.YtXMapper(),
            reducer=mr.MatrixSumReducer(),
            combiner=mr.MatrixSumReducer(),
            num_reducers=2,
            config=config,
        )
        output = dict(self.runtime.run(job, job_input))
        if mr.KEY_YTX_DATA in output:
            # Sparse-partial protocol: apply the mean correction once here.
            data_product = output[mr.KEY_YTX_DATA]
            if sp.issparse(data_product):
                data_product = data_product.todense()
            data_product = np.asarray(data_product)
            xsum = np.asarray(output[mr.KEY_XSUM]).ravel()
            ytx = data_product - np.outer(mean, xsum)
        else:
            ytx = output[mr.KEY_YTX]
        return ytx, output[mr.KEY_XTX]

    def ss3(self, dataset, mean, projector, latent_mean, components) -> float:
        job_input = dataset
        if not self.config.use_x_recomputation:
            job_input = self._materialize_latent(dataset, mean, projector, latent_mean)
        job = MapReduceJob(
            name="ss3Job",
            mapper=mr.SS3Mapper(),
            reducer=mr.MatrixSumReducer(),
            config={
                "mean": mean,
                "projector": projector,
                "latent_mean": latent_mean,
                "components": components,
                "mean_propagation": self.config.use_mean_propagation,
                "kernel_backend": self.config.kernel_backend,
            },
        )
        output = dict(self.runtime.run(job, job_input))
        return float(output[mr.KEY_SS3])

    def reconstruction_error(self, dataset, mean, components, sample_fraction, rng) -> float:
        ls_projector = components @ np.linalg.inv(components.T @ components)
        job = MapReduceJob(
            name="errorJob",
            mapper=mr.ErrorMapper(),
            reducer=mr.MatrixSumReducer(),
            config={
                "mean": mean,
                "components": components,
                "ls_projector": ls_projector,
                "sample_fraction": sample_fraction,
                "seed": int(rng.integers(2**31)),
                "mean_propagation": self.config.use_mean_propagation,
                "kernel_backend": self.config.kernel_backend,
            },
        )
        output = dict(self.runtime.run(job, dataset))
        from repro.jobs.kernels import error_from_colsums

        return error_from_colsums(output[mr.KEY_RESIDUAL], output[mr.KEY_MAGNITUDE])

    # -- ablation: materialized X -----------------------------------------

    def _materialize_latent(self, dataset, mean, projector, latent_mean):
        """Run XJob: write X to HDFS as intermediate data, then join it.

        This reproduces the naive dataflow of Figure 1 where X is a real
        intermediate dataset consumed by the downstream jobs: X is written
        *once* per iteration (by the first consumer that needs it) and then
        read -- with its full HDFS read charge -- by every consumer.
        """
        path = f"tmp/X-{self._iteration}"
        if self._materialized_iteration != self._iteration:
            job = MapReduceJob(
                name="XJob",
                mapper=mr.XMaterializeMapper(),
                output_path=path,
                output_is_intermediate=True,
                config={
                    "mean": mean,
                    "projector": projector,
                    "latent_mean": latent_mean,
                    "mean_propagation": self.config.use_mean_propagation,
                    "kernel_backend": self.config.kernel_backend,
                },
            )
            self.runtime.run(job, dataset)
            self._materialized_iteration = self._iteration
        latent_by_start = dict(self.runtime.hdfs.read(path))
        return [
            [(start, (block, latent_by_start[start])) for start, block in split]
            for split in dataset
        ]

    # -- checkpointing -----------------------------------------------------

    def charge_checkpoint(self, nbytes: int, kind: str = "write") -> None:
        from repro.engine.metrics import JobStats
        from repro.obs import record_job_stats

        stats = JobStats(name="checkpointJob")
        if kind == "write":
            stats.hdfs_write_bytes = nbytes
        else:
            stats.hdfs_read_bytes = nbytes
        stats.sim_seconds = self.runtime.cost_model.disk_seconds(nbytes)
        record_job_stats(
            self.runtime.metrics, stats, phase_name=f"checkpoint {kind}"
        )

    # -- metrics -----------------------------------------------------------

    @property
    def simulated_seconds(self) -> float:
        # errorJob is offline instrumentation (the paper measures accuracy
        # outside the algorithm's running time), so it is excluded.
        return sum(
            job.sim_seconds
            for job in self.runtime.metrics.jobs
            if job.name != "errorJob"
        )

    @property
    def intermediate_bytes(self) -> int:
        return sum(
            job.intermediate_bytes
            for job in self.runtime.metrics.jobs
            if job.name != "errorJob"
        )

    def reset_metrics(self) -> None:
        self.runtime.metrics.reset()
