"""Drift detection: planted rotations fire, stationary streams never do.

The end-to-end half plants a known regime change in the synthetic source
(:class:`~repro.stream.source.DriftSpec`) and asserts the detector fires
within a few windows of the change point -- and that the identical stream
without the rotation stays silent.  The unit half pins the detector's
mechanics: warmup suppression, patience counting, post-event re-anchoring,
and bit-exact continuation through a ``state()``/``load_state()`` roundtrip
(what stream checkpoints persist).
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointPolicy, DirectoryCheckpointStore
from repro.errors import ShapeError
from repro.stream import (
    DriftDetector,
    DriftSpec,
    MatrixSource,
    StreamConfig,
    StreamingPCA,
    SyntheticSource,
)

N_COLS = 16
RANK = 3
WINDOW = 100
DRIFT_ROW = 1200
DRIFT_WINDOW = DRIFT_ROW // WINDOW  # first window containing post-change rows


def drift_config(seed):
    return StreamConfig(
        n_components=RANK,
        window=WINDOW,
        seed=seed + 50,
        drift_threshold_degrees=15.0,
        drift_lag=3,
        drift_warmup=5,
    )


def make_source(seed, drift):
    return SyntheticSource(
        N_COLS, RANK, noise=0.05, seed=seed, block_rows=64,
        total_rows=2400, drift=drift,
    )


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_planted_rotation_fires_within_three_windows(self, seed):
        source = make_source(seed, DriftSpec(at_row=DRIFT_ROW, angle_degrees=60.0))
        result = StreamingPCA(drift_config(seed)).run(source)
        assert len(result.drift_events) == 1
        event = result.drift_events[0]
        # Fires after the change point, within the detection-lag budget.
        assert DRIFT_WINDOW <= event.window_index <= DRIFT_WINDOW + 3
        assert event.angle_degrees >= 15.0
        assert event.end_row == (event.window_index + 1) * WINDOW
        # No window before the change ever measured a drifting angle.
        for record in result.records:
            if record.index < DRIFT_WINDOW and record.drift_angle_degrees is not None:
                assert record.drift_angle_degrees < 15.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stationary_stream_never_fires(self, seed):
        result = StreamingPCA(drift_config(seed)).run(make_source(seed, None))
        assert result.drift_events == []
        angles = [
            r.drift_angle_degrees
            for r in result.records
            if r.drift_angle_degrees is not None
        ]
        assert angles, "the detector must have measured something post-warmup"
        # Stationary lag-angles sit orders of magnitude below the threshold.
        assert max(angles) < 1.0

    def test_detector_state_survives_checkpoint_resume(self, tmp_path):
        # Stop just before the event fires, resume from the checkpoint: the
        # event still fires at the same window with the same angle, because
        # the detector's memory rides in the stream snapshot.
        seed = 0
        source = make_source(seed, DriftSpec(at_row=DRIFT_ROW, angle_degrees=60.0))
        config = drift_config(seed)
        clean = StreamingPCA(config).run(source)
        assert len(clean.drift_events) == 1
        store = DirectoryCheckpointStore(tmp_path / "ckpt")
        policy = CheckpointPolicy(store, every=1)
        first = StreamingPCA(config).run(
            source, max_windows=DRIFT_WINDOW + 1, checkpoint=policy
        )
        assert first.drift_events == []
        resumed = StreamingPCA(config).resume(source, policy)
        assert resumed.drift_events == clean.drift_events
        assert np.array_equal(
            resumed.model.components, clean.model.components
        )
        assert resumed.model.noise_variance == clean.model.noise_variance


def components_at(angle_degrees):
    """A (6, 2) basis whose first direction leans out of plane by *angle*."""
    radians = np.radians(angle_degrees)
    basis = np.zeros((6, 2))
    basis[0, 0] = np.cos(radians)
    basis[2, 0] = np.sin(radians)
    basis[1, 1] = 1.0
    return basis


A = components_at(0.0)
B = components_at(30.0)


class TestDetectorUnits:
    def test_warmup_suppresses_early_comparisons(self):
        detector = DriftDetector(10.0, lag=1, warmup=4)
        angles = [
            detector.observe(i, (i + 1) * 10, B if i else A)[0] for i in range(6)
        ]
        # Observations 1..4 are warmup (angle None); the 5th compares.
        assert angles[:4] == [None] * 4
        assert angles[4] is not None

    def test_patience_requires_consecutive_exceedances(self):
        detector = DriftDetector(10.0, lag=2, warmup=2, patience=2)
        results = [
            detector.observe(i, (i + 1) * 10, basis)
            for i, basis in enumerate([A, A, B, B, B])
        ]
        # Third observation measures 30 degrees but patience=2 defers.
        assert results[2][0] == pytest.approx(30.0)
        assert results[2][1] is None
        # Fourth observation confirms: the event fires.
        event = results[3][1]
        assert event is not None
        assert event.window_index == 3
        assert event.end_row == 40
        assert event.angle_degrees == pytest.approx(30.0)

    def test_reanchors_after_firing(self):
        detector = DriftDetector(10.0, lag=1, warmup=1)
        fired = []
        for i, basis in enumerate([A, A, B, B, B, B]):
            _, event = detector.observe(i, (i + 1) * 10, basis)
            if event is not None:
                fired.append(event.window_index)
        # Fires once at the A->B flip; the post-change regime becomes the
        # new baseline, so the following B windows stay silent.
        assert fired == [2]

    def test_interleaved_noise_resets_patience(self):
        detector = DriftDetector(10.0, lag=1, warmup=1, patience=2)
        events = [
            detector.observe(i, (i + 1) * 10, basis)[1]
            for i, basis in enumerate([A, B, B, A, A, B, B])
        ]
        # Each flip measures 30 degrees but the following window measures 0,
        # so patience=2 never sees two drifting windows in a row.
        assert events == [None] * 7

    def test_state_roundtrip_continues_bit_identically(self):
        sequence = [A, A, A, B, B, A, A, B, B, B]
        original = DriftDetector(10.0, lag=2, warmup=3, patience=2)
        outputs = []
        snapshot = None
        for i, basis in enumerate(sequence):
            if i == 5:
                snapshot = original.state()
            outputs.append(original.observe(i, (i + 1) * 10, basis))
        restored = DriftDetector(10.0, lag=2, warmup=3, patience=2)
        restored.load_state(snapshot)
        resumed = [
            restored.observe(i, (i + 1) * 10, basis)
            for i, basis in enumerate(sequence[5:], start=5)
        ]
        assert resumed == outputs[5:]

    def test_validation(self):
        with pytest.raises(ShapeError):
            DriftDetector(0.0)
        with pytest.raises(ShapeError):
            DriftDetector(10.0, lag=0)
        with pytest.raises(ShapeError):
            DriftDetector(10.0, patience=0)
        with pytest.raises(ShapeError):
            DriftDetector(10.0, lag=3, warmup=2)


class TestDriftMetrics:
    def test_drift_telemetry_is_recorded(self):
        from repro.obs import tracer as obs_tracer
        from repro.obs.metrics import collecting

        seed = 0
        source = make_source(seed, DriftSpec(at_row=DRIFT_ROW, angle_degrees=60.0))
        with collecting() as registry, obs_tracer.tracing() as tracer:
            result = StreamingPCA(drift_config(seed)).run(source)
        labels = {"engine": "sequential"}
        assert (
            registry.counter("spca_stream_drift_events_total", **labels).value
            == len(result.drift_events)
            == 1
        )
        assert registry.gauge(
            "spca_stream_drift_angle_degrees", **labels
        ).value is not None
        drift_events = [e for e in tracer.events if e.type == "stream_drift"]
        assert [e.attrs["window_index"] for e in drift_events] == [
            result.drift_events[0].window_index
        ]

    def test_dense_matrix_stream_with_detector_smoke(self):
        # The detector is source-agnostic: a finite dense matrix streamed
        # through works the same way (no drift, no events).
        rng = np.random.default_rng(44)
        data = (
            rng.normal(size=(600, 2)) @ rng.normal(size=(2, 8))
            + 0.05 * rng.normal(size=(600, 8))
        )
        config = StreamConfig(
            n_components=2, window=60, seed=5,
            drift_threshold_degrees=20.0, drift_lag=2, drift_warmup=5,
        )
        result = StreamingPCA(config).run(MatrixSource(data, chunk_rows=75))
        assert result.drift_events == []
