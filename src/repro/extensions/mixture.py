"""Mixtures of probabilistic principal component analysers.

Tipping & Bishop (1999), the second PPCA property Section 2.4 highlights:
several local PPCA models combined as a probabilistic mixture.  Each
component k has a weight pi_k, mean mu_k, loading matrix C_k and noise
variance ss_k; responsibilities are computed under the Gaussian marginal
``N(y; mu_k, C_k C_k' + ss_k I)`` whose inverse and determinant are
evaluated through the Woodbury identity so only d x d solves are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, ShapeError


@dataclass
class MixtureOfPPCA:
    """A K-component mixture of PPCA models fitted with EM.

    Args:
        n_components: latent dimensionality d of each local model.
        n_clusters: number of mixture components K.
        max_iterations: EM budget.
        tolerance: relative log-likelihood improvement threshold.
        seed: initialization seed (k-means++-style mean seeding).
    """

    n_components: int
    n_clusters: int
    max_iterations: int = 100
    tolerance: float = 1e-6
    seed: int = 0
    weights_: np.ndarray = field(init=False, repr=False, default=None)
    means_: np.ndarray = field(init=False, repr=False, default=None)
    loadings_: list = field(init=False, repr=False, default=None)
    noise_: np.ndarray = field(init=False, repr=False, default=None)
    log_likelihood_: float = field(init=False, default=float("-inf"))

    def fit(self, data: np.ndarray) -> "MixtureOfPPCA":
        """Run EM until the log-likelihood stabilizes."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ShapeError("data must be 2-D")
        n_rows, n_cols = data.shape
        d, k = self.n_components, self.n_clusters
        if k < 1 or d < 1:
            raise ShapeError("n_clusters and n_components must be >= 1")
        if d >= n_cols:
            raise ShapeError(f"n_components={d} must be < D={n_cols}")
        if k > n_rows:
            raise ShapeError(f"n_clusters={k} exceeds the number of rows")

        rng = np.random.default_rng(self.seed)
        self.weights_ = np.full(k, 1.0 / k)
        seeds = rng.choice(n_rows, size=k, replace=False)
        self.means_ = data[seeds].copy()
        self.loadings_ = [rng.normal(scale=0.1, size=(n_cols, d)) for _ in range(k)]
        self.noise_ = np.full(k, float(np.var(data)) / 2.0 + 1e-3)

        previous = None
        for _ in range(self.max_iterations):
            log_resp = self._log_responsibilities(data)
            log_norm = _logsumexp(log_resp, axis=1)
            self.log_likelihood_ = float(log_norm.sum())
            responsibilities = np.exp(log_resp - log_norm[:, None])
            self._m_step(data, responsibilities)
            if previous is not None:
                improvement = self.log_likelihood_ - previous
                if improvement < self.tolerance * abs(previous):
                    break
            previous = self.log_likelihood_
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most responsible component index per row."""
        self._check_fitted()
        return np.argmax(self._log_responsibilities(np.asarray(data)), axis=1)

    def score(self, data: np.ndarray) -> float:
        """Total log-likelihood of *data* under the mixture."""
        self._check_fitted()
        return float(_logsumexp(self._log_responsibilities(np.asarray(data)), axis=1).sum())

    # -- internals ---------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.means_ is None:
            raise ConvergenceError("fit must be called first")

    def _log_responsibilities(self, data: np.ndarray) -> np.ndarray:
        n_rows, n_cols = data.shape
        d = self.n_components
        out = np.empty((n_rows, self.n_clusters))
        for k in range(self.n_clusters):
            loadings = self.loadings_[k]
            noise = self.noise_[k]
            centered = data - self.means_[k]
            moment = loadings.T @ loadings + noise * np.eye(d)
            moment_inv = np.linalg.inv(moment)
            # Woodbury: (CC' + ss I)^-1 = (I - C M^-1 C') / ss
            projected = centered @ loadings
            mahalanobis = (
                np.einsum("ij,ij->i", centered, centered)
                - np.einsum("ij,jl,il->i", projected, moment_inv, projected)
            ) / noise
            sign, logdet_m = np.linalg.slogdet(moment / noise)
            log_det = n_cols * np.log(noise) + sign * logdet_m
            out[:, k] = (
                np.log(self.weights_[k] + 1e-300)
                - 0.5 * (n_cols * np.log(2.0 * np.pi) + log_det + mahalanobis)
            )
        return out

    def _m_step(self, data: np.ndarray, responsibilities: np.ndarray) -> None:
        n_rows, n_cols = data.shape
        d = self.n_components
        for k in range(self.n_clusters):
            weights = responsibilities[:, k]
            total = max(weights.sum(), 1e-12)
            self.weights_[k] = total / n_rows
            mean = (weights[:, None] * data).sum(axis=0) / total
            self.means_[k] = mean
            centered = data - mean

            # One EM sub-step on the weighted local PPCA.
            loadings = self.loadings_[k]
            noise = self.noise_[k]
            moment_inv = np.linalg.inv(loadings.T @ loadings + noise * np.eye(d))
            latent = centered @ loadings @ moment_inv
            weighted_latent_gram = (
                (weights[:, None] * latent).T @ latent + total * noise * moment_inv
            )
            cross = (weights[:, None] * centered).T @ latent
            new_loadings = cross @ np.linalg.inv(weighted_latent_gram)
            ss2 = float(np.trace(weighted_latent_gram @ new_loadings.T @ new_loadings))
            ss3 = float(np.sum(weights[:, None] * (centered @ new_loadings) * latent))
            ss1 = float(np.sum(weights[:, None] * centered * centered))
            self.loadings_[k] = new_loadings
            self.noise_[k] = max((ss1 + ss2 - 2.0 * ss3) / (total * n_cols), 1e-9)


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    return (peak + np.log(np.exp(values - peak).sum(axis=axis, keepdims=True))).squeeze(axis)
