"""Subspace-recovery metrics: principal angles and explained variance.

These do not appear in the paper's figures but are the standard way to
verify that PPCA converged to the true principal subspace; the test suite
uses them as correctness anchors against exact SVD.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _orthonormalize(basis: np.ndarray) -> np.ndarray:
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2:
        raise ShapeError("basis must be 2-D")
    q, _ = np.linalg.qr(basis)
    return q


def subspace_angle_degrees(basis_a: np.ndarray, basis_b: np.ndarray) -> float:
    """Largest principal angle between two subspaces, in degrees.

    0 means the subspaces coincide; 90 means some direction of one is
    orthogonal to all of the other.  Bases need not be orthonormal.
    """
    qa = _orthonormalize(basis_a)
    qb = _orthonormalize(basis_b)
    if qa.shape[0] != qb.shape[0]:
        raise ShapeError(
            f"bases live in different spaces: {qa.shape[0]} vs {qb.shape[0]} dims"
        )
    singular_values = np.linalg.svd(qa.T @ qb, compute_uv=False)
    cos_angle = np.clip(singular_values.min(), -1.0, 1.0)
    return float(np.degrees(np.arccos(cos_angle)))


def explained_variance_ratio(
    data_centered_gram_trace: float, component_variances: np.ndarray
) -> np.ndarray:
    """Per-component fraction of total variance explained.

    Args:
        data_centered_gram_trace: ``trace(Yc'Yc)`` = total (unnormalized)
            variance of the centered data.
        component_variances: unnormalized variances captured along each
            component (from :meth:`PCAModel.principal_directions`, scaled by
            ``N-1``).
    """
    if data_centered_gram_trace <= 0.0:
        raise ShapeError("total variance must be positive")
    variances = np.asarray(component_variances, dtype=np.float64)
    return variances / data_centered_gram_trace
