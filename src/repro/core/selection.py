"""Choosing the number of principal components.

The paper fixes d = 50 ("to be useful in practice, d is chosen to be much
smaller than D") but offers no selection rule.  Because PPCA is a proper
probabilistic model, d can be chosen by penalized likelihood: fit each
candidate and score it with BIC, ``-2 log L + p log N`` where
``p = D*d + 1 - d(d-1)/2`` free parameters (loading matrix modulo rotation,
plus the noise variance).  The elbow of the PPCA spectrum shows up as the
BIC minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ppca import fit_ppca
from repro.errors import ShapeError
from repro.linalg.blocks import Matrix


@dataclass(frozen=True)
class CandidateScore:
    """Fit quality of one candidate dimensionality."""

    n_components: int
    log_likelihood: float
    bic: float
    noise_variance: float


def _free_parameters(n_cols: int, d: int) -> int:
    return n_cols * d + 1 - d * (d - 1) // 2


def score_candidates(
    data: Matrix,
    candidates,
    max_iterations: int = 60,
    seed: int = 0,
) -> list[CandidateScore]:
    """Fit PPCA at each candidate d and return likelihoods + BIC scores."""
    candidates = sorted(set(int(c) for c in candidates))
    if not candidates:
        raise ShapeError("no candidate dimensionalities given")
    n_rows, n_cols = data.shape
    if candidates[0] < 1 or candidates[-1] >= min(n_rows, n_cols):
        raise ShapeError(
            f"candidates must lie in [1, {min(n_rows, n_cols) - 1}], "
            f"got {candidates}"
        )
    scores = []
    for d in candidates:
        model = fit_ppca(
            data, d, max_iterations=max_iterations, tolerance=1e-8, seed=seed
        )
        log_likelihood = model.log_likelihood(data)
        bic = -2.0 * log_likelihood + _free_parameters(n_cols, d) * np.log(n_rows)
        scores.append(
            CandidateScore(
                n_components=d,
                log_likelihood=log_likelihood,
                bic=bic,
                noise_variance=model.noise_variance,
            )
        )
    return scores


def choose_n_components(
    data: Matrix,
    candidates,
    max_iterations: int = 60,
    seed: int = 0,
) -> int:
    """The BIC-minimizing candidate dimensionality."""
    scores = score_candidates(data, candidates, max_iterations, seed)
    return min(scores, key=lambda s: s.bic).n_components
