"""Section 5.2, intermediate data: sPCA-MapReduce vs Mahout-PCA.

Paper numbers: Bio-Text 8 GB (Mahout) vs 240 MB (sPCA) = 35x; Tweets
961 GB vs 131 MB = 3,511x.  The shape to reproduce: Mahout produces far
more intermediate data in both cases, and the reduction *factor grows*
with dataset scale (Mahout's intermediate data is row-proportional,
sPCA's is not).
"""

import pytest

from harness import format_bytes, run_mahout, run_spca
from repro.data.paper import biotext_series, tweets_series


@pytest.mark.benchmark(group="intermediate-data")
def test_intermediate_data_volume(benchmark, report):
    results = {}

    def run_all():
        from harness import dataset_ideal_accuracy

        for label, spec in (
            ("Bio-Text", biotext_series()[1]),
            ("Tweets", tweets_series(n_rows=80_000)[2]),
        ):
            data = spec.generate()
            ideal = dataset_ideal_accuracy(data)
            # Both algorithms run to their usual stopping points, as in the
            # paper's measurement of complete runs.
            results[label] = (
                run_spca(data, "mapreduce", ideal=ideal),
                run_mahout(data, ideal=ideal, compute_accuracy=False),
                spec,
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("Intermediate data volume (Section 5.2)")
    report(f"{'dataset':<12}{'Mahout-PCA':>14}{'sPCA-MR':>14}{'reduction':>11}")
    factors = {}
    for label, (spca, mahout, spec) in results.items():
        factor = mahout.intermediate_bytes / max(spca.intermediate_bytes, 1)
        factors[label] = factor
        report(
            f"{label:<12}{format_bytes(mahout.intermediate_bytes):>14}"
            f"{format_bytes(spca.intermediate_bytes):>14}{factor:>10.1f}x"
        )

    # Mahout produces much more intermediate data on both datasets...
    assert factors["Bio-Text"] > 2.0
    assert factors["Tweets"] > 2.0
    # ...and the reduction factor grows with scale (paper: 35x -> 3,511x).
    assert factors["Tweets"] > factors["Bio-Text"]
