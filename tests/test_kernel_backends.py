"""The kernel-backend layer: selection, fallback, memos, and bitwise ops."""

from __future__ import annotations

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import SPCAConfig
from repro.errors import ConfigError, ReproError
from repro.jobs import backends as kb
from repro.jobs import kernels
from repro.obs import tracing


@pytest.fixture(autouse=True)
def _fresh_backends():
    kb.clear_kernel_backends()
    yield
    kb.clear_kernel_backends()


def make_inputs(seed=0, rows=16, cols=10, d=3, sparse=False):
    rng = np.random.default_rng(seed)
    if sparse:
        block = sp.random(rows, cols, density=0.4, random_state=seed, format="csr")
    else:
        block = rng.normal(size=(rows, cols))
    mean = rng.normal(size=cols)
    projector = rng.normal(size=(cols, d))
    latent_mean = rng.normal(size=d)
    components = rng.normal(size=(cols, d))
    return block, mean, projector, latent_mean, components


# -- selection and fallback --------------------------------------------------


def test_resolve_returns_named_backends():
    assert kb.resolve_kernel_backend("numpy").name == "numpy"
    assert kb.resolve_kernel_backend("fused").name == "fused"


def test_resolve_memoizes_instances():
    assert kb.resolve_kernel_backend("fused") is kb.resolve_kernel_backend("fused")


def test_unknown_backend_raises_config_error_naming_choices():
    with pytest.raises(ConfigError) as info:
        kb.resolve_kernel_backend("blas9000")
    message = str(info.value)
    for name in kb.KERNEL_BACKEND_NAMES:
        assert name in message
    # ConfigError is catchable both as a library error and as ValueError.
    assert issubclass(ConfigError, ReproError)
    assert issubclass(ConfigError, ValueError)


def test_config_validates_kernel_backend():
    with pytest.raises(ConfigError) as info:
        SPCAConfig(n_components=2, kernel_backend="nope")
    assert "numpy" in str(info.value)


def test_config_accepts_every_known_backend():
    for name in kb.KERNEL_BACKEND_NAMES:
        assert SPCAConfig(n_components=2, kernel_backend=name).kernel_backend == name


@pytest.mark.skipif(kb.NUMBA_AVAILABLE, reason="numba installed: no fallback")
def test_numba_missing_falls_back_with_single_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = kb.resolve_kernel_backend("numba")
        second = kb.resolve_kernel_backend("numba")
    assert first.name == "numpy"
    assert first is second
    fallback_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(fallback_warnings) == 1
    assert "falls back" in str(fallback_warnings[0].message)


@pytest.mark.skipif(kb.NUMBA_AVAILABLE, reason="numba installed: no fallback")
def test_resolved_fallback_name_lands_in_run_span():
    from repro.core.spca import SPCA

    config = SPCAConfig(n_components=2, max_iterations=1, kernel_backend="numba")
    data = np.random.default_rng(0).normal(size=(24, 6))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with tracing() as tracer:
            SPCA(config).fit(data)
    run = next(span for span in tracer.spans if span.kind == "run")
    assert run.attrs["kernel_backend"] == "numba"
    assert run.attrs["kernel_backend_resolved"] == "numpy"


def test_run_span_stamps_requested_and_resolved_backend():
    from repro.core.spca import SPCA

    config = SPCAConfig(n_components=2, max_iterations=1, kernel_backend="fused")
    data = np.random.default_rng(0).normal(size=(24, 6))
    with tracing() as tracer:
        SPCA(config).fit(data)
    run = next(span for span in tracer.spans if span.kind == "run")
    assert run.attrs["kernel_backend"] == "fused"
    assert run.attrs["kernel_backend_resolved"] == "fused"


@pytest.mark.skipif(not kb.NUMBA_AVAILABLE, reason="requires the numba extra")
def test_numba_resolves_to_numba():
    assert kb.resolve_kernel_backend("numba").name == "numba"


@pytest.mark.skipif(kb.NUMBA_AVAILABLE, reason="numba installed")
def test_numba_backend_constructor_raises_without_package():
    with pytest.raises(ConfigError):
        kb.NumbaKernelBackend()


# -- the bounded identity memo ----------------------------------------------


def test_memo_limit_evicts_lru():
    memo = kernels.BoundedIdentityMemo(limit=2)
    anchors = [np.zeros(1) for _ in range(3)]
    for index, anchor in enumerate(anchors):
        memo.put((index,), (anchor,), index)
    assert len(memo) == 2
    assert memo.get((0,), (anchors[0],)) is None  # evicted
    assert memo.get((2,), (anchors[2],)) == 2


def test_memo_rejects_stale_identity():
    memo = kernels.BoundedIdentityMemo(limit=4)
    anchor = np.zeros(3)
    memo.put((id(anchor),), (anchor,), "value")
    impostor = np.ones(3)
    assert memo.get((id(anchor),), (impostor,)) is None


def test_memo_limit_must_be_positive():
    with pytest.raises(ValueError):
        kernels.BoundedIdentityMemo(limit=0)


def test_densify_centered_memoizes_per_block_and_mean():
    kernels.clear_densify_memo()
    block = sp.random(8, 5, density=0.5, random_state=0, format="csr")
    mean = np.arange(5, dtype=np.float64)
    first = kernels._densify_centered(block, mean)
    second = kernels._densify_centered(block, np.array(mean))  # equal-by-value mean
    assert first is second
    other_mean = mean + 1.0
    assert kernels._densify_centered(block, other_mean) is not first


# -- fused backend: bitwise op-level equivalence -----------------------------


@pytest.mark.parametrize("sparse", [False, True])
@pytest.mark.parametrize("mean_propagation", [False, True])
def test_fused_ops_bitwise_equal_numpy(sparse, mean_propagation):
    numpy_backend = kb.resolve_kernel_backend("numpy")
    fused = kb.resolve_kernel_backend("fused")
    block, mean, projector, latent_mean, components = make_inputs(sparse=sparse)

    s_n, c_n = numpy_backend.sums(block)
    s_f, c_f = fused.sums(block)
    assert (s_n == s_f).all() and c_n == c_f

    for efficient in (False, True):
        assert numpy_backend.frobenius(block, mean, efficient) == fused.frobenius(
            block, mean, efficient
        )

    latent_n = numpy_backend.latent(block, mean, projector, latent_mean, mean_propagation)
    latent_f = fused.latent(block, mean, projector, latent_mean, mean_propagation)
    assert (latent_n == latent_f).all()

    ytx_n, xtx_n = numpy_backend.ytx_xtx(
        block, mean, projector, latent_mean, mean_propagation
    )
    ytx_f, xtx_f = fused.ytx_xtx(
        block, mean, projector, latent_mean, mean_propagation
    )
    assert (np.asarray(ytx_n) == np.asarray(ytx_f)).all()
    assert (xtx_n == xtx_f).all()

    assert numpy_backend.ss3(
        block, mean, projector, latent_mean, components, mean_propagation
    ) == fused.ss3(block, mean, projector, latent_mean, components, mean_propagation)

    err_n = numpy_backend.error_parts(block, mean, components, projector, mean_propagation)
    err_f = fused.error_parts(block, mean, components, projector, mean_propagation)
    assert (err_n[0] == err_f[0]).all() and (err_n[1] == err_f[1]).all()


def test_fused_latent_memo_reuses_across_ytx_and_ss3():
    fused = kb.FusedKernelBackend()
    block, mean, projector, latent_mean, components = make_inputs()
    first = fused.latent(block, mean, projector, latent_mean, True)
    second = fused.latent(block, mean, np.array(projector), np.array(latent_mean), True)
    assert first is second  # value-keyed on the model matrices
    fused.ss3(block, mean, projector, latent_mean, components, True)
    assert len(fused._latents) == 1


def test_fused_latent_memo_misses_on_changed_projector():
    fused = kb.FusedKernelBackend()
    block, mean, projector, latent_mean, _ = make_inputs()
    first = fused.latent(block, mean, projector, latent_mean, True)
    second = fused.latent(block, mean, projector + 1.0, latent_mean, True)
    assert first is not second
    assert not (first == second).all()


def test_fused_stack_memo_reuses_identical_block_lists():
    fused = kb.FusedKernelBackend()
    blocks = [np.ones((2, 3)), np.zeros((2, 3))]
    assert fused.stack(blocks) is fused.stack(list(blocks))
    # Single blocks bypass the memo (stack_blocks returns them unchanged).
    assert fused.stack([blocks[0]]) is blocks[0]


def test_clear_kernel_backends_resets_instances_and_memos():
    fused = kb.resolve_kernel_backend("fused")
    block, mean, projector, latent_mean, _ = make_inputs()
    fused.latent(block, mean, projector, latent_mean, True)
    assert len(fused._latents) == 1
    kb.clear_kernel_backends()
    assert len(fused._latents) == 0
    assert kb.resolve_kernel_backend("fused") is not fused


# -- numba backend (exercised only where the extra is installed) -------------


@pytest.mark.skipif(not kb.NUMBA_AVAILABLE, reason="requires the numba extra")
@pytest.mark.parametrize("mean_propagation", [False, True])
def test_numba_dense_ops_within_tolerance(mean_propagation):
    numpy_backend = kb.resolve_kernel_backend("numpy")
    numba_backend = kb.resolve_kernel_backend("numba")
    block, mean, projector, latent_mean, components = make_inputs()

    latent_n = numpy_backend.latent(block, mean, projector, latent_mean, mean_propagation)
    latent_c = numba_backend.latent(block, mean, projector, latent_mean, mean_propagation)
    np.testing.assert_allclose(latent_c, latent_n, rtol=kb.NUMBA_RTOL)

    ytx_n, xtx_n = numpy_backend.ytx_xtx(
        block, mean, projector, latent_mean, mean_propagation
    )
    ytx_c, xtx_c = numba_backend.ytx_xtx(
        block, mean, projector, latent_mean, mean_propagation
    )
    np.testing.assert_allclose(ytx_c, ytx_n, rtol=kb.NUMBA_RTOL)
    np.testing.assert_allclose(xtx_c, xtx_n, rtol=kb.NUMBA_RTOL)

    ss3_n = numpy_backend.ss3(
        block, mean, projector, latent_mean, components, mean_propagation
    )
    ss3_c = numba_backend.ss3(
        block, mean, projector, latent_mean, components, mean_propagation
    )
    np.testing.assert_allclose(ss3_c, ss3_n, rtol=kb.NUMBA_RTOL)


@pytest.mark.skipif(not kb.NUMBA_AVAILABLE, reason="requires the numba extra")
def test_numba_exact_on_integer_valued_inputs():
    # Small-integer float64 arithmetic is exact regardless of summation
    # order, so hand loops and BLAS must agree bit-for-bit.
    rng = np.random.default_rng(3)
    block = rng.integers(-3, 4, size=(12, 6)).astype(np.float64)
    mean = rng.integers(-2, 3, size=6).astype(np.float64)
    projector = rng.integers(-2, 3, size=(6, 2)).astype(np.float64)
    latent_mean = rng.integers(-2, 3, size=2).astype(np.float64)
    numpy_backend = kb.resolve_kernel_backend("numpy")
    numba_backend = kb.resolve_kernel_backend("numba")
    for mean_propagation in (False, True):
        latent_n = numpy_backend.latent(block, mean, projector, latent_mean, mean_propagation)
        latent_c = numba_backend.latent(block, mean, projector, latent_mean, mean_propagation)
        assert (latent_n == latent_c).all()
        ytx_n, xtx_n = numpy_backend.ytx_xtx(block, mean, projector, latent_mean, mean_propagation)
        ytx_c, xtx_c = numba_backend.ytx_xtx(block, mean, projector, latent_mean, mean_propagation)
        assert (ytx_n == ytx_c).all() and (xtx_n == xtx_c).all()


@pytest.mark.skipif(not kb.NUMBA_AVAILABLE, reason="requires the numba extra")
def test_numba_sparse_blocks_take_fused_path():
    numpy_backend = kb.resolve_kernel_backend("numpy")
    numba_backend = kb.resolve_kernel_backend("numba")
    block, mean, projector, latent_mean, components = make_inputs(sparse=True)
    latent_n = numpy_backend.latent(block, mean, projector, latent_mean, True)
    latent_c = numba_backend.latent(block, mean, projector, latent_mean, True)
    assert (latent_n == latent_c).all()  # bitwise: sparse never hits @njit


# -- the mapper layer dispatches through the configured backend --------------


def test_job_config_selects_backend():
    assert kb.kernel_backend_from_config({"kernel_backend": "fused"}).name == "fused"
    assert kb.kernel_backend_from_config({}).name == "numpy"


def test_backend_property_resolves_from_config():
    from repro.backends.sequential import SequentialBackend

    config = SPCAConfig(n_components=2, kernel_backend="fused")
    assert SequentialBackend(config).kernels.name == "fused"
