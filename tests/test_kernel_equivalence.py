"""Property: every kernel backend is equivalent on every engine x executor.

``fused`` must be **bitwise identical** to ``numpy`` -- its memos only skip
recomputation that would reproduce the same bytes.  ``numba`` (where the
extra is installed) matches within ``NUMBA_RTOL`` on float inputs and
bit-for-bit on small-integer-valued inputs; on machines without the package
the name resolves to the numpy backend, so the bitwise assertion holds
trivially (and the fallback itself is covered in test_kernel_backends).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.exec import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.jobs import backends as kb
from tests.test_batch_equivalence import CONFIG, DATA, SMALL_CLUSTER

# Shared pools, like test_executor_equivalence: forked pools are expensive.
THREADS = ThreadPoolTaskExecutor(workers=2)
PROCESSES = ProcessPoolTaskExecutor(workers=2)

EXECUTORS = (("serial", None), ("threads", THREADS), ("processes", PROCESSES))


@pytest.fixture(scope="module", autouse=True)
def _shared_pools():
    yield
    THREADS.shutdown()
    PROCESSES.shutdown()
    assert PROCESSES.registry.active_segments() == []


@pytest.fixture(autouse=True)
def _fresh_backends():
    kb.clear_kernel_backends()
    yield
    kb.clear_kernel_backends()


def fit(engine, executor, kernel_backend, data=DATA, config=CONFIG):
    config = config.with_options(kernel_backend=kernel_backend)
    with warnings.catch_warnings():
        # numba-missing fallback warns once per process; irrelevant here.
        warnings.simplefilter("ignore", RuntimeWarning)
        if engine == "mapreduce":
            runtime = MapReduceRuntime(cluster=SMALL_CLUSTER, executor=executor)
            backend = MapReduceBackend(config, runtime=runtime, records_per_split=6)
        else:
            context = SparkContext(cluster=SMALL_CLUSTER, executor=executor)
            backend = SparkBackend(config, context=context, records_per_partition=6)
        model, _ = SPCA(config, backend).fit(data)
    return model


def assert_models_match(model, baseline, kernel_backend):
    if kernel_backend == "numba" and kb.NUMBA_AVAILABLE:
        # Compiled loops reorder accumulation vs BLAS: tolerance, not bits.
        np.testing.assert_allclose(
            model.components, baseline.components, rtol=1e-6
        )
        np.testing.assert_allclose(
            model.noise_variance, baseline.noise_variance, rtol=1e-6
        )
    else:
        assert (model.components == baseline.components).all()
        assert (model.mean == baseline.mean).all()
        assert model.noise_variance == baseline.noise_variance


@pytest.mark.parametrize("engine", ["mapreduce", "spark"])
def test_every_backend_executor_combination_matches_numpy_serial(engine):
    baseline = fit(engine, None, "numpy")
    for kernel_backend in kb.KERNEL_BACKEND_NAMES:
        for name, executor in EXECUTORS:
            model = fit(engine, executor, kernel_backend)
            try:
                assert_models_match(model, baseline, kernel_backend)
            except AssertionError as error:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"{engine}/{name}/{kernel_backend}: {error}"
                ) from error


def test_error_computation_matches_across_backends():
    # CONFIG skips per-iteration error; cover the errorJob kernels too.
    config = CONFIG.with_options(
        max_iterations=2, compute_error_every_iteration=True
    )
    baseline = fit("mapreduce", None, "numpy", config=config)
    for kernel_backend in ("fused", "numba"):
        for engine in ("mapreduce", "spark"):
            model = fit(engine, THREADS, kernel_backend, config=config)
            assert_models_match(model, baseline, kernel_backend)


def test_ablated_config_matches_across_backends():
    # mean_propagation off exercises the densified-centered memo sharing.
    config = CONFIG.unoptimized().with_options(max_iterations=2)
    baseline = fit("mapreduce", None, "numpy", config=config)
    for kernel_backend in ("fused", "numba"):
        model = fit("mapreduce", PROCESSES, kernel_backend, config=config)
        assert_models_match(model, baseline, kernel_backend)


@st.composite
def small_problems(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rows = draw(st.integers(min_value=12, max_value=40))
    cols = draw(st.integers(min_value=4, max_value=12))
    d = draw(st.integers(min_value=1, max_value=3))
    sparse = draw(st.booleans())
    records = draw(st.integers(min_value=1, max_value=6))
    return seed, rows, cols, d, sparse, records


@settings(max_examples=10, deadline=None)
@given(params=small_problems())
def test_fused_fit_bitwise_equals_numpy_property(params):
    seed, rows, cols, d, sparse, records = params
    if sparse:
        data = sp.random(rows, cols, density=0.3, random_state=seed, format="csr")
    else:
        data = np.random.default_rng(seed).normal(size=(rows, cols))
    config = SPCAConfig(
        n_components=d, max_iterations=2, tolerance=0.0, seed=seed,
        compute_error_every_iteration=False,
    )
    kb.clear_kernel_backends()
    # Baseline per engine: the engines themselves may sum partials in a
    # different combine order (a pre-existing, documented float property),
    # but within an engine `fused` must reproduce `numpy` bit-for-bit.
    for engine in ("mapreduce", "spark"):
        baseline = fit(engine, None, "numpy", data=data, config=config)
        model = fit(engine, THREADS, "fused", data=data, config=config)
        assert (model.components == baseline.components).all()
        assert model.noise_variance == baseline.noise_variance
