"""SVD-Bidiag: the Demmel-Kahan three-step dense SVD (paper Section 2.2).

The three steps, exactly as the paper lists them for an ``N x D`` input Y:

1. QR decomposition ``Y = Q * R`` (Householder);
2. Golub-Kahan bidiagonalization of R: ``R = U1 * B * V1'`` with B upper
   bidiagonal (implemented from scratch with Householder reflections);
3. SVD of the bidiagonal B.

The intermediate matrices of each step -- Q (N x D), R/B (D x D), U1/V1
(D x D) -- give the O(max((N+D)d, D^2)) communication complexity of
Table 1; :func:`svd_bidiag` reports their element counts alongside the
decomposition so the cost-model benchmark can check the formula empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError


@dataclass(frozen=True)
class BidiagStats:
    """Intermediate-data element counts for the three steps."""

    qr_elements: int
    bidiag_elements: int
    svd_elements: int

    @property
    def max_elements(self) -> int:
        return max(self.qr_elements, self.bidiag_elements, self.svd_elements)


def bidiagonalize(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Golub-Kahan Householder bidiagonalization: ``A = U * B * V'``.

    Args:
        matrix: a dense ``m x n`` array with ``m >= n``.

    Returns:
        (U, B, V) with U ``m x n`` and V ``n x n`` having orthonormal
        columns and B ``n x n`` upper bidiagonal.
    """
    work = np.array(matrix, dtype=np.float64, copy=True)
    m, n = work.shape
    if m < n:
        raise ShapeError(f"bidiagonalization needs m >= n, got {work.shape}")
    left = np.eye(m)
    right = np.eye(n)
    for k in range(n):
        # Left Householder: zero below the diagonal in column k.
        reflector = _householder(work[k:, k])
        if reflector is not None:
            work[k:, k:] -= np.outer(reflector, 2.0 * (reflector @ work[k:, k:]))
            left[:, k:] -= np.outer(left[:, k:] @ reflector, 2.0 * reflector)
        if k < n - 2:
            # Right Householder: zero to the right of the superdiagonal.
            reflector = _householder(work[k, k + 1 :])
            if reflector is not None:
                work[k:, k + 1 :] -= np.outer(
                    2.0 * (work[k:, k + 1 :] @ reflector), reflector
                )
                right[:, k + 1 :] -= np.outer(right[:, k + 1 :] @ reflector, 2.0 * reflector)
    return left[:, :n], np.triu(np.tril(work[:n, :n], 1)), right


def _householder(vector: np.ndarray) -> np.ndarray | None:
    """Unit Householder reflector annihilating all but the first entry."""
    norm = np.linalg.norm(vector)
    if norm < 1e-300:
        return None
    target = vector.copy()
    target[0] += np.copysign(norm, vector[0] if vector[0] != 0 else 1.0)
    target_norm = np.linalg.norm(target)
    if target_norm < 1e-300:
        return None
    return target / target_norm


def _bidiagonal_svd(bidiagonal: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD of an upper bidiagonal matrix via its tridiagonal Gram matrix.

    ``B'B`` is symmetric tridiagonal; its eigendecomposition (by the
    specialized LAPACK tridiagonal solver) gives V and the squared singular
    values, and ``U = B V S^-1`` recovers the left factors.  Zero singular
    values get arbitrary orthonormal completions.
    """
    from scipy.linalg import eigh_tridiagonal

    n = bidiagonal.shape[0]
    diagonal = np.diag(bidiagonal)
    superdiag = np.diag(bidiagonal, 1)
    tri_diag = diagonal**2 + np.concatenate(([0.0], superdiag**2))
    tri_off = diagonal[:-1] * superdiag
    eigenvalues, eigenvectors = eigh_tridiagonal(tri_diag, tri_off)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    right = eigenvectors[:, order]
    singular_values = np.sqrt(eigenvalues)
    left = np.zeros((n, n))
    for i, sigma in enumerate(singular_values):
        if sigma > 1e-12:
            left[:, i] = (bidiagonal @ right[:, i]) / sigma
    # Orthonormal completion for the null space columns.
    rank = int(np.sum(singular_values > 1e-12))
    if rank < n:
        q, _ = np.linalg.qr(left[:, :rank] if rank else np.eye(n, 1))
        completion = _null_completion(q if rank else np.zeros((n, 0)), n)
        left[:, rank:] = completion[:, : n - rank]
    return left, singular_values, right.T


def _null_completion(basis: np.ndarray, n: int) -> np.ndarray:
    """Columns orthonormal to *basis* spanning the rest of R^n."""
    full = np.eye(n)
    if basis.shape[1]:
        full = full - basis @ (basis.T @ full)
    q, r = np.linalg.qr(full)
    keep = np.abs(np.diag(r)) > 1e-10
    return q[:, keep]


def svd_bidiag(
    data, n_components: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, BidiagStats]:
    """Full SVD-Bidiag pipeline: QR, bidiagonalize, bidiagonal SVD.

    Args:
        data: ``N x D`` input with ``N >= D`` (dense; sparse is densified,
            since this is the dense-matrix method of Section 2.2).
        n_components: truncate the returned factors to this many triplets.

    Returns:
        (U, s, Vt, stats): the (truncated) SVD of *data* and the
        intermediate-data element counts of the three steps.
    """
    dense = np.asarray(data.todense()) if sp.issparse(data) else np.asarray(data, dtype=np.float64)
    n_rows, n_cols = dense.shape
    if n_rows < n_cols:
        raise ShapeError(
            f"SVD-Bidiag expects a tall matrix (N >= D), got {dense.shape}"
        )
    k = n_components or n_cols

    # Step 1: QR.
    q_factor, r_factor = np.linalg.qr(dense)
    # Step 2: Golub-Kahan bidiagonalization of R.
    u1, bidiagonal, v1 = bidiagonalize(r_factor)
    # Step 3: SVD of the bidiagonal matrix.
    u2, singular_values, v2t = _bidiagonal_svd(bidiagonal)

    left = q_factor @ u1 @ u2
    right_t = v2t @ v1.T
    order = np.argsort(singular_values)[::-1]
    left = left[:, order][:, :k]
    singular_values = singular_values[order][:k]
    right_t = right_t[order][:k]

    stats = BidiagStats(
        qr_elements=n_rows * n_cols + n_cols * n_cols,
        bidiag_elements=3 * n_cols * n_cols,
        svd_elements=3 * n_cols * n_cols,
    )
    return left, singular_values, right_t, stats
