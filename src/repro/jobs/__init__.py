"""Distributed sPCA jobs.

:mod:`repro.jobs.kernels` holds the per-block math shared by every backend;
the sibling modules wrap those kernels as MapReduce jobs and Spark closures.
Keeping the arithmetic in one place guarantees that all backends compute the
same numbers -- the engines only differ in how partial results move around.
"""

from repro.jobs.kernels import (
    block_error_parts,
    block_frobenius,
    block_latent,
    block_ss3,
    block_sums,
    block_ytx_xtx,
)

__all__ = [
    "block_error_parts",
    "block_frobenius",
    "block_latent",
    "block_ss3",
    "block_sums",
    "block_ytx_xtx",
]
