"""Metabolomics: PCA of NMR urine spectra (the paper's Diabetes workload).

Each patient is a 4,000-bin NMR spectrum; the metabolite concentrations
that generated the spectra form a low-rank structure that PCA recovers.
This example fits sPCA, reports how much variance the top components
explain, and locates the spectral peaks that drive the first component.

Run with:  python examples/metabolomics.py
"""

import numpy as np

from repro.core import SPCA, SPCAConfig
from repro.data import nmr_spectra
from repro.linalg import centered_gram, column_means
from repro.metrics import explained_variance_ratio


def main() -> None:
    n_patients, n_frequencies = 353, 4_000
    spectra = nmr_spectra(n_patients, n_frequencies, n_metabolites=10, seed=11)

    config = SPCAConfig(n_components=8, max_iterations=40, tolerance=1e-7, seed=2,
                        compute_error_every_iteration=False)
    model, history = SPCA(config).fit(spectra)

    directions, variances = model.principal_directions(spectra)
    mean = column_means(spectra)
    total_variance = float(np.trace(centered_gram(spectra, mean))) / (n_patients - 1)
    shares = explained_variance_ratio(total_variance, variances)

    print(f"{n_patients} patients x {n_frequencies} NMR bins, "
          f"{history.n_iterations} EM iterations")
    print(f"top-8 components explain {100 * shares.sum():.1f}% of the variance")
    for i, share in enumerate(shares, start=1):
        print(f"  PC{i}: {100 * share:5.1f}%")

    # The strongest loadings of PC1 point at the most informative bins.
    loadings = np.abs(directions[:, 0])
    peak_bins = np.argsort(loadings)[::-1][:5]
    frequencies = np.linspace(0.0, 10.0, n_frequencies)
    peaks = ", ".join(f"{frequencies[b]:.2f} ppm" for b in sorted(peak_bins))
    print(f"PC1 peak resonances: {peaks}")


if __name__ == "__main__":
    main()
