"""The serial executor: today's behavior, bit-identical by construction."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.engine.exec.base import TaskExecutor


class SerialExecutor(TaskExecutor):
    """Runs tasks in a plain left-to-right loop on the calling thread.

    Emits no executor events and the engines keep their legacy in-line code
    path when they see ``serial=True``, so the default configuration is not
    merely equivalent to the pre-executor engine -- it *is* the pre-executor
    engine.
    """

    name = "serial"
    serial = True

    def __init__(self, workers: int = 1):
        super().__init__(workers=1)

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        label: str = "tasks",
    ) -> list[Any]:
        return [fn(payload) for payload in payloads]
