"""The user-facing MapReduce programming API.

Mirrors the Hadoop ``org.apache.hadoop.mapreduce`` API closely enough that
the sPCA jobs read like their Java originals: a job is a mapper, an optional
combiner, and an optional reducer, each with ``setup`` and ``cleanup`` hooks
and a :class:`TaskContext` carrying counters and job configuration.

The ``cleanup``-emits-records hook is load-bearing: sPCA's YtXJob uses a
*stateful combiner* (Section 4.1) -- the mapper accumulates partial XtX/YtX
matrices across all of its input and emits them once, from ``cleanup``.

Batch protocol
--------------

``map_batch`` / ``reduce_batch`` are the batched fast path: the runtime
hands a mapper its whole split (and a reducer its whole sorted key-group
list) in one call, so a vectorizing override can replace N per-record
Python/numpy dispatches with one stacked kernel call.  The base-class
implementations fall back to the per-record ``map``/``reduce`` hooks, so
every existing job runs unchanged -- overriding the batch hook is purely an
optimization and must preserve the per-record semantics (same emitted
records up to floating-point summation order, same counters, same output
shapes and therefore byte accounting).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

Pair = tuple[Any, Any]


@dataclass
class TaskContext:
    """Per-task context: configuration, counters, and identity."""

    job_name: str
    task_id: int
    config: dict[str, Any] = field(default_factory=dict)
    counters: Counter[str] = field(default_factory=Counter)

    def increment(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount


class Mapper:
    """Base mapper: override :meth:`map`, optionally setup/cleanup."""

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first record of a task."""

    def map(self, key: Any, value: Any, ctx: TaskContext) -> Iterator[Pair]:
        """Process one record; yield zero or more (key, value) pairs."""
        yield key, value

    def map_batch(self, records: Sequence[Pair], ctx: TaskContext) -> list[Pair]:
        """Process one whole split; falls back to per-record :meth:`map`.

        Override to vectorize across the split's records.  An override must
        emit the same records (up to floating-point summation order) and the
        same counter increments as the per-record path would.
        """
        output: list[Pair] = []
        for key, value in records:
            output.extend(self.map(key, value, ctx))
        return output

    def cleanup(self, ctx: TaskContext) -> Iterable[Pair]:
        """Called once after the last record; may emit final pairs."""
        return ()


class Reducer:
    """Base reducer: override :meth:`reduce`."""

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first key of a task."""

    def reduce(self, key: Any, values: list[Any], ctx: TaskContext) -> Iterator[Pair]:
        """Process all values of one key; yield zero or more pairs."""
        yield key, values

    def reduce_batch(
        self, groups: Sequence[tuple[Any, list[Any]]], ctx: TaskContext
    ) -> list[Pair]:
        """Process every (key, values) group of a task; falls back to
        per-key :meth:`reduce`.  Groups arrive in the runtime's sorted key
        order; an override must preserve that emission order.
        """
        output: list[Pair] = []
        for key, values in groups:
            output.extend(self.reduce(key, values, ctx))
        return output

    def cleanup(self, ctx: TaskContext) -> Iterable[Pair]:
        """Called once after the last key; may emit final pairs."""
        return ()


class Combiner(Reducer):
    """A combiner is a reducer run on map output before the shuffle."""


class IdentityMapper(Mapper):
    """Passes records through unchanged."""


class SumReducer(Reducer):
    """Sums the values of each key (works for numbers and numpy arrays)."""

    def reduce(self, key, values, ctx):
        total = values[0]
        for value in values[1:]:
            total = total + value
        yield key, total


@dataclass
class MapReduceJob:
    """A complete job description submitted to the runtime.

    Attributes:
        name: job name (appears in metrics).
        mapper: the mapper instance.
        reducer: optional reducer; a map-only job writes map output directly.
        combiner: optional combiner applied to each map task's output.
        num_reducers: reduce-task parallelism.
        config: arbitrary job configuration visible in every TaskContext
            (this stands in for Hadoop's DistributedCache: sPCA ships the
            small broadcast matrices CM/Ym/Xm here).
        output_path: when set, the runtime writes job output to this HDFS
            path (charging HDFS write bytes) instead of returning it only.
        output_is_intermediate: mark the output as intermediate data (it is
            consumed by a later job of the same computation) so it counts
            towards the paper's intermediate-data metric.
    """

    name: str
    mapper: Mapper
    reducer: Reducer | None = None
    combiner: Combiner | None = None
    num_reducers: int = 1
    config: dict[str, Any] = field(default_factory=dict)
    output_path: str | None = None
    output_is_intermediate: bool = False
