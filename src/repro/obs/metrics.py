"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the aggregation layer the tracer deliberately is not: spans
record *what happened when*, while metrics accumulate *how much and how
fast* -- per-job simulated/wall latency distributions with exact p50/p90/p99,
byte counters for every data channel the paper's evaluation accounts
(shuffle, HDFS, broadcast, driver collect), cache hit ratios, fault/retry
tallies from the fault layer, and per-worker occupancy from the executor
layer.

Design rules, mirroring :mod:`repro.obs.tracer`:

- **Driver-side only.**  Every instrument update happens on the driver
  thread (engines publish finished :class:`~repro.engine.metrics.JobStats`,
  scoped task events are counted at ordered commit), so no locks are needed
  and concurrent executors stay bit-identical to serial.
- **Disabled by default.**  The process-wide registry
  (:func:`get_registry`) is a shared disabled instance; instrumentation
  sites guard on ``registry.enabled`` so the cost of *not* collecting is
  one attribute check.
- **Exact.**  Histograms retain raw observations (up to ``exact_limit``),
  so percentiles are exact nearest-rank values and the histogram ``sum``
  accumulates in recording order -- float-identical to
  ``EngineMetrics.total_*`` (see :func:`reconcile_registry`).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts
stamped with :data:`METRICS_SCHEMA`; :func:`merge_snapshots` combines
snapshots from independent runs and stays exact while the merged value
lists are complete.  :func:`to_prometheus` renders the standard text
exposition format (log-bucketed ``le`` boundaries), and
:func:`parse_prometheus` reads it back for round-trip checks.
"""

from __future__ import annotations

import json
import math
import re
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

METRICS_SCHEMA = "repro.metrics/1"

#: raw observations retained per histogram before percentiles degrade from
#: exact nearest-rank values to log-bucket upper-bound estimates
DEFAULT_EXACT_LIMIT = 65536

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: bucket key for observations <= 0 (no finite log-bucket holds them)
_UNDERFLOW = "u"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def bucket_index(value: float) -> int | None:
    """The log2 bucket holding *value*: ``2**(i-1) < value <= 2**i``.

    Returns None for values <= 0 (the underflow bucket).
    """
    if value <= 0:
        return None
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    if mantissa == 0.5:
        return exponent - 1
    return exponent


def bucket_upper_bound(index: int | None) -> float:
    """The inclusive upper boundary (Prometheus ``le``) of a bucket."""
    if index is None:
        return 0.0
    return math.ldexp(1.0, index)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log2-bucketed distribution with exact nearest-rank percentiles.

    Every observation lands in a sparse power-of-two bucket (for the
    Prometheus export and for merge-without-raw-values), and the raw value
    is additionally retained up to *exact_limit* so :meth:`percentile`
    answers with the exact nearest-rank order statistic.  Past the limit,
    percentiles degrade to the bucket upper bound at the rank (and
    :attr:`exact` turns False).
    """

    __slots__ = ("name", "labels", "exact_limit", "count", "sum", "buckets", "values")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ):
        self.name = name
        self.labels = labels
        self.exact_limit = exact_limit
        self.count = 0
        self.sum: float = 0.0
        self.buckets: dict[int | None, int] = {}
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if len(self.values) < self.exact_limit:
            self.values.append(value)

    @property
    def exact(self) -> bool:
        """True while every observation is still retained verbatim."""
        return len(self.values) == self.count

    def percentile(self, q: float) -> float | None:
        """The q-th percentile (nearest-rank); None for an empty histogram."""
        return _percentile(q, self.count, self.values, self.exact, self.buckets)

    def percentiles(self) -> dict[str, Any]:
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "exact": self.exact,
        }


def _percentile(
    q: float,
    count: int,
    values: list[float],
    exact: bool,
    buckets: dict[int | None, int],
) -> float | None:
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    if count == 0:
        return None
    rank = max(1, math.ceil(q / 100.0 * count))
    if exact:
        return sorted(values)[rank - 1]
    # Estimate: upper bound of the bucket containing the rank.  Underflow
    # (<= 0) sorts first.
    ordered = sorted(buckets.items(), key=lambda kv: -math.inf if kv[0] is None else kv[0])
    cumulative = 0
    for index, n in ordered:
        cumulative += n
        if cumulative >= rank:
            return bucket_upper_bound(index)
    return bucket_upper_bound(ordered[-1][0])  # pragma: no cover - rank <= count


class MetricsRegistry:
    """Holds instruments keyed by (name, sorted labels).

    Args:
        enabled: when False, every factory hands back a shared no-op
            instrument and nothing is recorded.
        exact_limit: per-histogram raw-value retention cap.
    """

    def __init__(self, enabled: bool = True, exact_limit: int = DEFAULT_EXACT_LIMIT):
        self.enabled = enabled
        self.exact_limit = exact_limit
        self._counters: dict[tuple[str, tuple[tuple[str, str], ...]], Counter] = {}
        self._gauges: dict[tuple[str, tuple[tuple[str, str], ...]], Gauge] = {}
        self._histograms: dict[tuple[str, tuple[tuple[str, str], ...]], Histogram] = {}

    # -- instrument factories (get-or-create) ----------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NOOP_COUNTER
        key = (_check_name(name), _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(*key)
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NOOP_GAUGE
        key = (_check_name(name), _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(*key)
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        if not self.enabled:
            return _NOOP_HISTOGRAM
        key = (_check_name(name), _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                key[0], key[1], exact_limit=self.exact_limit
            )
        return instrument

    # -- lookups (never create) ------------------------------------------

    def find_counter(self, name: str, **labels: str) -> Counter | None:
        return self._counters.get((name, _label_key(labels)))

    def find_gauge(self, name: str, **labels: str) -> Gauge | None:
        return self._gauges.get((name, _label_key(labels)))

    def find_histogram(self, name: str, **labels: str) -> Histogram | None:
        return self._histograms.get((name, _label_key(labels)))

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all of its label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def gauge_values(self, name: str) -> list[Gauge]:
        """Every gauge with *name*, across all label sets."""
        return [g for (n, _), g in self._gauges.items() if n == name]

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot of every instrument (schema-stamped)."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": {
                        (_UNDERFLOW if index is None else str(index)): n
                        for index, n in sorted(
                            h.buckets.items(),
                            key=lambda kv: -(2**62) if kv[0] is None else kv[0],
                        )
                    },
                    "values": list(h.values) if h.exact else None,
                    **h.percentiles(),
                }
                for h in self._histograms.values()
            ],
        }


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")


# -- process-wide registry ---------------------------------------------------

_DISABLED = MetricsRegistry(enabled=False)
_registry: MetricsRegistry = _DISABLED


def get_registry() -> MetricsRegistry:
    """The process-wide registry (a shared disabled one by default)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> None:
    """Install *registry* as the process-wide registry."""
    global _registry
    _registry = registry


@contextmanager
def collecting(
    enabled: bool = True, exact_limit: int = DEFAULT_EXACT_LIMIT
) -> Iterator[MetricsRegistry]:
    """Install a fresh registry for the duration of the block."""
    previous = get_registry()
    registry = MetricsRegistry(enabled=enabled, exact_limit=exact_limit)
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# -- snapshot algebra --------------------------------------------------------


def _sample_key(sample: dict[str, Any]) -> tuple[str, tuple[tuple[str, str], ...]]:
    return sample["name"], tuple(sorted(sample.get("labels", {}).items()))


def snapshot_percentile(histogram: dict[str, Any], q: float) -> float | None:
    """Percentile from a snapshotted histogram entry (exact when possible)."""
    count = int(histogram.get("count", 0))
    values = histogram.get("values")
    exact = values is not None and len(values) == count
    buckets: dict[int | None, int] = {
        (None if key == _UNDERFLOW else int(key)): int(n)
        for key, n in histogram.get("buckets", {}).items()
    }
    return _percentile(q, count, list(values or ()), exact, buckets)


def merge_snapshots(*snapshots: dict[str, Any]) -> dict[str, Any]:
    """Merge snapshots from independent registries into one.

    Counters and histogram counts/sums/buckets add; gauges take the last
    snapshot's value; histogram raw values concatenate (percentiles stay
    exact) whenever every input retained its values.
    """
    counters: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, Any]] = {}
    gauges: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, Any]] = {}
    histograms: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, Any]] = {}
    for snapshot in snapshots:
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snapshot.get('schema')!r}"
            )
        for sample in snapshot.get("counters", ()):
            key = _sample_key(sample)
            row = counters.setdefault(
                key, {"name": sample["name"], "labels": dict(sample.get("labels", {})),
                      "value": 0}
            )
            row["value"] += sample["value"]
        for sample in snapshot.get("gauges", ()):
            key = _sample_key(sample)
            gauges[key] = {
                "name": sample["name"],
                "labels": dict(sample.get("labels", {})),
                "value": sample["value"],
            }
        for sample in snapshot.get("histograms", ()):
            key = _sample_key(sample)
            row = histograms.get(key)
            if row is None:
                histograms[key] = {
                    "name": sample["name"],
                    "labels": dict(sample.get("labels", {})),
                    "count": int(sample["count"]),
                    "sum": sample["sum"],
                    "buckets": dict(sample.get("buckets", {})),
                    "values": (
                        list(sample["values"]) if sample.get("values") is not None
                        else None
                    ),
                }
                continue
            row["count"] += int(sample["count"])
            row["sum"] += sample["sum"]
            for bucket, n in sample.get("buckets", {}).items():
                row["buckets"][bucket] = row["buckets"].get(bucket, 0) + int(n)
            if row["values"] is not None and sample.get("values") is not None:
                row["values"] = list(row["values"]) + list(sample["values"])
            else:
                row["values"] = None
    for row in histograms.values():
        if row["values"] is not None and len(row["values"]) != row["count"]:
            row["values"] = None
        exact = row["values"] is not None
        row["exact"] = exact
        for q, label in ((50, "p50"), (90, "p90"), (99, "p99")):
            row[label] = snapshot_percentile(row, q)
    return {
        "schema": METRICS_SCHEMA,
        "counters": list(counters.values()),
        "gauges": list(gauges.values()),
        "histograms": list(histograms.values()),
    }


# -- Prometheus text exposition ----------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def to_prometheus(snapshot: dict[str, Any] | MetricsRegistry) -> str:
    """Render a snapshot (or live registry) as Prometheus text format."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for sample in snapshot.get("counters", ()):
        type_line(sample["name"], "counter")
        lines.append(
            f"{sample['name']}{_format_labels(sample.get('labels', {}))} "
            f"{_format_number(sample['value'])}"
        )
    for sample in snapshot.get("gauges", ()):
        if sample["value"] is None:
            continue
        type_line(sample["name"], "gauge")
        lines.append(
            f"{sample['name']}{_format_labels(sample.get('labels', {}))} "
            f"{_format_number(sample['value'])}"
        )
    for sample in snapshot.get("histograms", ()):
        name = sample["name"]
        type_line(name, "histogram")
        labels = sample.get("labels", {})
        cumulative = 0
        buckets = sorted(
            sample.get("buckets", {}).items(),
            key=lambda kv: -(2**62) if kv[0] == _UNDERFLOW else int(kv[0]),
        )
        for key, n in buckets:
            cumulative += int(n)
            bound = bucket_upper_bound(None if key == _UNDERFLOW else int(key))
            lines.append(
                f"{name}_bucket{_format_labels(labels, (('le', _format_number(bound)),))}"
                f" {cumulative}"
            )
        lines.append(
            f"{name}_bucket{_format_labels(labels, (('le', '+Inf'),))} "
            f"{int(sample['count'])}"
        )
        lines.append(f"{name}_sum{_format_labels(labels)} {_format_number(sample['sum'])}")
        lines.append(f"{name}_count{_format_labels(labels)} {int(sample['count'])}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text format into ``{(name, labels): value}``.

    Supports exactly the subset :func:`to_prometheus` emits; used by the
    round-trip test that keeps the exporter honest.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparsable sample line: {line!r}")
        labels = tuple(
            sorted(
                (k, v.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\"))
                for k, v in _LABEL_PAIR_RE.findall(match.group("labels") or "")
            )
        )
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        samples[(match.group("name"), labels)] = value
    return samples


def write_snapshot(
    source: MetricsRegistry | dict[str, Any], path: str | Path
) -> Path:
    """Write a snapshot to *path*: ``.prom`` selects Prometheus text, else JSON."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".prom":
        path.write_text(to_prometheus(snapshot))
    else:
        path.write_text(json.dumps(snapshot, indent=1) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Load a JSON snapshot written by :func:`write_snapshot`."""
    snapshot = json.loads(Path(path).read_text())
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: not a metrics snapshot (schema {snapshot.get('schema')!r})"
        )
    return snapshot


# -- engine instrumentation ---------------------------------------------------

_BYTE_CHANNELS = (
    ("spca_shuffle_bytes_total", "shuffle_bytes"),
    ("spca_map_output_bytes_total", "map_output_bytes"),
    ("spca_hdfs_read_bytes_total", "hdfs_read_bytes"),
    ("spca_hdfs_write_bytes_total", "hdfs_write_bytes"),
    ("spca_broadcast_bytes_total", "broadcast_bytes"),
    ("spca_driver_result_bytes_total", "driver_result_bytes"),
    ("spca_intermediate_bytes_total", "intermediate_bytes"),
)


def observe_job_stats(registry: MetricsRegistry, stats: Any) -> None:
    """Publish one finished job's stats into *registry*.

    The single funnel for both engines: :meth:`EngineMetrics.record` calls
    this for every job, Spark stage, broadcast, HDFS round-trip, and
    backoff charge -- so registry totals cover exactly the jobs the engine
    accounted, which is what :func:`reconcile_registry` checks.
    """
    registry.counter("spca_jobs_total").inc()
    registry.histogram("spca_job_sim_seconds").observe(stats.sim_seconds)
    registry.histogram("spca_job_wall_seconds").observe(stats.wall_seconds)
    registry.histogram("spca_job_intermediate_bytes").observe(stats.intermediate_bytes)
    for metric, attr in _BYTE_CHANNELS:
        registry.counter(metric).inc(int(getattr(stats, attr)))
    registry.counter("spca_task_retries_total").inc(stats.task_retries)
    registry.counter("spca_recovery_sim_seconds_total").inc(stats.recovery_sim_seconds)
    for label, amount in stats.faults.items():
        registry.counter("spca_faults_total", fault=label).inc(amount)


def count_cache_hit(registry: MetricsRegistry, nbytes: int = 0) -> None:
    """Tally one block-cache hit (driver-side / commit path only)."""
    registry.counter("spca_cache_hits_total").inc()
    registry.counter("spca_cache_hit_bytes_total").inc(int(nbytes))


def cache_hit_ratio(registry: MetricsRegistry) -> float | None:
    """Hits / (hits + fills); None before any cache activity."""
    hits = registry.counter_total("spca_cache_hits_total")
    fills = registry.counter_total("spca_cache_puts_total")
    if hits + fills == 0:
        return None
    return hits / (hits + fills)


def reconcile_registry(snapshot: dict[str, Any], metrics: Any) -> list[str]:
    """Cross-check a registry snapshot against an ``EngineMetrics``.

    Returns human-readable discrepancies; empty means the registry's
    byte/time totals agree *exactly* (float-exact sums, integer-exact
    byte counts) with the engine's own accounting.
    """
    problems: list[str] = []
    counters = {_sample_key(s): s["value"] for s in snapshot.get("counters", ())}
    histograms = {_sample_key(s): s for s in snapshot.get("histograms", ())}

    def counter_value(name: str, **labels: str) -> float:
        return counters.get((name, tuple(sorted(labels.items()))), 0)

    n_jobs = len(metrics.jobs)
    if counter_value("spca_jobs_total") != n_jobs:
        problems.append(
            f"spca_jobs_total {counter_value('spca_jobs_total')} != {n_jobs} jobs"
        )
    sim = histograms.get(("spca_job_sim_seconds", ()))
    if sim is None:
        if n_jobs:
            problems.append("spca_job_sim_seconds histogram missing")
    else:
        if sim["count"] != n_jobs:
            problems.append(f"spca_job_sim_seconds count {sim['count']} != {n_jobs}")
        if sim["sum"] != metrics.total_sim_seconds:
            problems.append(
                f"spca_job_sim_seconds sum {sim['sum']!r} "
                f"!= {metrics.total_sim_seconds!r}"
            )
    wall = histograms.get(("spca_job_wall_seconds", ()))
    if wall is not None and wall["sum"] != metrics.total_wall_seconds:
        problems.append(
            f"spca_job_wall_seconds sum {wall['sum']!r} "
            f"!= {metrics.total_wall_seconds!r}"
        )
    for metric, attr in _BYTE_CHANNELS:
        expected = int(getattr(metrics, f"total_{attr}"))
        got = counter_value(metric)
        if got != expected:
            problems.append(f"{metric} {got} != {expected}")
    if counter_value("spca_task_retries_total") != metrics.total_task_retries:
        problems.append(
            f"spca_task_retries_total {counter_value('spca_task_retries_total')} "
            f"!= {metrics.total_task_retries}"
        )
    if counter_value("spca_recovery_sim_seconds_total") != metrics.total_recovery_sim_seconds:
        problems.append(
            "spca_recovery_sim_seconds_total "
            f"{counter_value('spca_recovery_sim_seconds_total')!r} "
            f"!= {metrics.total_recovery_sim_seconds!r}"
        )
    for label, amount in metrics.total_faults.items():
        got = counter_value("spca_faults_total", fault=label)
        if got != amount:
            problems.append(f"spca_faults_total{{fault={label}}} {got} != {amount}")
    return problems
