"""The streaming PCA driver loop.

``StreamingPCA`` pulls chunks from a :class:`~repro.stream.source.RowSource`,
windows them, and folds each window into the carried sEM state: the window's
rows are reduced engine-side to d-sized statistics (one job per window,
dispatched through the executor layer) and blended driver-side.  Because
the window sequence is a pure function of the row order, and the engines'
execute/commit protocol keeps every executor bitwise-identical to serial,
the resulting model equals the sequential
:meth:`~repro.extensions.incremental.IncrementalPPCA.partial_fit_stream`
reference bit for bit -- the property the acceptance suite pins.

Around the model update, each window also drives:

- **telemetry**: an ``iteration`` span per window plus ``stream_window`` /
  ``stream_drift`` / ``stream_checkpoint`` events in the tracer, and
  counters/gauges/histograms in the metrics registry (rows and windows
  processed, backpressure queue depth, window lag, rows/s, window wall
  time, drift angle);
- **drift detection**: a passive subspace-angle detector
  (:class:`~repro.stream.drift.DriftDetector`);
- **checkpointing**: periodic :class:`~repro.core.checkpoint.EMCheckpoint`
  snapshots at window boundaries, so a killed stream resumes
  bit-identically (:meth:`StreamingPCA.resume`).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.core.checkpoint import CheckpointPolicy
from repro.core.convergence import IterationStats
from repro.core.model import PCAModel
from repro.engine.cluster import ClusterSpec
from repro.engine.exec import TaskExecutor
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.errors import CheckpointError, ShapeError
from repro.extensions.incremental import SEMState, initial_sem_state, sem_blend
from repro.faults import FaultInjector
from repro.obs import get_tracer
from repro.obs.metrics import get_registry
from repro.stream.checkpoint import (
    StreamSnapshot,
    pack_stream_checkpoint,
    unpack_stream_checkpoint,
)
from repro.stream.drift import DriftDetector, DriftEvent
from repro.stream.engines import WindowEngine, make_window_engine
from repro.stream.source import RowSource
from repro.stream.window import Window, Windower, WindowSpec


@dataclass(frozen=True)
class StreamConfig:
    """Everything that defines a streaming run (and must match on resume).

    Attributes:
        n_components: latent dimensionality d.
        window: rows per window (the sEM mini-batch size).
        step: window advance; None for tumbling windows.
        step_decay: kappa in ``eta_t = (t + 2)^-kappa``.
        seed: seed for the random component initialization.
        rows_per_task: rows per engine task when a window is distributed.
        drift_threshold_degrees: enable the drift detector at this
            subspace-angle threshold; None disables detection.
        drift_lag: detector comparison distance, in windows.
        drift_warmup: windows before detection starts (default: the lag).
        drift_patience: consecutive drifting windows required to fire.
        history_limit: per-window stats kept in memory / checkpoints.
    """

    n_components: int
    window: int
    step: int | None = None
    step_decay: float = 0.7
    seed: int = 0
    rows_per_task: int = 256
    drift_threshold_degrees: float | None = None
    drift_lag: int = 3
    drift_warmup: int | None = None
    drift_patience: int = 1
    history_limit: int = 512

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ShapeError(
                f"n_components must be >= 1, got {self.n_components}"
            )
        if not 0.5 < self.step_decay <= 1.0:
            raise ShapeError(
                f"step_decay must be in (0.5, 1], got {self.step_decay}"
            )
        if self.rows_per_task < 1:
            raise ShapeError(
                f"rows_per_task must be >= 1, got {self.rows_per_task}"
            )
        if self.history_limit < 0:
            raise ShapeError(
                f"history_limit must be >= 0, got {self.history_limit}"
            )
        self.spec()  # validates window/step
        self.detector()  # validates the drift parameters

    def spec(self) -> WindowSpec:
        return WindowSpec(self.window, self.step)

    def detector(self) -> DriftDetector | None:
        if self.drift_threshold_degrees is None:
            return None
        return DriftDetector(
            self.drift_threshold_degrees,
            lag=self.drift_lag,
            warmup=self.drift_warmup,
            patience=self.drift_patience,
        )

    def as_dict(self) -> dict:
        """JSON-stable form, written into (and checked against) checkpoints."""
        return asdict(self)


@dataclass(frozen=True)
class WindowRecord:
    """Per-window measurements (the stream's iteration history)."""

    index: int
    start_row: int
    rows: int
    noise_variance: float
    drift_angle_degrees: float | None
    wall_seconds: float
    sim_seconds: float


@dataclass
class StreamResult:
    """What one ``run``/``resume`` call produced.

    ``windows``/``rows`` count this call only; ``state`` (and the model
    derived from it) reflects the whole stream up to now.
    """

    model: PCAModel
    state: SEMState
    windows: int
    rows: int
    next_window_index: int
    rows_consumed: int
    drift_events: list[DriftEvent] = field(default_factory=list)
    records: list[WindowRecord] = field(default_factory=list)
    checkpoints: int = 0
    stop_reason: str = "exhausted"
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0


class StreamingPCA:
    """Windowed mini-batch stochastic-EM PCA over a row stream.

    Args:
        config: the stream configuration.
        engine: ``"sequential"`` / ``"mapreduce"`` / ``"spark"``, or a
            ready :class:`~repro.stream.engines.WindowEngine`,
            :class:`~repro.engine.mapreduce.runtime.MapReduceRuntime`, or
            :class:`~repro.engine.spark.context.SparkContext`.
        executor / workers: task-executor selection for a named engine.
        faults: fault injector for a named engine (chaos testing).
        cluster: simulated cluster for a named engine.
        max_task_attempts: per-task retry budget for a named engine.
    """

    def __init__(
        self,
        config: StreamConfig,
        engine: WindowEngine | MapReduceRuntime | SparkContext | str = "sequential",
        *,
        executor: TaskExecutor | str | None = None,
        workers: int | None = None,
        faults: FaultInjector | None = None,
        cluster: ClusterSpec | None = None,
        max_task_attempts: int = 4,
    ):
        self.config = config
        self.engine = make_window_engine(
            engine,
            rows_per_task=config.rows_per_task,
            cluster=cluster,
            faults=faults,
            executor=executor,
            workers=workers,
            max_task_attempts=max_task_attempts,
            seed=config.seed,
        )

    # -- entry points ----------------------------------------------------

    def run(
        self,
        source: RowSource,
        *,
        max_windows: int | None = None,
        max_rows: int | None = None,
        checkpoint: CheckpointPolicy | None = None,
    ) -> StreamResult:
        """Consume *source* from row 0 until exhaustion or a bound.

        Args:
            source: where the rows come from.
            max_windows: stop after this many windows (total stream index).
            max_rows: stop once at least this many rows were folded in.
            checkpoint: snapshot policy (store + interval); None disables.
        """
        state = initial_sem_state(
            self.config.n_components, source.n_cols, self.config.seed
        )
        windower = Windower(self.config.spec(), source.n_cols)
        return self._drive(
            source,
            state,
            windower,
            self.config.detector(),
            history=(),
            policy=checkpoint,
            max_windows=max_windows,
            max_rows=max_rows,
        )

    def resume(
        self,
        source: RowSource,
        checkpoint: CheckpointPolicy,
        *,
        max_windows: int | None = None,
        max_rows: int | None = None,
    ) -> StreamResult:
        """Continue a checkpointed stream from its latest snapshot.

        The source is replayed from the snapshot's consumed-row boundary
        (``chunks(start_row=...)``), so the resumed run processes exactly
        the windows the uninterrupted run would have processed next, and --
        because the snapshot restores the sEM state bit-exactly -- reaches
        the bit-identical model.
        """
        stored = checkpoint.store.load_latest()
        if stored is None:
            raise CheckpointError("the checkpoint store is empty; nothing to resume")
        snapshot: StreamSnapshot = unpack_stream_checkpoint(
            stored, self.config.as_dict()
        )
        if source.n_cols != snapshot.state.n_cols:
            raise ShapeError(
                f"source has {source.n_cols} columns but the checkpoint "
                f"was written for {snapshot.state.n_cols}"
            )
        windower = Windower(
            self.config.spec(),
            source.n_cols,
            start_row=snapshot.rows_consumed,
            start_index=snapshot.next_window_index,
        )
        detector = self.config.detector()
        if detector is not None and snapshot.detector_state is not None:
            detector.load_state(snapshot.detector_state)
        return self._drive(
            source,
            snapshot.state,
            windower,
            detector,
            history=snapshot.history,
            policy=checkpoint,
            max_windows=max_windows,
            max_rows=max_rows,
        )

    # -- the drive loop --------------------------------------------------

    def _engine_sim_seconds(self) -> float:
        metrics = self.engine.metrics
        return metrics.total_sim_seconds if metrics is not None else 0.0

    def _drive(
        self,
        source: RowSource,
        state: SEMState,
        windower: Windower,
        detector: DriftDetector | None,
        *,
        history: tuple[IterationStats, ...],
        policy: CheckpointPolicy | None,
        max_windows: int | None,
        max_rows: int | None,
    ) -> StreamResult:
        config = self.config
        registry = get_registry()
        tracer = get_tracer()
        spec = config.spec()
        labels = {"engine": self.engine.name}

        result = StreamResult(
            model=state.to_model(),
            state=state,
            windows=0,
            rows=0,
            next_window_index=windower.next_index,
            rows_consumed=windower.consumed_rows,
        )
        # Replay point of the *processed* prefix.  The windower's own
        # consumed_rows can run ahead of it when one arrival chunk completes
        # several windows at once, and a checkpoint taken mid-batch must not
        # skip the emitted-but-unprocessed windows on resume.
        consumed_after = windower.consumed_rows
        next_index_after = windower.next_index
        history_list = list(history)
        started_wall = time.perf_counter()
        started_sim = self._engine_sim_seconds()

        def set_backpressure() -> None:
            if not registry.enabled:
                return
            registry.gauge("spca_stream_queue_rows", **labels).set(
                windower.buffered_rows
            )
            registry.gauge("spca_stream_window_lag", **labels).set(
                windower.buffered_rows / spec.size
            )

        def process(window: Window) -> None:
            nonlocal state, consumed_after, next_index_after
            window_wall = time.perf_counter()
            window_sim = self._engine_sim_seconds()
            with tracer.span(
                "iteration",
                f"window-{window.index}",
                index=window.index + 1,
                start_row=window.start_row,
                rows=window.n_rows,
            ):
                stats = self.engine.window_statistics(
                    window.rows, state, update_mean=True
                )
                state = sem_blend(state, stats, step_decay=config.step_decay)
            angle: float | None = None
            event: DriftEvent | None = None
            if detector is not None:
                angle, event = detector.observe(
                    window.index, window.end_row, state.components
                )
            wall = time.perf_counter() - window_wall
            sim = self._engine_sim_seconds() - window_sim
            tracer.event(
                "stream_window",
                index=window.index,
                start_row=window.start_row,
                rows=window.n_rows,
                complete=window.complete,
                noise_variance=state.noise_variance,
                drift_angle_degrees=angle,
            )
            if registry.enabled:
                registry.counter("spca_stream_rows_total", **labels).inc(
                    window.n_rows
                )
                registry.counter("spca_stream_windows_total", **labels).inc()
                registry.histogram(
                    "spca_stream_window_wall_seconds", **labels
                ).observe(wall)
                if wall > 0:
                    registry.gauge("spca_stream_rows_per_second", **labels).set(
                        window.n_rows / wall
                    )
                if angle is not None:
                    registry.gauge(
                        "spca_stream_drift_angle_degrees", **labels
                    ).set(angle)
            if event is not None:
                result.drift_events.append(event)
                tracer.event(
                    "stream_drift",
                    window_index=event.window_index,
                    end_row=event.end_row,
                    angle_degrees=event.angle_degrees,
                )
                if registry.enabled:
                    registry.counter(
                        "spca_stream_drift_events_total", **labels
                    ).inc()
            result.records.append(
                WindowRecord(
                    index=window.index,
                    start_row=window.start_row,
                    rows=window.n_rows,
                    noise_variance=state.noise_variance,
                    drift_angle_degrees=angle,
                    wall_seconds=wall,
                    sim_seconds=sim,
                )
            )
            history_list.append(
                IterationStats(
                    index=window.index + 1,
                    noise_variance=state.noise_variance,
                    error=None,
                    accuracy=None,
                    elapsed_seconds=time.perf_counter() - started_wall,
                    simulated_seconds=self._engine_sim_seconds() - started_sim,
                    intermediate_bytes=0,
                )
            )
            if config.history_limit and len(history_list) > config.history_limit:
                del history_list[: -config.history_limit]
            result.windows += 1
            result.rows += window.n_rows
            consumed_after = window.start_row + (
                min(spec.stride, window.n_rows) if window.complete
                else window.n_rows
            )
            next_index_after = window.index + 1
            set_backpressure()
            if policy is not None and policy.due(window.index + 1):
                nbytes = policy.store.save(
                    pack_stream_checkpoint(
                        window_index=window.index,
                        rows_consumed=consumed_after,
                        state=state,
                        detector_state=(
                            detector.state() if detector is not None else None
                        ),
                        config=config.as_dict(),
                        history=tuple(history_list),
                    )
                )
                result.checkpoints += 1
                tracer.event(
                    "stream_checkpoint", window_index=window.index, nbytes=nbytes
                )
                if registry.enabled:
                    registry.counter(
                        "spca_stream_checkpoints_total", **labels
                    ).inc()

        def reached_bound(window_index: int) -> str | None:
            if max_windows is not None and window_index + 1 >= max_windows:
                return "max_windows"
            if max_rows is not None and result.rows >= max_rows:
                return "max_rows"
            return None

        stopped: str | None = None
        with tracer.span(
            "run",
            f"stream[engine={self.engine.name},"
            f"d={config.n_components},w={spec.size}]",
            engine=self.engine.name,
            n_components=config.n_components,
            window=spec.size,
            start_row=windower.consumed_rows,
        ) as run_span:
            for chunk in source.chunks(start_row=windower.consumed_rows):
                windows = windower.push(chunk)
                set_backpressure()
                for window in windows:
                    process(window)
                    stopped = reached_bound(window.index)
                    if stopped:
                        break
                if stopped:
                    break
            if stopped is None:
                tail = windower.flush()
                if tail is not None:
                    process(tail)

            if state.rows_seen == 0:
                raise ShapeError("the stream produced no rows to fit")
            result.stop_reason = stopped or "exhausted"
            run_span.set(
                stop_reason=result.stop_reason,
                windows=result.windows,
                rows=result.rows,
            )
        result.model = state.to_model()
        result.state = state
        result.next_window_index = next_index_after
        result.rows_consumed = consumed_after
        result.wall_seconds = time.perf_counter() - started_wall
        result.sim_seconds = self._engine_sim_seconds() - started_sim
        return result
