"""Pluggable kernel backends behind the :mod:`repro.jobs.kernels` API.

Three implementations of the per-block sPCA kernels:

``numpy``
    The existing kernels, called one at a time.  Always available and always
    the fallback; every other backend is validated bitwise (or within a
    documented tolerance, for ``numba``) against it.

``fused``
    Hand-fused numpy.  The per-block work of one EM iteration -- latent
    recomputation, YtX/XtX, ss3, and the error kernel -- shares its big
    intermediates instead of recomputing them per kernel call: the
    densified-centered block is built once (via the bounded memo in
    :mod:`repro.jobs.kernels`), the latent block ``X = Yc * CM`` computed for
    YtXJob is reused verbatim by ss3Job of the same iteration (the C update
    between the two jobs does not touch the projector CM, so the recomputed
    value would be bit-identical), and a stacked batch block is built once
    per split per fit instead of once per job per iteration.  All arithmetic
    runs through the same numpy expressions as the ``numpy`` backend, so
    results are **bitwise identical** -- the memos only skip recomputation
    that would reproduce the exact same bytes.

``numba``
    Optional ``@njit``-compiled dense kernels (single fused pass per block:
    centering, projection, and accumulation in one loop nest, no dense
    intermediate materialized).  Importing numba is guarded: when the
    package is missing, :func:`resolve_kernel_backend` warns once and
    answers with the ``numpy`` backend, and the resolved name is what lands
    in trace spans and BENCH provenance.  Sparse blocks always take the
    numpy path (numba has no scipy.sparse support).  Compiled loops reorder
    floating-point accumulation relative to BLAS, so numba results match
    numpy only within a tolerance (see ``NUMBA_RTOL``); on integer-valued
    inputs whose magnitudes stay inside the float64 exact range the
    arithmetic is exact and results agree bit-for-bit, which is what the
    equivalence suite asserts.

Memory trade-off: the fused backend's memos are bounded LRU caches
(:class:`~repro.jobs.kernels.BoundedIdentityMemo`); at the default limits
they hold at most one extra stacked copy of the dataset plus one latent
block per split -- the same order of intermediate state the batched pipeline
already materializes transiently per task, just kept alive across kernel
calls instead of rebuilt.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import ConfigError
from repro.jobs import kernels
from repro.linalg.blocks import Matrix, is_sparse
from repro.linalg.centered import centered_times

KERNEL_BACKEND_NAMES = ("numpy", "fused", "numba")

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:
    _njit = None
    NUMBA_AVAILABLE = False

#: Relative tolerance for numba-vs-numpy float comparisons.  The compiled
#: loops accumulate in a different order than BLAS; for well-conditioned
#: PCA inputs the divergence stays within a few ulps of the summation,
#: and 1e-10 relative is a comfortable envelope for the shapes tested.
NUMBA_RTOL = 1e-10


class KernelBackend:
    """The per-block kernel operations one mapper/partition closure needs.

    The base class *is* the numpy backend: every op delegates straight to
    the existing :mod:`repro.jobs.kernels` functions, which keeps the
    default path byte-for-byte the pre-backend code.
    """

    name = "numpy"

    def sums(self, block: Matrix):
        return kernels.block_sums(block)

    def frobenius(self, block: Matrix, mean, efficient: bool) -> float:
        return kernels.block_frobenius(block, mean, efficient)

    def latent(self, block, mean, projector, latent_mean, mean_propagation):
        return kernels.block_latent(
            block, mean, projector, latent_mean, mean_propagation
        )

    def ytx_xtx(
        self, block, mean, projector, latent_mean, mean_propagation, latent=None
    ):
        return kernels.block_ytx_xtx(
            block, mean, projector, latent_mean, mean_propagation, latent=latent
        )

    def ss3(
        self,
        block,
        mean,
        projector,
        latent_mean,
        components,
        mean_propagation,
        latent=None,
    ) -> float:
        return kernels.block_ss3(
            block, mean, projector, latent_mean, components,
            mean_propagation, latent=latent,
        )

    def error_parts(self, block, mean, components, ls_projector, mean_propagation):
        return kernels.block_error_parts(
            block, mean, components, ls_projector, mean_propagation
        )

    def stack(self, blocks: list):
        return kernels.stack_blocks(blocks)

    def stack_latents(self, latents: list):
        return kernels.stack_latents(latents)

    def clear(self) -> None:
        """Drop any memoized intermediates (tests / benchmark isolation)."""


class NumpyKernelBackend(KernelBackend):
    """The current per-kernel code path; the equivalence baseline."""


class FusedKernelBackend(KernelBackend):
    """Hand-fused numpy: share intermediates across kernels of one pass.

    Three memos, all identity-keyed against the input block (and value-keyed
    against the small model matrices, which the driver rebuilds per
    dispatch):

    - *stacks*: a split's fine-grained records are vstacked once per fit
      rather than once per job per iteration;
    - *latents*: the ``X = Yc * CM`` block computed in YtXJob is returned
      verbatim to ss3Job of the same iteration (identical inputs -> the
      recomputation would be bit-identical);
    - the densified-centered intermediate is shared via the memo inside
      :mod:`repro.jobs.kernels`, plus a raw-dense memo for the error
      kernel's uncentered copy.
    """

    name = "fused"

    def __init__(self, memo_limit: int = 256):
        self._stacks = kernels.BoundedIdentityMemo(limit=memo_limit)
        self._latents = kernels.BoundedIdentityMemo(limit=memo_limit)
        self._dense = kernels.BoundedIdentityMemo(limit=memo_limit)

    def stack(self, blocks: list):
        if len(blocks) <= 1:
            return kernels.stack_blocks(blocks)
        key = tuple(id(block) for block in blocks)
        hit = self._stacks.get(key, tuple(blocks))
        if hit is not None:
            return hit
        value = kernels.stack_blocks(blocks)
        self._stacks.put(key, tuple(blocks), value)
        return value

    def latent(self, block, mean, projector, latent_mean, mean_propagation):
        key = (
            id(block),
            bool(mean_propagation),
            projector.tobytes(),
            latent_mean.tobytes(),
            mean.tobytes(),
        )
        hit = self._latents.get(key, (block,))
        if hit is not None:
            return hit
        value = kernels.block_latent(
            block, mean, projector, latent_mean, mean_propagation
        )
        self._latents.put(key, (block,), value)
        return value

    def ytx_xtx(
        self, block, mean, projector, latent_mean, mean_propagation, latent=None
    ):
        if latent is None:
            latent = self.latent(block, mean, projector, latent_mean, mean_propagation)
        return kernels.block_ytx_xtx(
            block, mean, projector, latent_mean, mean_propagation, latent=latent
        )

    def ss3(
        self,
        block,
        mean,
        projector,
        latent_mean,
        components,
        mean_propagation,
        latent=None,
    ) -> float:
        if latent is None:
            # Cache hit from this iteration's YtXJob: CM and Xm are computed
            # before the C update, so the latent block is identical.
            latent = self.latent(block, mean, projector, latent_mean, mean_propagation)
        return kernels.block_ss3(
            block, mean, projector, latent_mean, components,
            mean_propagation, latent=latent,
        )

    def error_parts(self, block, mean, components, ls_projector, mean_propagation):
        # Fused: one densify serves both the least-squares latent (via the
        # shared centered memo) and the residual pass, instead of the two
        # separate densifies of the per-kernel path.
        if mean_propagation:
            latent = centered_times(block, mean, ls_projector)
        else:
            latent = kernels._densify_centered(block, mean) @ ls_projector
        reconstruction = latent @ components.T + mean
        dense = self._densify(block)
        residual_colsums = np.abs(dense - reconstruction).sum(axis=0)
        magnitude_colsums = np.abs(dense).sum(axis=0)
        return residual_colsums, magnitude_colsums

    def _densify(self, block):
        if not is_sparse(block):
            return np.asarray(block, dtype=np.float64)
        key = (id(block),)
        hit = self._dense.get(key, (block,))
        if hit is not None:
            return hit
        value = np.asarray(block.todense())
        self._dense.put(key, (block,), value)
        return value

    def clear(self) -> None:
        self._stacks.clear()
        self._latents.clear()
        self._dense.clear()


# -- numba ------------------------------------------------------------------

if NUMBA_AVAILABLE:  # pragma: no cover - requires the optional extra

    @_njit(cache=True)
    def _nb_latent(dense, mean, projector, latent_mean, mean_propagation):
        rows, cols = dense.shape
        d = projector.shape[1]
        out = np.zeros((rows, d))
        for i in range(rows):
            for j in range(cols):
                value = dense[i, j] if mean_propagation else dense[i, j] - mean[j]
                for k in range(d):
                    out[i, k] += value * projector[j, k]
            if mean_propagation:
                for k in range(d):
                    out[i, k] -= latent_mean[k]
        return out

    @_njit(cache=True)
    def _nb_ytx_xtx(dense, mean, latent):
        rows, cols = dense.shape
        d = latent.shape[1]
        ytx = np.zeros((cols, d))
        xtx = np.zeros((d, d))
        for i in range(rows):
            for j in range(cols):
                centered = dense[i, j] - mean[j]
                for k in range(d):
                    ytx[j, k] += centered * latent[i, k]
            for k in range(d):
                for l in range(d):
                    xtx[k, l] += latent[i, k] * latent[i, l]
        return ytx, xtx

    @_njit(cache=True)
    def _nb_ss3(dense, mean, latent, components):
        rows, cols = dense.shape
        d = latent.shape[1]
        total = 0.0
        for i in range(rows):
            for k in range(d):
                projected = 0.0
                for j in range(cols):
                    projected += (dense[i, j] - mean[j]) * components[j, k]
                total += latent[i, k] * projected
        return total

    @_njit(cache=True)
    def _nb_error_parts(dense, mean, latent, components):
        rows, cols = dense.shape
        d = latent.shape[1]
        residual = np.zeros(cols)
        magnitude = np.zeros(cols)
        for i in range(rows):
            for j in range(cols):
                reconstruction = mean[j]
                for k in range(d):
                    reconstruction += latent[i, k] * components[j, k]
                residual[j] += abs(dense[i, j] - reconstruction)
                magnitude[j] += abs(dense[i, j])
        return residual, magnitude


class NumbaKernelBackend(FusedKernelBackend):
    """``@njit``-compiled dense kernels; sparse blocks take the fused path.

    Construction compiles (or loads from numba's on-disk cache, thanks to
    ``cache=True``) every kernel on tiny warm-up inputs, so the first real
    block never pays JIT latency inside a timed region.
    """

    name = "numba"

    def __init__(self, memo_limit: int = 256):
        if not NUMBA_AVAILABLE:
            raise ConfigError(
                "kernel backend 'numba' requires the numba package; "
                "install the 'numba' extra or use 'numpy'/'fused'"
            )
        super().__init__(memo_limit=memo_limit)
        self._warmup()

    def _warmup(self) -> None:  # pragma: no cover - requires the extra
        dense = np.ones((2, 3))
        mean = np.zeros(3)
        small = np.ones((3, 2))
        latent = _nb_latent(dense, mean, small, np.zeros(2), True)
        _nb_latent(dense, mean, small, np.zeros(2), False)
        _nb_ytx_xtx(dense, mean, latent)
        _nb_ss3(dense, mean, latent, small)
        _nb_error_parts(dense, mean, latent, small)

    def latent(self, block, mean, projector, latent_mean, mean_propagation):
        if is_sparse(block):
            return super().latent(
                block, mean, projector, latent_mean, mean_propagation
            )
        key = (
            id(block),
            bool(mean_propagation),
            projector.tobytes(),
            latent_mean.tobytes(),
            mean.tobytes(),
        )
        hit = self._latents.get(key, (block,))
        if hit is not None:
            return hit
        value = _nb_latent(
            np.ascontiguousarray(block, dtype=np.float64),
            mean, projector, latent_mean, bool(mean_propagation),
        )
        self._latents.put(key, (block,), value)
        return value

    def ytx_xtx(
        self, block, mean, projector, latent_mean, mean_propagation, latent=None
    ):
        if is_sparse(block):
            return super().ytx_xtx(
                block, mean, projector, latent_mean, mean_propagation, latent=latent
            )
        if latent is None:
            latent = self.latent(block, mean, projector, latent_mean, mean_propagation)
        return _nb_ytx_xtx(
            np.ascontiguousarray(block, dtype=np.float64), mean,
            np.ascontiguousarray(latent),
        )

    def ss3(
        self,
        block,
        mean,
        projector,
        latent_mean,
        components,
        mean_propagation,
        latent=None,
    ) -> float:
        if is_sparse(block):
            return super().ss3(
                block, mean, projector, latent_mean, components,
                mean_propagation, latent=latent,
            )
        if latent is None:
            latent = self.latent(block, mean, projector, latent_mean, mean_propagation)
        return float(
            _nb_ss3(
                np.ascontiguousarray(block, dtype=np.float64), mean,
                np.ascontiguousarray(latent), components,
            )
        )

    def error_parts(self, block, mean, components, ls_projector, mean_propagation):
        if is_sparse(block):
            return super().error_parts(
                block, mean, components, ls_projector, mean_propagation
            )
        # Both mean-propagation branches least-squares-project the *centered*
        # rows; the flag only changes how the numpy path avoids densifying,
        # which is moot once the block is already dense.
        dense = np.ascontiguousarray(block, dtype=np.float64)
        latent = _nb_latent(
            dense, mean, ls_projector, np.zeros(ls_projector.shape[1]), False
        )
        return _nb_error_parts(dense, mean, np.ascontiguousarray(latent), components)


# -- resolution -------------------------------------------------------------

_RESOLVED: dict[str, KernelBackend] = {}
_WARNED_NUMBA_FALLBACK = False


def resolve_kernel_backend(name: str = "numpy") -> KernelBackend:
    """Return the (process-wide, memoized) kernel backend named *name*.

    Raises:
        ConfigError: for an unknown name; the message lists valid choices.

    A request for ``numba`` on a machine without the package warns once per
    process and falls back to ``numpy``; callers stamp the *resolved*
    backend's ``.name`` into traces and BENCH provenance so a silent
    fallback is never mistaken for a compiled run.
    """
    global _WARNED_NUMBA_FALLBACK
    if name not in KERNEL_BACKEND_NAMES:
        raise ConfigError(
            f"unknown kernel backend {name!r}; valid choices: "
            f"{', '.join(KERNEL_BACKEND_NAMES)}"
        )
    backend = _RESOLVED.get(name)
    if backend is not None:
        return backend
    if name == "numba" and not NUMBA_AVAILABLE:
        if not _WARNED_NUMBA_FALLBACK:
            warnings.warn(
                "numba is not installed; kernel backend 'numba' falls back "
                "to 'numpy' (install the 'numba' extra for compiled kernels)",
                RuntimeWarning,
                stacklevel=2,
            )
            _WARNED_NUMBA_FALLBACK = True
        backend = resolve_kernel_backend("numpy")
        _RESOLVED["numba"] = backend
        return backend
    if name == "numpy":
        backend = NumpyKernelBackend()
    elif name == "fused":
        backend = FusedKernelBackend()
    else:
        backend = NumbaKernelBackend()
    _RESOLVED[name] = backend
    return backend


def kernel_backend_from_config(config: dict) -> KernelBackend:
    """The backend a mapper/partition closure should use for this job."""
    return resolve_kernel_backend(config.get("kernel_backend", "numpy"))


def clear_kernel_backends() -> None:
    """Drop memoized backend instances and their caches (test isolation)."""
    global _WARNED_NUMBA_FALLBACK
    for backend in _RESOLVED.values():
        backend.clear()
    _RESOLVED.clear()
    _WARNED_NUMBA_FALLBACK = False
    kernels.clear_densify_memo()
