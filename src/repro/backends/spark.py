"""sPCA-Spark: the backend of Algorithm 5, using broadcasts + accumulators.

The input matrix is parallelized once into a cached RDD; every job is a
single ``foreachPartition`` stage whose partial results flow back through
accumulators, "eliminating the need for reduce operations" (Section 4.2).
The YtX accumulator receives the *sparse* data part ``Y' X`` separately from
a small d-vector of latent column sums; the driver applies the dense mean
correction ``Ym (x) colsum(X)`` once, so the bytes shipped per task stay
proportional to the block's non-zeros -- the sparse-accumulator optimization
the paper credits with reducing O(D*d) to O(z*d).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backends.base import Backend
from repro.core.config import SPCAConfig
from repro.engine.serde import sizeof
from repro.engine.spark.context import Broadcast, SparkContext
from repro.jobs import kernels
from repro.linalg.blocks import Matrix, partition_rows
from repro.linalg.stats import sample_rows


def _add_maybe_sparse(total: np.ndarray, update) -> np.ndarray:
    """Accumulator add-op accepting dense or sparse matrix updates."""
    if sp.issparse(update):
        return total + np.asarray(update.todense())
    return total + update


class SparkBackend(Backend):
    """Runs each distributed sPCA job as one Spark stage."""

    def __init__(
        self,
        config: SPCAConfig,
        context: SparkContext | None = None,
        partitions_per_core: int = 1,
        records_per_partition: int = 1,
    ):
        super().__init__(config)
        if records_per_partition < 1:
            from repro.errors import InvalidPlanError

            raise InvalidPlanError(
                f"records_per_partition must be >= 1, got {records_per_partition}"
            )
        self.context = context or SparkContext()
        self.partitions_per_core = partitions_per_core
        self.records_per_partition = records_per_partition
        self._latent_rdd = None
        self._latent_key = None

    # -- Backend API -------------------------------------------------------

    def load(self, data: Matrix):
        num_partitions = self.context.cluster.total_cores * self.partitions_per_core
        blocks = partition_rows(data, num_partitions * self.records_per_partition)
        rdd = self.context.parallelize(
            [(block.start, block.data) for block in blocks],
            num_partitions=min(num_partitions, len(blocks)),
        )
        return rdd.cache()

    def _batched(self, partition) -> bool:
        """Whether a partition should take the stacked fast path."""
        return self.context.enable_batch and len(partition) > 1

    def column_means(self, rdd) -> np.ndarray:
        n_cols = rdd.first()[1].shape[1]
        sums = self.context.accumulator(np.zeros(n_cols))
        count = self.context.accumulator(0)

        def run(partition):
            kb = self.kernels
            if self._batched(partition):
                # One stacked kernel call and one accumulator update per
                # partition: fewer, larger updates is exactly the combiner
                # economy the paper's Section 4.2 argues for.
                stacked = kb.stack([block for _, block in partition])
                block_sums, rows = kb.sums(stacked)
                sums.add(block_sums)
                count.add(rows)
                return
            for _, block in partition:
                block_sums, rows = kb.sums(block)
                sums.add(block_sums)
                count.add(rows)

        self.context.run_job(rdd, run, name="meanJob")
        return sums.value / count.value

    def frobenius_centered(self, rdd, mean: np.ndarray) -> float:
        efficient = self.config.use_efficient_frobenius
        bc_mean = self.context.broadcast(mean)
        total = self.context.accumulator(0.0)

        def run(partition):
            kb = self.kernels
            if self._batched(partition):
                stacked = kb.stack([block for _, block in partition])
                total.add(kb.frobenius(stacked, bc_mean.value, efficient))
                return
            for _, block in partition:
                total.add(kb.frobenius(block, bc_mean.value, efficient))

        self.context.run_job(rdd, run, name="FnormJob")
        return float(total.value)

    def ytx_xtx(
        self,
        rdd,
        mean: np.ndarray,
        projector: np.ndarray,
        latent_mean: np.ndarray,
    ):
        mean_prop = self.config.use_mean_propagation
        d = projector.shape[1]
        n_cols = mean.shape[0]
        bc_projector = self.context.broadcast(projector)
        bc_mean = self.context.broadcast(mean)
        bc_latent_mean = self.context.broadcast(latent_mean)
        ytx_data = self.context.accumulator(np.zeros((n_cols, d)), _add_maybe_sparse)
        latent_colsum = self.context.accumulator(np.zeros(d))
        xtx_sum = self.context.accumulator(np.zeros((d, d)))

        latent_rdd = self._latent_for(rdd, bc_mean, bc_projector, bc_latent_mean)

        def run_with_latent(partition, latent_partition):
            if self._batched(partition):
                kb = self.kernels
                block = kb.stack([b for _, b in partition])
                latent = kb.stack_latents([x for _, x in latent_partition])
                self._accumulate_ytx(
                    block, latent, bc_projector.value, bc_mean.value,
                    bc_latent_mean.value, mean_prop, ytx_data, latent_colsum, xtx_sum,
                )
                return
            for (_, block), (_, latent) in zip(partition, latent_partition):
                self._accumulate_ytx(
                    block, latent, bc_projector.value, bc_mean.value,
                    bc_latent_mean.value, mean_prop, ytx_data, latent_colsum, xtx_sum,
                )

        def run(partition):
            kb = self.kernels
            if self._batched(partition):
                blocks = [block for _, block in partition]
                stacked = kb.stack(blocks)
                latent = kb.latent(
                    stacked, bc_mean.value, bc_projector.value,
                    bc_latent_mean.value, mean_prop,
                )
                self._accumulate_ytx(
                    stacked, latent, bc_projector.value, bc_mean.value,
                    bc_latent_mean.value, mean_prop, ytx_data, latent_colsum, xtx_sum,
                )
                return
            for _, block in partition:
                latent = kb.latent(
                    block, bc_mean.value, bc_projector.value,
                    bc_latent_mean.value, mean_prop,
                )
                self._accumulate_ytx(
                    block, latent, bc_projector.value, bc_mean.value,
                    bc_latent_mean.value, mean_prop, ytx_data, latent_colsum, xtx_sum,
                )

        if latent_rdd is not None:
            zipped = rdd.zip_partitions(latent_rdd, lambda a, b: [run_with_latent(a, b)])
            self.context.run_job(zipped, list, name="YtXJob")
        else:
            self.context.run_job(rdd, run, name="YtXJob")

        ytx = ytx_data.value
        if mean_prop:
            ytx = ytx - np.outer(mean, latent_colsum.value)
        self.context.driver.transient(sizeof(ytx) + sizeof(xtx_sum.value), "YtX/XtX")
        return ytx, xtx_sum.value

    def ss3(
        self,
        rdd,
        mean: np.ndarray,
        projector: np.ndarray,
        latent_mean: np.ndarray,
        components: np.ndarray,
    ) -> float:
        mean_prop = self.config.use_mean_propagation
        bc_mean = self.context.broadcast(mean)
        bc_projector = self.context.broadcast(projector)
        bc_latent_mean = self.context.broadcast(latent_mean)
        bc_components = self.context.broadcast(components)
        total = self.context.accumulator(0.0)
        latent_rdd = self._latent_for(rdd, bc_mean, bc_projector, bc_latent_mean)

        def partial(block, latent):
            return self.kernels.ss3(
                block, bc_mean.value, bc_projector.value, bc_latent_mean.value,
                bc_components.value, mean_prop, latent=latent,
            )

        def zipped_ss3(partition, latent_partition):
            if self._batched(partition):
                kb = self.kernels
                total.add(
                    partial(
                        kb.stack([b for _, b in partition]),
                        kb.stack_latents([x for _, x in latent_partition]),
                    )
                )
                return (None,)
            # One None marker per record, matching the historical byte
            # accounting of the per-record closure.
            return [
                total.add(partial(block, latent))
                for (_, block), (_, latent) in zip(partition, latent_partition)
            ]

        if latent_rdd is not None:
            zipped = rdd.zip_partitions(latent_rdd, zipped_ss3)
            self.context.run_job(zipped, list, name="ss3Job")
        else:
            def run_ss3(partition):
                if self._batched(partition):
                    total.add(partial(self.kernels.stack([b for _, b in partition]), None))
                    return
                for _, block in partition:
                    total.add(partial(block, None))

            self.context.run_job(rdd, run_ss3, name="ss3Job")
        # The per-iteration latent cache is invalid once C changes.
        self._drop_latent()
        return float(total.value)

    def reconstruction_error(
        self,
        rdd,
        mean: np.ndarray,
        components: np.ndarray,
        sample_fraction: float,
        rng,
    ) -> float:
        ls_projector = components @ np.linalg.inv(components.T @ components)
        bc_components = self.context.broadcast(components)
        bc_ls_projector = self.context.broadcast(ls_projector)
        bc_mean = self.context.broadcast(mean)
        residual = self.context.accumulator(np.zeros(mean.shape[0]))
        magnitude = self.context.accumulator(np.zeros(mean.shape[0]))
        seed = int(rng.integers(2**31))
        mean_prop = self.config.use_mean_propagation

        def run(split, partition):
            kb = self.kernels
            if sample_fraction >= 1.0 and self._batched(partition):
                # Sampling is seeded per record start row, so only the
                # unsampled path can stack the whole partition.
                stacked = kb.stack([block for _, block in partition])
                parts = kb.error_parts(
                    stacked, bc_mean.value, bc_components.value,
                    bc_ls_projector.value, mean_prop,
                )
                residual.add(parts[0])
                magnitude.add(parts[1])
                return ()
            for start, block in partition:
                if sample_fraction < 1.0:
                    block = sample_rows(
                        block, sample_fraction, np.random.default_rng((seed, start))
                    )
                parts = kb.error_parts(
                    block, bc_mean.value, bc_components.value,
                    bc_ls_projector.value, mean_prop,
                )
                residual.add(parts[0])
                magnitude.add(parts[1])
            return ()

        mapped = rdd.map_partitions_with_index(run)
        self.context.run_job(mapped, list, name="errorJob")
        return kernels.error_from_colsums(residual.value, magnitude.value)

    # -- internals ---------------------------------------------------------

    def _accumulate_ytx(
        self, block, latent, projector, mean, latent_mean, mean_prop,
        ytx_data, latent_colsum, xtx_sum,
    ) -> None:
        if mean_prop:
            # Ship the sparse data product; the driver applies the dense
            # mean correction once.  Keeping the partial sparse is the
            # O(D*d) -> O(z*d) accumulator optimization of Section 4.2.
            if sp.issparse(block):
                data_product = (block.T @ sp.csr_matrix(latent)).tocsr()
                dense_bytes = data_product.shape[0] * data_product.shape[1] * 8
                if sizeof(data_product) >= dense_bytes:
                    # Saturated block (z ~ D): dense is the smaller encoding.
                    data_product = np.asarray(data_product.todense())
            else:
                data_product = block.T @ latent
            ytx_data.add(data_product)
            latent_colsum.add(np.asarray(latent.sum(axis=0)).ravel())
        else:
            ytx, _ = self.kernels.ytx_xtx(
                block, mean, projector, latent_mean, False, latent=latent
            )
            ytx_data.add(ytx)
        xtx_sum.add(latent.T @ latent)

    def _latent_for(
        self,
        rdd,
        bc_mean: Broadcast,
        bc_projector: Broadcast,
        bc_latent_mean: Broadcast,
    ):
        """Materialized-X ablation: cache X as its own RDD and reuse it.

        Receives the model matrices as :class:`Broadcast` handles so the map
        closure ships a node-wide reference rather than a per-task copy
        (Section 4.3 -- and what DF001 enforces).
        """
        if self.config.use_x_recomputation:
            return None
        key = bc_projector.value.tobytes()
        if self._latent_key != key:
            mean_prop = self.config.use_mean_propagation
            self._drop_latent()
            self._latent_rdd = rdd.map(
                lambda record: (
                    record[0],
                    self.kernels.latent(
                        record[1], bc_mean.value, bc_projector.value,
                        bc_latent_mean.value, mean_prop,
                    ),
                )
            ).cache()
            self._latent_rdd.count()  # force materialization into the cache
            # The unoptimized implementation stored X through distributed
            # storage between jobs (Section 3.2); charge that round trip --
            # one write plus one read per consuming job -- as an extra
            # stage, so the ablation reflects the real dataflow cost rather
            # than a free in-memory cache.
            from repro.engine.metrics import JobStats
            from repro.obs import EventTrace, record_job_stats

            latent_bytes = sum(
                sizeof(self._latent_rdd._iterator(split))
                for split in range(self._latent_rdd.num_partitions)
            )
            cost = self.context.cost_model
            record_job_stats(
                self.context.metrics,
                JobStats(
                    name="XJob",
                    output_bytes=latent_bytes,
                    output_is_intermediate=True,
                    hdfs_write_bytes=latent_bytes,
                    hdfs_read_bytes=2 * latent_bytes,
                    sim_seconds=(
                        cost.per_job_overhead_s + cost.disk_seconds(3 * latent_bytes)
                    ),
                ),
                phase_name="X round trip",
                events=[
                    EventTrace("hdfs_write", 0.0, {"bytes": latent_bytes}),
                    EventTrace("hdfs_read", 0.0, {"bytes": 2 * latent_bytes}),
                ],
            )
            self._latent_key = key
        return self._latent_rdd

    def _drop_latent(self) -> None:
        if self._latent_rdd is not None:
            self._latent_rdd.unpersist()
        self._latent_rdd = None
        self._latent_key = None

    # -- checkpointing -----------------------------------------------------

    def charge_checkpoint(self, nbytes: int, kind: str = "write") -> None:
        from repro.engine.metrics import JobStats
        from repro.obs import record_job_stats

        stats = JobStats(name="checkpointJob")
        if kind == "write":
            stats.hdfs_write_bytes = nbytes
        else:
            stats.hdfs_read_bytes = nbytes
        stats.sim_seconds = self.context.cost_model.disk_seconds(nbytes)
        record_job_stats(
            self.context.metrics, stats, phase_name=f"checkpoint {kind}"
        )

    # -- metrics -----------------------------------------------------------

    @property
    def simulated_seconds(self) -> float:
        # errorJob is offline instrumentation (the paper measures accuracy
        # outside the algorithm's running time), so it is excluded.
        return sum(
            job.sim_seconds
            for job in self.context.metrics.jobs
            if job.name != "errorJob"
        )

    @property
    def intermediate_bytes(self) -> int:
        return sum(
            job.intermediate_bytes
            for job in self.context.metrics.jobs
            if job.name != "errorJob"
        )

    def reset_metrics(self) -> None:
        self.context.metrics.reset()
