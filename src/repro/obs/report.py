"""Aggregated views over a trace: per-job, per-phase, per-iteration tables.

These are the trace-side counterparts of the paper's evaluation artifacts:

- the per-job table is Table 2's running-time column plus Section 5.2's
  intermediate-data column, one row per distributed job;
- the per-phase table splits each platform's time the way the follow-up
  analysis paper does (job init vs. map compute vs. shuffle vs. reduce);
- the per-iteration table is the accuracy-vs-cost curve of Figures 4-5.

:func:`reconcile` is the trust anchor: it checks that everything derived
from the trace agrees *exactly* with the engine's own
:class:`~repro.engine.metrics.EngineMetrics`, so the pretty timeline can
never drift from the accounting the benchmarks report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.obs.export import TraceData

_BYTE_ATTRS = (
    "map_output_bytes",
    "shuffle_bytes",
    "hdfs_read_bytes",
    "hdfs_write_bytes",
    "driver_result_bytes",
    "broadcast_bytes",
    "intermediate_bytes",
)


@dataclass
class TraceSummary:
    """Aggregates computed from one trace."""

    n_jobs: int = 0
    total_sim_seconds: float = 0.0
    totals: dict[str, int] = field(default_factory=dict)
    total_task_retries: int = 0
    by_job_name: "OrderedDict[str, dict[str, Any]]" = field(default_factory=OrderedDict)
    by_phase_name: "OrderedDict[str, dict[str, Any]]" = field(default_factory=OrderedDict)


def job_spans(trace: TraceData) -> list[Any]:
    return [span for span in trace.spans if span.kind == "job"]


def summarize(trace: TraceData) -> TraceSummary:
    """Aggregate a trace into per-job-name and per-phase-name totals."""
    summary = TraceSummary(totals={key: 0 for key in _BYTE_ATTRS})
    for span in job_spans(trace):
        summary.n_jobs += 1
        summary.total_sim_seconds += span.dur
        summary.total_task_retries += int(span.attrs.get("task_retries", 0))
        for key in _BYTE_ATTRS:
            summary.totals[key] += int(span.attrs.get(key, 0))
        row = summary.by_job_name.setdefault(
            span.name,
            {"runs": 0, "sim_seconds": 0.0, "task_retries": 0,
             **{key: 0 for key in _BYTE_ATTRS}},
        )
        row["runs"] += 1
        row["sim_seconds"] += span.dur
        row["task_retries"] += int(span.attrs.get("task_retries", 0))
        for key in _BYTE_ATTRS:
            row[key] += int(span.attrs.get(key, 0))
    for span in trace.spans:
        if span.kind != "phase":
            continue
        row = summary.by_phase_name.setdefault(
            span.name, {"runs": 0, "sim_seconds": 0.0, "tasks": 0}
        )
        row["runs"] += 1
        row["sim_seconds"] += span.dur
    task_counts: dict[int, int] = {}
    for span in trace.spans:
        if span.kind == "task" and span.parent_id is not None:
            task_counts[span.parent_id] = task_counts.get(span.parent_id, 0) + 1
    for span in trace.spans:
        if span.kind == "phase" and span.span_id in task_counts:
            summary.by_phase_name[span.name]["tasks"] += task_counts[span.span_id]
    return summary


def iteration_groups(trace: TraceData) -> "OrderedDict[int | None, list[Any]]":
    """Iteration spans grouped by their parent (one group per run/fit)."""
    groups: OrderedDict[int | None, list[Any]] = OrderedDict()
    for span in trace.spans:
        if span.kind == "iteration":
            groups.setdefault(span.parent_id, []).append(span)
    return groups


def reconcile(trace: TraceData, metrics: Any) -> list[str]:
    """Cross-check trace-derived totals against an ``EngineMetrics``.

    Returns a list of human-readable discrepancies; an empty list means the
    trace and the engine's own accounting agree exactly (float-exact
    simulated durations, integer-exact byte counts).
    """
    problems: list[str] = []
    spans = job_spans(trace)
    jobs = list(metrics.jobs)
    if len(spans) != len(jobs):
        problems.append(
            f"trace has {len(spans)} job spans but metrics recorded {len(jobs)} jobs"
        )
        return problems
    for index, (span, stats) in enumerate(zip(spans, jobs)):
        where = f"job #{index} ({stats.name})"
        if span.name != stats.name:
            problems.append(f"{where}: trace span is named {span.name!r}")
        if span.dur != stats.sim_seconds:
            problems.append(
                f"{where}: span duration {span.dur!r} != sim_seconds {stats.sim_seconds!r}"
            )
        for key in _BYTE_ATTRS:
            expected = int(getattr(stats, key))
            got = int(span.attrs.get(key, 0))
            if got != expected:
                problems.append(f"{where}: {key} {got} != {expected}")
        if int(span.attrs.get("task_retries", 0)) != int(stats.task_retries):
            problems.append(
                f"{where}: task_retries {span.attrs.get('task_retries')} "
                f"!= {stats.task_retries}"
            )
    total = sum(span.dur for span in spans)
    if total != metrics.total_sim_seconds:
        problems.append(
            f"total sim seconds {total!r} != {metrics.total_sim_seconds!r}"
        )
    shuffle = sum(int(span.attrs.get("shuffle_bytes", 0)) for span in spans)
    if shuffle != metrics.total_shuffle_bytes:
        problems.append(f"total shuffle bytes {shuffle} != {metrics.total_shuffle_bytes}")
    intermediate = sum(int(span.attrs.get("intermediate_bytes", 0)) for span in spans)
    if intermediate != metrics.total_intermediate_bytes:
        problems.append(
            f"total intermediate bytes {intermediate} "
            f"!= {metrics.total_intermediate_bytes}"
        )
    return problems


# -- text rendering ----------------------------------------------------------


def format_job_table(summary: TraceSummary) -> str:
    """Per-job-name table: the trace-side Table 2 / Section 5.2 view."""
    lines = [
        f"{'job':<22}{'runs':>6}{'sim s':>12}{'shuffle B':>14}"
        f"{'interm. B':>14}{'hdfs r B':>12}{'hdfs w B':>12}{'bcast B':>12}{'retry':>7}"
    ]
    for name, row in summary.by_job_name.items():
        lines.append(
            f"{name:<22}{row['runs']:>6}{row['sim_seconds']:>12.3f}"
            f"{row['shuffle_bytes']:>14}{row['intermediate_bytes']:>14}"
            f"{row['hdfs_read_bytes']:>12}{row['hdfs_write_bytes']:>12}"
            f"{row['broadcast_bytes']:>12}{row['task_retries']:>7}"
        )
    totals = summary.totals
    lines.append(
        f"{'TOTAL':<22}{summary.n_jobs:>6}{summary.total_sim_seconds:>12.3f}"
        f"{totals['shuffle_bytes']:>14}{totals['intermediate_bytes']:>14}"
        f"{totals['hdfs_read_bytes']:>12}{totals['hdfs_write_bytes']:>12}"
        f"{totals['broadcast_bytes']:>12}{summary.total_task_retries:>7}"
    )
    return "\n".join(lines)


def format_phase_table(summary: TraceSummary) -> str:
    """Where the simulated time goes, split by timeline phase."""
    lines = [f"{'phase':<22}{'runs':>6}{'tasks':>8}{'sim s':>12}{'share':>8}"]
    total = sum(row["sim_seconds"] for row in summary.by_phase_name.values())
    for name, row in sorted(
        summary.by_phase_name.items(), key=lambda item: -item[1]["sim_seconds"]
    ):
        share = row["sim_seconds"] / total if total else 0.0
        lines.append(
            f"{name:<22}{row['runs']:>6}{row['tasks']:>8}"
            f"{row['sim_seconds']:>12.3f}{share:>8.1%}"
        )
    return "\n".join(lines)


def format_iteration_table(trace: TraceData) -> str:
    """Per-iteration convergence telemetry (the Figure 4/5 curve, as text)."""
    groups = iteration_groups(trace)
    if not groups:
        return "(no iteration spans in trace)"
    blocks: list[str] = []
    run_names = {
        span.span_id: span.name for span in trace.spans if span.kind == "run"
    }
    for parent_id, iterations in groups.items():
        title = run_names.get(parent_id, "(standalone loop)") if parent_id else "(standalone loop)"
        lines = [
            f"-- {title}",
            f"{'iter':>5}{'sim s':>12}{'objective':>14}{'conv delta':>12}"
            f"{'subsp delta':>12}{'accuracy':>10}{'interm. B':>14}",
        ]
        for span in iterations:
            attrs = span.attrs
            accuracy = attrs.get("accuracy")
            lines.append(
                f"{attrs.get('index', '?'):>5}{span.t0 + span.dur:>12.3f}"
                f"{_num(attrs.get('objective')):>14}{_num(attrs.get('convergence_delta')):>12}"
                f"{_num(attrs.get('subspace_delta')):>12}"
                f"{_num(accuracy):>10}{attrs.get('intermediate_bytes', 0):>14}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _num(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value):.5g}"
