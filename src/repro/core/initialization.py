"""Initialization of C and ss: random Normal, or smart-guess (sPCA-SG).

The smart-guess strategy of Section 5.2 exploits a property the paper calls
out explicitly: sPCA's random state is a small ``D x d`` matrix independent of
the number of rows N, so the algorithm can first be run on a small random
sample of rows and the resulting ``(C, ss)`` fed back as the starting point
for the full dataset.  (Mahout-PCA cannot do this because its random matrix
must have N rows.)
"""

from __future__ import annotations

import numpy as np

from repro.linalg.blocks import Matrix
from repro.linalg.stats import sample_rows


def random_initialization(
    n_features: int, n_components: int, rng: np.random.Generator
) -> tuple[np.ndarray, float]:
    """Draw C ~ Normal(0, 1) of shape (D, d) and a positive random ss.

    Mirrors Algorithm 1 lines 1-2 (``normrnd``).  ss is the absolute value of
    a standard Normal draw, floored away from zero so the first ``M`` matrix
    is well conditioned.
    """
    components = rng.normal(size=(n_features, n_components))
    noise_variance = max(abs(float(rng.normal())), 1e-2)
    return components, noise_variance


def smart_guess_initialization(
    data: Matrix,
    fit_sample,
    fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, float]:
    """Warm-start (C, ss) by fitting on a random row sample (sPCA-SG).

    Args:
        data: the full input matrix.
        fit_sample: callable ``(sample_matrix) -> (components, noise_variance)``
            that runs a short PPCA fit on the sample; injected so this module
            does not depend on the driver.
        fraction: fraction of rows to sample.
        rng: random generator used for the row sample.

    Returns:
        The components and noise variance fitted on the sample.
    """
    sample = sample_rows(data, fraction, rng)
    return fit_sample(sample)
