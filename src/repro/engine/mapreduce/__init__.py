"""A Hadoop-MapReduce-style execution engine, simulated in one process.

Programs are written against the classic API -- :class:`Mapper`,
:class:`Combiner`, :class:`Reducer`, each with ``setup``/``cleanup`` hooks so
the *stateful combiner* pattern of Section 4.1 works exactly as in the paper
-- and submitted to a :class:`MapReduceRuntime` that executes them over
input splits, shuffles map output by key, and accounts every byte moved.
"""

from repro.engine.mapreduce.api import (
    Combiner,
    IdentityMapper,
    MapReduceJob,
    Mapper,
    Reducer,
    SumReducer,
    TaskContext,
)
from repro.engine.mapreduce.chain import JobChain
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.engine.mapreduce.runtime import MapReduceRuntime

__all__ = [
    "Combiner",
    "IdentityMapper",
    "InMemoryHDFS",
    "JobChain",
    "MapReduceJob",
    "MapReduceRuntime",
    "Mapper",
    "Reducer",
    "SumReducer",
    "TaskContext",
]
