"""Workload generators: sparse text matrices, NMR spectra, SIFT features."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError


def bag_of_words(
    n_docs: int,
    vocabulary: int,
    words_per_doc: float = 8.0,
    topic_rank: int = 16,
    zipf_exponent: float = 1.1,
    n_stopwords: int = 40,
    stopword_max_p: float = 0.9,
    seed: int = 0,
) -> sp.csr_matrix:
    """Binary document-term matrix with Zipfian words and topic structure.

    Models the Tweets and Bio-Text matrices: each row is a document, each
    column a vocabulary word, entries are 1 when the word occurs (the paper's
    matrices are binary).  Two ingredients give the matrix the structure real
    text has:

    - a **stopword head**: the first ``n_stopwords`` columns are extremely
      frequent words ("the", "and", ...) appearing independently with
      probabilities decaying from ``stopword_max_p``.  These high-mass
      columns dominate the matrix 1-norm, which is why a rank-d PCA can
      reconstruct real text matrices to high accuracy;
    - a **topical tail**: the remaining columns follow a Zipfian marginal
      reweighted by a small number of concentrated latent topics, giving the
      low-rank co-occurrence structure PCA extracts.

    Args:
        n_docs: number of rows N.
        vocabulary: number of columns D.
        words_per_doc: mean distinct tail words per document (tweets ~ 8,
            abstracts ~ 40).
        topic_rank: number of latent topics mixing the word distributions.
        zipf_exponent: power-law exponent of the tail-word marginal.
        n_stopwords: size of the high-frequency head (capped at D/4).
        stopword_max_p: occurrence probability of the most frequent word.
        seed: generator seed.

    Returns:
        CSR matrix of shape (n_docs, vocabulary) with 0/1 entries.
    """
    if n_docs < 1 or vocabulary < 1:
        raise ShapeError(f"need positive sizes, got {(n_docs, vocabulary)}")
    if words_per_doc <= 0:
        raise ShapeError(f"words_per_doc must be positive, got {words_per_doc}")
    rng = np.random.default_rng(seed)

    n_head = min(max(n_stopwords, 0), vocabulary // 4)
    doc_topics = rng.integers(topic_rank, size=n_docs)
    head = sp.csr_matrix((n_docs, 0))
    if n_head:
        # Head-word probabilities are *topic-modulated* (U-shaped Beta
        # boost), so the dominant columns carry correlated low-rank
        # structure that EM has to discover over a few iterations instead
        # of being explained by the column means alone.
        base_p = stopword_max_p / np.sqrt(np.arange(1, n_head + 1))
        topic_boost = rng.beta(0.4, 0.4, size=(topic_rank, n_head))
        head_p = np.clip(base_p * topic_boost[doc_topics] * 2.0, 0.0, 0.95)
        head = sp.csr_matrix(
            (rng.random((n_docs, n_head)) < head_p).astype(np.float64)
        )

    tail_vocab = vocabulary - n_head
    # Zipfian word marginal shared by all topics.
    marginal = 1.0 / np.arange(1, tail_vocab + 1) ** zipf_exponent
    marginal /= marginal.sum()
    # Concentrated per-topic reweighting (small gamma shape -> spiky topics).
    topic_boost = rng.gamma(0.1, size=(topic_rank, tail_vocab))
    topic_dists = marginal * topic_boost
    topic_dists /= topic_dists.sum(axis=1, keepdims=True)
    lengths = rng.poisson(words_per_doc, size=n_docs)
    lengths = np.clip(lengths, 1, tail_vocab)

    rows = []
    cols = []
    for doc, (topic, length) in enumerate(zip(doc_topics, lengths)):
        words = rng.choice(tail_vocab, size=length, replace=True, p=topic_dists[topic])
        unique_words = np.unique(words)
        rows.append(np.full(unique_words.shape[0], doc, dtype=np.int64))
        cols.append(unique_words)
    row_index = np.concatenate(rows)
    col_index = np.concatenate(cols)
    values = np.ones(row_index.shape[0])
    tail = sp.csr_matrix(
        (values, (row_index, col_index)), shape=(n_docs, tail_vocab)
    )
    return sp.hstack([head, tail]).tocsr()


def nmr_spectra(
    n_patients: int,
    n_frequencies: int,
    n_metabolites: int = 12,
    peaks_per_metabolite: int = 4,
    noise: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Dense NMR-like spectra: sums of Lorentzian peaks (the Diabetes set).

    Each metabolite contributes a fixed set of Lorentzian resonance peaks;
    each patient has individual metabolite concentrations, so the matrix is
    approximately rank ``n_metabolites`` plus noise -- the structure that
    makes PCA meaningful on metabolomics data.

    Returns:
        Dense (n_patients, n_frequencies) array of non-negative magnitudes.
    """
    if n_patients < 1 or n_frequencies < 1:
        raise ShapeError(f"need positive sizes, got {(n_patients, n_frequencies)}")
    rng = np.random.default_rng(seed)
    frequencies = np.linspace(0.0, 10.0, n_frequencies)

    signatures = np.zeros((n_metabolites, n_frequencies))
    for m in range(n_metabolites):
        centers = rng.uniform(0.5, 9.5, size=peaks_per_metabolite)
        widths = rng.uniform(0.01, 0.08, size=peaks_per_metabolite)
        heights = rng.uniform(0.3, 1.0, size=peaks_per_metabolite)
        for center, width, height in zip(centers, widths, heights):
            signatures[m] += height * width**2 / ((frequencies - center) ** 2 + width**2)

    concentrations = rng.lognormal(mean=0.0, sigma=0.6, size=(n_patients, n_metabolites))
    spectra = concentrations @ signatures
    spectra += noise * rng.normal(size=spectra.shape)
    return np.maximum(spectra, 0.0)


def sift_features(
    n_vectors: int,
    n_dims: int = 128,
    n_clusters: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Dense SIFT-like descriptors (the Images dataset).

    SIFT descriptors are 128-dimensional non-negative histograms that
    cluster around recurring visual patterns; we draw them from a Gaussian
    mixture, clip to non-negative, and normalize to the usual 0-512 range.

    Returns:
        Dense (n_vectors, n_dims) float array.
    """
    if n_vectors < 1 or n_dims < 1:
        raise ShapeError(f"need positive sizes, got {(n_vectors, n_dims)}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 256.0, size=(n_clusters, n_dims))
    assignment = rng.integers(n_clusters, size=n_vectors)
    vectors = centers[assignment] + 32.0 * rng.normal(size=(n_vectors, n_dims))
    return np.clip(vectors, 0.0, 512.0)


def lowrank_dense(
    n_rows: int,
    n_cols: int,
    rank: int,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Generic low-rank-plus-noise matrix with a decaying spectrum.

    The workhorse for correctness tests and ablation microbenchmarks: the
    top *rank* singular values decay linearly, everything below is noise.
    """
    if rank > min(n_rows, n_cols):
        raise ShapeError(
            f"rank={rank} exceeds min(n_rows, n_cols)={min(n_rows, n_cols)}"
        )
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n_rows, rank)) * np.sqrt(np.arange(rank, 0, -1))
    loadings = rng.normal(size=(rank, n_cols))
    data = factors @ loadings + noise * rng.normal(size=(n_rows, n_cols))
    return data + rng.normal(size=n_cols)
