"""Trace exporters and loaders: Chrome trace-event JSON and JSONL.

The Chrome format (``{"traceEvents": [...]}``) loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  The **simulated clock**
is used as the trace clock -- ``ts`` is simulated microseconds -- so the
timeline shows the cluster's parallelism (one Perfetto track per execution
slot) rather than the single-process simulator's sequential wall clock.

Both formats embed the full-precision span fields in each event's ``args``,
so a written trace loads back bit-exactly (``ts``/``dur`` alone would lose
precision to microsecond rounding) and the reconciliation check against
:class:`repro.engine.metrics.EngineMetrics` keeps holding after a round
trip through disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.tracer import EventRecord, SpanRecord, Tracer

JSONL_SCHEMA = "repro.obs/1"

_PID = 1
_DRIVER_TID = 0


@dataclass
class TraceData:
    """A loaded or snapshotted trace: plain span/event record lists."""

    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceData":
        return cls(spans=list(tracer.spans), events=list(tracer.events))


def _span_args(span: SpanRecord) -> dict[str, Any]:
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "t0": span.t0,
        "dur": span.dur,
        "wall_t0": span.wall_t0,
        "wall_dur": span.wall_dur,
        "track": span.track,
        "attrs": span.attrs,
    }


def to_chrome(trace: TraceData) -> dict[str, Any]:
    """Render *trace* as a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": _DRIVER_TID, "name": "process_name",
            "args": {"name": "simulated cluster (sim-time clock)"},
        },
        {
            "ph": "M", "pid": _PID, "tid": _DRIVER_TID, "name": "thread_name",
            "args": {"name": "driver"},
        },
    ]
    slots = sorted({span.track for span in trace.spans if span.track is not None})
    for slot in slots:
        events.append(
            {
                "ph": "M", "pid": _PID, "tid": slot + 1, "name": "thread_name",
                "args": {"name": f"slot {slot}"},
            }
        )
    for span in trace.spans:
        tid = _DRIVER_TID if span.track is None else span.track + 1
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": span.dur * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": _span_args(span),
            }
        )
    intermediate_total = 0
    for span in trace.spans:
        if span.kind != "job":
            continue
        intermediate_total += int(span.attrs.get("intermediate_bytes", 0))
        events.append(
            {
                "name": "intermediate bytes",
                "cat": "counters",
                "ph": "C",
                "ts": (span.t0 + span.dur) * 1e6,
                "pid": _PID,
                "tid": _DRIVER_TID,
                "args": {"cumulative": intermediate_total},
            }
        )
    for event in trace.events:
        events.append(
            {
                "name": event.type,
                "cat": "event",
                "ph": "i",
                "ts": event.t * 1e6,
                "pid": _PID,
                "tid": _DRIVER_TID,
                "s": "p",
                "args": {
                    "event_id": event.event_id,
                    "parent_id": event.parent_id,
                    "type": event.type,
                    "t": event.t,
                    "wall_t": event.wall_t,
                    "attrs": event.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl_lines(trace: TraceData) -> list[str]:
    """Render *trace* as JSONL lines (header + one record per line)."""
    lines = [json.dumps({"rec": "header", "schema": JSONL_SCHEMA,
                         "spans": len(trace.spans), "events": len(trace.events)})]
    for span in trace.spans:
        payload = {"rec": "span", "name": span.name}
        payload.update(_span_args(span))
        lines.append(json.dumps(payload))
    for event in trace.events:
        lines.append(
            json.dumps(
                {
                    "rec": "event",
                    "event_id": event.event_id,
                    "parent_id": event.parent_id,
                    "type": event.type,
                    "t": event.t,
                    "wall_t": event.wall_t,
                    "attrs": event.attrs,
                }
            )
        )
    return lines


def _span_from_payload(payload: dict[str, Any], name: str) -> SpanRecord:
    return SpanRecord(
        span_id=payload["span_id"],
        parent_id=payload["parent_id"],
        kind=payload["kind"],
        name=name,
        t0=payload["t0"],
        dur=payload["dur"],
        wall_t0=payload["wall_t0"],
        wall_dur=payload["wall_dur"],
        track=payload.get("track"),
        attrs=payload.get("attrs") or {},
    )


def _event_from_payload(payload: dict[str, Any]) -> EventRecord:
    return EventRecord(
        event_id=payload["event_id"],
        parent_id=payload["parent_id"],
        type=payload["type"],
        t=payload["t"],
        wall_t=payload["wall_t"],
        attrs=payload.get("attrs") or {},
    )


def from_chrome(document: dict[str, Any]) -> TraceData:
    """Reconstruct a :class:`TraceData` from a Chrome trace-event object."""
    trace = TraceData()
    for entry in document.get("traceEvents", []):
        args = entry.get("args") or {}
        if entry.get("ph") == "X" and "span_id" in args:
            trace.spans.append(_span_from_payload(args, entry.get("name", "")))
        elif entry.get("ph") == "i" and "event_id" in args:
            trace.events.append(_event_from_payload(args))
    trace.spans.sort(key=lambda span: span.span_id)
    trace.events.sort(key=lambda event: event.event_id)
    return trace


def from_jsonl_lines(lines: list[str], strict: bool = True) -> TraceData:
    """Reconstruct a :class:`TraceData` from JSONL lines.

    Records are sorted back into allocation order, so a file written by the
    streaming :class:`JsonlTraceWriter` (span-close order, events
    interleaved) loads identically to a buffered one.  With
    ``strict=False``, malformed or truncated lines are skipped instead of
    raising -- the salvage path ``repro-spca report`` uses.
    """
    trace = TraceData()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            rec = payload.get("rec")
            if rec == "span":
                trace.spans.append(_span_from_payload(payload, payload.get("name", "")))
            elif rec == "event":
                trace.events.append(_event_from_payload(payload))
        except (ValueError, KeyError, TypeError):
            if strict:
                raise
    trace.spans.sort(key=lambda span: span.span_id)
    trace.events.sort(key=lambda event: event.event_id)
    return trace


def write_trace(trace: TraceData | Tracer, path: str | Path) -> Path:
    """Write *trace* to *path*; ``.jsonl`` selects JSONL, anything else Chrome."""
    if isinstance(trace, Tracer):
        trace = TraceData.from_tracer(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".jsonl":
        path.write_text("\n".join(to_jsonl_lines(trace)) + "\n")
    else:
        path.write_text(json.dumps(to_chrome(trace), indent=1))
    return path


def load_trace(path: str | Path) -> TraceData:
    """Load a trace file written by :func:`write_trace` (either format)."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        return from_chrome(json.loads(text))
    return from_jsonl_lines(text.splitlines())


def load_trace_lenient(path: str | Path) -> tuple[TraceData, list[str]]:
    """Best-effort trace load: salvage what a truncated/empty file holds.

    Returns the recovered trace plus human-readable warnings describing
    what was wrong (empty file, truncated JSON document, skipped lines, no
    complete ``run`` root span).  Never raises on malformed content -- the
    degradation path behind ``repro-spca report``.
    """
    warnings: list[str] = []
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return TraceData(), [f"{path}: trace file is empty"]
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        try:
            trace = from_chrome(json.loads(text))
        except ValueError:
            trace = _salvage_chrome(text)
            warnings.append(
                f"{path}: Chrome trace JSON is truncated or malformed; "
                f"salvaged {len(trace.spans)} spans and {len(trace.events)} events"
            )
    else:
        lines = text.splitlines()
        trace = from_jsonl_lines(lines, strict=False)
        complete = from_jsonl_lines_count(lines)
        if complete < len([line for line in lines if line.strip()]):
            warnings.append(
                f"{path}: skipped {len([li for li in lines if li.strip()]) - complete} "
                "malformed JSONL line(s) (truncated write?)"
            )
    if trace.spans and not any(span.kind == "run" for span in trace.spans):
        warnings.append(
            f"{path}: no complete 'run' root span -- the traced fit may have "
            "been killed mid-flight; totals below cover the recorded jobs only"
        )
    return trace, warnings


def from_jsonl_lines_count(lines: list[str]) -> int:
    """How many non-empty lines parse cleanly as JSON (for salvage warnings)."""
    parsed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
            parsed += 1
        except ValueError:
            pass
    return parsed


def _salvage_chrome(text: str) -> TraceData:
    """Recover leading complete entries from a truncated Chrome trace file."""
    start = text.find('"traceEvents"')
    if start == -1:
        return TraceData()
    start = text.find("[", start)
    if start == -1:
        return TraceData()
    decoder = json.JSONDecoder()
    entries: list[dict[str, Any]] = []
    position = start + 1
    length = len(text)
    while position < length:
        while position < length and text[position] in " \t\r\n,":
            position += 1
        if position >= length or text[position] == "]":
            break
        try:
            entry, position = decoder.raw_decode(text, position)
        except ValueError:
            break
        if isinstance(entry, dict):
            entries.append(entry)
    return from_chrome({"traceEvents": entries})


class JsonlTraceWriter:
    """Tracer listener streaming records to disk as they finish.

    Each record is written exactly once -- driver-side spans at close,
    driver-side events as they fire, and a recorded job's subtree in one
    batch -- and the file is flushed after every top-level span close and
    every job, so a killed run leaves a loadable prefix on disk and the
    driver never buffers the trace (pair with ``Tracer(retain=False)``).
    Record order is completion order; :func:`from_jsonl_lines` re-sorts by
    id on load, so round-trips match the buffered writer.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w")
        self._spans = 0
        self._events = 0
        self._file.write(
            json.dumps(
                {"rec": "header", "schema": JSONL_SCHEMA, "streaming": True}
            )
            + "\n"
        )

    # -- listener hooks ---------------------------------------------------

    def on_span_end(self, span: SpanRecord) -> None:
        self._write_span(span)
        if span.parent_id is None:
            self._file.flush()

    def on_event(self, event: EventRecord) -> None:
        self._write_event(event)

    def on_job(self, spans: list[SpanRecord], events: list[EventRecord]) -> None:
        for span in spans:
            self._write_span(span)
        for event in events:
            self._write_event(event)
        self._file.flush()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> Path:
        """Write the footer (authoritative counts) and close the file."""
        if not self._file.closed:
            self._file.write(
                json.dumps(
                    {"rec": "footer", "spans": self._spans, "events": self._events}
                )
                + "\n"
            )
            self._file.close()
        return self.path

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _write_span(self, span: SpanRecord) -> None:
        payload = {"rec": "span", "name": span.name}
        payload.update(_span_args(span))
        self._file.write(json.dumps(payload) + "\n")
        self._spans += 1

    def _write_event(self, event: EventRecord) -> None:
        self._file.write(
            json.dumps(
                {
                    "rec": "event",
                    "event_id": event.event_id,
                    "parent_id": event.parent_id,
                    "type": event.type,
                    "t": event.t,
                    "wall_t": event.wall_t,
                    "attrs": event.attrs,
                }
            )
            + "\n"
        )
        self._events += 1
