"""The fitted PCA model returned by PPCA / sPCA."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.linalg.centered import centered_times


@dataclass
class PCAModel:
    """Result of a PPCA/sPCA fit.

    PPCA recovers the principal *subspace*: the columns of ``components``
    span the same space as the top-d eigenvectors of the sample covariance,
    up to an arbitrary rotation (Tipping & Bishop).  :attr:`basis` gives an
    orthonormal basis of that subspace; :meth:`principal_directions` rotates
    it into the actual eigenvector directions using the data.

    Attributes:
        components: the ``D x d`` transformation matrix C.
        mean: the column mean ``Ym`` of the training data, length D.
        noise_variance: the fitted residual variance ``ss``.
        n_samples: number of training rows N.
    """

    components: np.ndarray
    mean: np.ndarray
    noise_variance: float
    n_samples: int
    _basis: np.ndarray | None = field(default=None, repr=False)
    _posterior_projector: np.ndarray | None = field(default=None, repr=False)
    _subspace_projector: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.components = np.asarray(self.components, dtype=np.float64)
        self.mean = np.asarray(self.mean, dtype=np.float64).ravel()
        if self.components.ndim != 2:
            raise ShapeError("components must be a 2-D (D x d) array")
        if self.mean.shape[0] != self.components.shape[0]:
            raise ShapeError(
                f"mean has length {self.mean.shape[0]} but components have "
                f"{self.components.shape[0]} rows"
            )

    @property
    def n_features(self) -> int:
        return self.components.shape[0]

    @property
    def n_components(self) -> int:
        return self.components.shape[1]

    @property
    def basis(self) -> np.ndarray:
        """Orthonormal ``D x d`` basis of the recovered principal subspace."""
        if self._basis is None:
            u, _, _ = np.linalg.svd(self.components, full_matrices=False)
            self._basis = u
        return self._basis

    @property
    def posterior_projector(self) -> np.ndarray:
        """Cached ``D x d`` posterior-mean projector ``C * M^-1``.

        ``M = C'C + ss*I`` is solved rather than inverted; when the moment
        matrix is singular (``noise_variance == 0`` on rank-deficient
        components, the zero-variance-data collapse) the pseudo-inverse
        takes over, matching :meth:`project`.  Computed once per model --
        the serving hot path calls :meth:`transform` per request and must
        not re-factorize a ``d x d`` system every time.  Like ``_basis``
        the cache assumes the fitted arrays are never mutated in place.
        """
        if self._posterior_projector is None:
            moment = self.components.T @ self.components + (
                self.noise_variance * np.eye(self.n_components)
            )
            try:
                projector = np.linalg.solve(moment, self.components.T).T
            except np.linalg.LinAlgError:
                projector = self.components @ np.linalg.pinv(moment)
            self._posterior_projector = np.ascontiguousarray(projector)
        return self._posterior_projector

    @property
    def subspace_projector(self) -> np.ndarray:
        """Cached ``D x d`` least-squares projector ``C * (C'C)^+``.

        Pseudo-inverse throughout: degenerate models (zero-variance data
        collapse C to rank-deficiency) still project cleanly onto what is
        spanned.
        """
        if self._subspace_projector is None:
            gram = self.components.T @ self.components
            self._subspace_projector = np.ascontiguousarray(
                self.components @ np.linalg.pinv(gram)
            )
        return self._subspace_projector

    def transform(self, data: Matrix) -> np.ndarray:
        """Posterior-mean latent coordinates ``X = Yc * C * M^-1``.

        This is the PPCA E-step projection; it shrinks towards zero when the
        noise variance is large.
        """
        return centered_times(data, self.mean, self.posterior_projector)

    def project(self, data: Matrix) -> np.ndarray:
        """Least-squares latent coordinates ``X = Yc * C * (C'C)^-1``.

        Unlike :meth:`transform` this does not shrink, so ``X * C'`` is the
        orthogonal projection of ``Yc`` onto the subspace.  The paper's
        reconstruction-error metric uses this projection.
        """
        return centered_times(data, self.mean, self.subspace_projector)

    def inverse_transform(self, latent: np.ndarray) -> np.ndarray:
        """Map latent coordinates back to data space: ``X * C' + Ym``.

        Accepts a single length-d vector (the obvious single-request shape)
        as well as an ``n x d`` matrix; a 1-D input comes back as a 1-D
        length-D row.
        """
        latent = np.asarray(latent, dtype=np.float64)
        single = latent.ndim == 1
        latent = np.atleast_2d(latent)
        if latent.ndim != 2:
            raise ShapeError(
                f"latent must be a vector or 2-D matrix, got {latent.ndim} dimensions"
            )
        if latent.shape[1] != self.n_components:
            raise ShapeError(
                f"latent has {latent.shape[1]} columns, expected {self.n_components}"
            )
        result = latent @ self.components.T + self.mean
        return result[0] if single else result

    def reconstruct(self, data: Matrix) -> np.ndarray:
        """Project onto the subspace and map back (dense result)."""
        return self.inverse_transform(self.project(data))

    def log_likelihood(self, data: Matrix) -> float:
        """Total PPCA log-likelihood of *data* under this model.

        Evaluates ``sum_n log N(y_n; mean, C C' + ss I)`` using the Woodbury
        identity, so only d x d systems are solved even for large D.
        """
        n_rows, n_cols = data.shape
        if n_cols != self.n_features:
            raise ShapeError(
                f"data has {n_cols} columns but the model has {self.n_features} features"
            )
        d = self.n_components
        noise = max(self.noise_variance, 1e-300)
        moment = self.components.T @ self.components + noise * np.eye(d)
        moment_inv = np.linalg.inv(moment)
        # (CC' + ss I)^-1 = (I - C M^-1 C') / ss ;  |CC' + ss I| = ss^(D-d) |M|
        centered_sq_norms = self._centered_square_norms(data)
        projected = centered_times(data, self.mean, self.components)
        mahalanobis = (
            centered_sq_norms
            - np.einsum("ij,jl,il->i", projected, moment_inv, projected)
        ) / noise
        sign, logdet_m = np.linalg.slogdet(moment / noise)
        log_det = n_cols * np.log(noise) + sign * logdet_m
        return float(
            -0.5 * np.sum(n_cols * np.log(2.0 * np.pi) + log_det + mahalanobis)
        )

    def _centered_square_norms(self, data: Matrix) -> np.ndarray:
        """Per-row ||y - mean||^2 without densifying sparse input."""
        import scipy.sparse as sp

        if sp.issparse(data):
            csr = data.tocsr()
            row_sq = np.asarray(csr.multiply(csr).sum(axis=1)).ravel()
            cross = np.asarray(csr @ self.mean).ravel()
            return row_sq - 2.0 * cross + float(self.mean @ self.mean)
        dense = np.asarray(data, dtype=np.float64) - self.mean
        return np.einsum("ij,ij->i", dense, dense)

    def principal_directions(self, data: Matrix) -> tuple[np.ndarray, np.ndarray]:
        """Rotate the subspace basis into eigenvector directions.

        Projects the (centered) data onto :attr:`basis`, eigendecomposes the
        small ``d x d`` projected covariance, and returns the rotated basis
        together with the per-direction explained variances, sorted
        descending.

        Returns:
            (directions, variances): ``D x d`` orthonormal directions and a
            length-d variance vector.
        """
        projected = centered_times(data, self.mean, self.basis)
        small_cov = projected.T @ projected / max(1, data.shape[0] - 1)
        variances, rotation = np.linalg.eigh(small_cov)
        order = np.argsort(variances)[::-1]
        return self.basis @ rotation[:, order], variances[order]
