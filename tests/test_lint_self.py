"""The repo lints clean, and the CLI contracts are stable."""

from __future__ import annotations

import pytest

from repro.lint import RULES, format_findings, get_rule, iter_python_files, lint_paths
from repro.lint.cli import main as lint_main


def test_src_repro_lints_clean():
    findings = lint_paths(["src/repro"])
    assert findings == [], format_findings(findings)


def test_iter_python_files_covers_the_tree():
    files = iter_python_files(["src/repro"])
    names = {file.name for file in files}
    assert "kernels.py" in names
    assert "spark.py" in names
    assert len(files) > 40


def test_rules_are_documented():
    assert set(RULES) == {
        "DF001", "DF002", "DF003", "DF004", "DF005", "CT001",
        "EX001", "EX002", "EX003", "EX004", "EX005",
    }
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.summary
        assert rule.paper_ref
        assert rule.rationale
    assert get_rule("DF001").name == "closure-captured-array"
    assert get_rule("EX001").name == "task-mutates-driver-state"
    assert get_rule("EX005").name == "nondeterministic-task"


def test_cli_exit_zero_on_clean_tree(capsys):
    assert lint_main(["src/repro"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def job(rdd):\n"
        "    return rdd.reduce_by_key(lambda a, b: a - b)\n"
    )
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DF002" in out
    assert "bad.py" in out


def test_cli_exit_two_on_unknown_rule(capsys):
    assert lint_main(["--select", "DF999", "src/repro"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    assert lint_main(["does/not/exist.txt"]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_spca_cli_lint_subcommand(capsys):
    from repro.cli import main as spca_main

    assert spca_main(["lint", "src/repro", "-q"]) == 0


def test_cli_json_format_on_findings(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text(
        "def job(rdd):\n"
        "    return rdd.reduce_by_key(lambda a, b: a - b)\n"
    )
    assert lint_main(["--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    finding = payload["findings"][0]
    assert finding["code"] == "DF002"
    assert finding["line"] == 2
    assert finding["path"].endswith("bad.py")


def test_cli_json_format_on_clean_tree(tmp_path, capsys):
    import json

    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert lint_main(["--format", "json", str(good)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"count": 0, "findings": []}


def test_cli_github_format_emits_error_annotations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def run_phase(executor, payloads):\n"
        "    return executor.run_tasks(lambda p: p, payloads)\n"
    )
    assert lint_main(["--format", "github", "-q", str(bad)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "line=2" in out
    assert "EX002" in out


def test_github_escaping_of_workflow_commands():
    from repro.lint.findings import Finding, format_findings_github

    finding = Finding(
        path="a,b.py", line=1, col=0, code="EX001", message="newline\nand 100%"
    )
    rendered = format_findings_github([finding])
    assert "a%2Cb.py" in rendered
    assert "%0A" in rendered
    assert "100%25" in rendered


def test_spca_cli_lint_format_passthrough(tmp_path, capsys):
    import json

    from repro.cli import main as spca_main

    bad = tmp_path / "bad.py"
    bad.write_text(
        "def job(rdd):\n"
        "    return rdd.reduce_by_key(lambda a, b: a - b)\n"
    )
    assert spca_main(["lint", "--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1


@pytest.mark.parametrize("module", ["repro.lint.cli", "repro.lint"])
def test_modules_importable(module):
    __import__(module)


# ---------------------------------------------------------------------------
# optional third-party linters (the [lint] extra); skipped when not installed


def test_py_typed_marker_shipped():
    import repro

    marker = (repro.__path__[0] + "/py.typed")
    import os

    assert os.path.exists(marker)


def test_mypy_clean_on_typed_modules():
    mypy = pytest.importorskip("mypy.api")
    stdout, _stderr, status = mypy.run(
        [
            "--ignore-missing-imports",
            "src/repro/engine/serde.py",
            "src/repro/engine/mapreduce/api.py",
        ]
    )
    assert status == 0, stdout


def test_ruff_clean_on_lint_package():
    pytest.importorskip("ruff")
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src/repro/lint"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
