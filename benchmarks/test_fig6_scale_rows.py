"""Figure 6: time to 95% of ideal accuracy as the number of rows grows.

Paper shape (Tweets at full column width, rows swept 0.1M -> 1000M): the
two algorithms are close at small N, but sPCA-MapReduce's running time
grows much more slowly than Mahout-PCA's, opening a gap of orders of
magnitude at the top of the sweep.
"""

import pytest

from harness import dataset_ideal_accuracy, run_mahout, run_spca
from repro.data.generators import bag_of_words

ROW_SWEEP = (2_000, 8_000, 32_000, 96_000)
N_COLS = 2_000  # wide sparse matrix, like the full 71.5K-column Tweets


@pytest.mark.benchmark(group="fig6")
def test_fig6_time_vs_rows(benchmark, report):
    results = {}

    def run_all():
        for n_rows in ROW_SWEEP:
            data = bag_of_words(n_rows, N_COLS, words_per_doc=8.0, seed=606)
            ideal = dataset_ideal_accuracy(data)
            results[n_rows] = (
                run_spca(data, "mapreduce", ideal=ideal),
                run_mahout(data, ideal=ideal),
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"Figure 6: time (sim s) to 95% ideal accuracy vs rows (D={N_COLS})")
    report(f"{'rows':>10}{'sPCA-MapReduce':>18}{'Mahout-PCA':>14}{'ratio':>8}")
    for n_rows, (spca, mahout) in results.items():
        ratio = mahout.effective_time / spca.effective_time
        report(
            f"{n_rows:>10,}{spca.effective_time:>18.1f}"
            f"{mahout.effective_time:>14.1f}{ratio:>8.1f}"
        )

    smallest = results[ROW_SWEEP[0]]
    largest = results[ROW_SWEEP[-1]]

    # The gap widens with scale: Mahout/sPCA ratio grows from smallest to
    # largest N.
    ratio_small = smallest[1].effective_time / smallest[0].effective_time
    ratio_large = largest[1].effective_time / largest[0].effective_time
    assert ratio_large > ratio_small

    # sPCA's running time grows more slowly than Mahout's across the sweep.
    spca_growth = largest[0].effective_time / smallest[0].effective_time
    mahout_growth = largest[1].effective_time / smallest[1].effective_time
    assert spca_growth < mahout_growth

    # At the largest size sPCA wins outright.
    assert largest[0].effective_time < largest[1].effective_time
