"""The repro.obs tracer: spans, events, the simulated-clock cursor."""

import pytest

from repro.engine.metrics import EngineMetrics, JobStats
from repro.obs import (
    EVENT_TYPES,
    SPAN_KINDS,
    EventTrace,
    JobTrace,
    PhaseTrace,
    TaskTrace,
    Tracer,
    get_tracer,
    record_job_stats,
    set_tracer,
    tracing,
)


class TestSpanNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("run", "fit") as run:
            with tracer.span("iteration", "iteration[1]") as it:
                pass
        assert run.parent_id is None
        assert it.parent_id == run.span_id

    def test_sibling_order_is_allocation_order(self):
        tracer = Tracer()
        with tracer.span("run", "fit"):
            with tracer.span("iteration", "iteration[1]"):
                pass
            with tracer.span("iteration", "iteration[2]"):
                pass
        names = [span.name for span in tracer.spans]
        assert names == ["fit", "iteration[1]", "iteration[2]"]
        ids = [span.span_id for span in tracer.spans]
        assert ids == sorted(ids)

    def test_job_recorded_inside_open_span_gets_parented(self):
        tracer = Tracer()
        with tracer.span("run", "fit") as run:
            tracer.record_job(JobTrace(name="j", sim_duration=2.0))
        job = next(span for span in tracer.spans if span.kind == "job")
        assert job.parent_id == run.span_id

    def test_span_sim_interval_comes_from_cursor(self):
        tracer = Tracer()
        with tracer.span("run", "fit") as run:
            tracer.record_job(JobTrace(name="a", sim_duration=2.0))
            with tracer.span("iteration", "iteration[1]") as it:
                tracer.record_job(JobTrace(name="b", sim_duration=3.0))
        assert run.t0 == 0.0
        assert run.dur == 5.0
        assert it.t0 == 2.0
        assert it.dur == 3.0

    def test_set_attaches_attrs_while_open(self):
        tracer = Tracer()
        with tracer.span("iteration", "iteration[1]") as span:
            span.set(objective=1.5, accuracy=0.9)
        assert tracer.spans[0].attrs["objective"] == 1.5
        assert tracer.spans[0].attrs["accuracy"] == 0.9

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("run", "fit"):
                tracer.record_job(JobTrace(name="a", sim_duration=1.0))
                raise ValueError("boom")
        assert tracer.spans[0].dur == 1.0
        assert tracer._stack == []


class TestRecordJob:
    def make_trace(self):
        return JobTrace(
            name="YtXJob",
            sim_duration=10.0,
            phases=[
                PhaseTrace("map", 0.0, 6.0, tasks=[
                    TaskTrace(task_id=0, slot=0, start=0.0, duration=3.0),
                    TaskTrace(task_id=1, slot=1, start=0.0, duration=3.0,
                              retries=2, speculative_kill=True),
                ]),
                PhaseTrace("shuffle", 6.0, 4.0),
            ],
            events=[EventTrace("shuffle", 6.0, {"bytes": 128})],
            attrs={"shuffle_bytes": 128},
        )

    def test_advances_cursor_by_sim_duration(self):
        tracer = Tracer()
        tracer.record_job(self.make_trace())
        assert tracer.sim_now == 10.0
        tracer.record_job(self.make_trace())
        assert tracer.sim_now == 20.0

    def test_phase_and_task_offsets(self):
        tracer = Tracer()
        tracer.record_job(self.make_trace())
        tracer.record_job(self.make_trace())  # second job starts at t=10
        by_kind = {}
        for span in tracer.spans:
            by_kind.setdefault(span.kind, []).append(span)
        assert [s.t0 for s in by_kind["job"]] == [0.0, 10.0]
        shuffle_phases = [s for s in by_kind["phase"] if s.name == "shuffle"]
        assert [s.t0 for s in shuffle_phases] == [6.0, 16.0]
        second_tasks = [s for s in by_kind["task"] if s.t0 >= 10.0]
        assert all(s.track in (0, 1) for s in second_tasks)

    def test_retry_and_speculative_events_generated(self):
        tracer = Tracer()
        tracer.record_job(self.make_trace())
        types = [event.type for event in tracer.events]
        assert types.count("task_retry") == 1
        assert types.count("speculative_kill") == 1
        assert types.count("shuffle") == 1
        retry = next(e for e in tracer.events if e.type == "task_retry")
        assert retry.attrs == {"task_id": 1, "retries": 2}

    def test_job_events_offset_from_job_start(self):
        tracer = Tracer()
        tracer.record_job(self.make_trace())
        tracer.record_job(self.make_trace())
        shuffles = [e for e in tracer.events if e.type == "shuffle"]
        assert [e.t for e in shuffles] == [6.0, 16.0]

    def test_from_stats_copies_accounting_verbatim(self):
        stats = JobStats(name="j", shuffle_bytes=7, sim_seconds=1.25,
                         task_retries=3, hdfs_read_bytes=9)
        trace = JobTrace.from_stats(stats)
        assert trace.sim_duration == 1.25
        assert trace.attrs["shuffle_bytes"] == 7
        assert trace.attrs["task_retries"] == 3
        assert trace.attrs["hdfs_read_bytes"] == 9
        assert trace.attrs["intermediate_bytes"] == stats.intermediate_bytes


class TestDisabledTracer:
    def test_default_process_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("run", "fit") as span:
            span.set(objective=1.0)
            tracer.event("shuffle", bytes=10)
            tracer.record_job(JobTrace(name="j", sim_duration=5.0))
        assert tracer.spans == []
        assert tracer.events == []
        assert tracer.sim_now == 0.0

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("run", "a") as first:
            pass
        with tracer.span("run", "b") as second:
            pass
        assert first is second  # the singleton: zero allocation per span


class TestProcessTracer:
    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before

    def test_tracing_restores_on_error(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_set_tracer_roundtrip(self):
        before = get_tracer()
        mine = Tracer()
        set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(before)


class TestRecordJobStats:
    def test_records_into_metrics_and_tracer(self):
        metrics = EngineMetrics()
        stats = JobStats(name="broadcast", broadcast_bytes=64, sim_seconds=0.5)
        with tracing() as tracer:
            record_job_stats(metrics, stats, phase_name="broadcast transfer",
                             events=[EventTrace("broadcast", 0.0, {"bytes": 64})])
        assert metrics.jobs == [stats]
        job = next(span for span in tracer.spans if span.kind == "job")
        assert job.dur == 0.5
        assert job.attrs["broadcast_bytes"] == 64
        phase = next(span for span in tracer.spans if span.kind == "phase")
        assert phase.name == "broadcast transfer"
        assert phase.dur == 0.5
        assert [e.type for e in tracer.events] == ["broadcast"]

    def test_disabled_tracer_still_records_metrics(self):
        metrics = EngineMetrics()
        stats = JobStats(name="j", sim_seconds=1.0)
        record_job_stats(metrics, stats)  # process tracer is disabled here
        assert metrics.jobs == [stats]


class TestTaxonomy:
    def test_kinds_and_types_are_closed_sets(self):
        assert SPAN_KINDS == ("run", "iteration", "job", "phase", "task")
        assert "shuffle" in EVENT_TYPES
        assert "speculative_kill" in EVENT_TYPES
        assert "cache_evict" in EVENT_TYPES
