"""MapReduce jobs for the Mahout-style SSVD-PCA baseline.

Unlike the sPCA jobs, these deliberately mirror Mahout's dataflow including
its inefficiencies, because those inefficiencies are what the paper
measures:

- the sketch ``Y1 = Ac * Omega`` and the orthonormal basis ``Q`` are
  materialized to HDFS as N x (d+p) matrices between jobs (the O(Nd)
  communication row of Table 1);
- the Bt job emits a dense ``(d+p) x D`` partial per input record with no
  stateful combiner, the behaviour behind the 4 TB of mapper output the
  paper observed on the Tweets dataset (Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.engine.mapreduce.api import Mapper

KEY_B = "ssvd/B"


class SketchMapper(Mapper):
    """YJob: ``Y1_blk = A_blk * Omega - 1 * (mean' * Omega)``.

    Config: ``test_matrix`` (D x k'), optional ``mean`` for the PCA option.
    """

    def map(self, key, value, ctx):
        test_matrix = ctx.config["test_matrix"]
        sketch = np.asarray(value @ test_matrix)
        mean = ctx.config.get("mean")
        if mean is not None:
            sketch = sketch - mean @ test_matrix
        yield key, sketch


class BtMapper(Mapper):
    """BtJob: emit one outer-product partial ``q_i' * a_i`` per input *row*.

    Input records are ``(start, (q_block, a_block))`` joined by the driver.
    Mahout's Bt job emits a partial per data row -- the behaviour behind the
    4 TB of mapper output the paper measured on Tweets (mapper output grows
    as N * k' * z) -- and relies on combiners to collapse it, so the
    combiners are overloaded.  Sparse rows produce sparse partials; dense
    rows produce dense ones.

    The mean's contribution (PCA option) is emitted *once per mapper* as
    ``-(Q'1) (x) mean`` so it does not change the asymptotics.
    """

    def setup(self, ctx):
        self.q_colsum = None

    # Mirrors Mahout SSVD's BtJob, which emits one rank-1 partial per input
    # row and leans on the platform combiner -- kept per-record on purpose so
    # the baseline's intermediate-data volume matches the system it models.
    def map(self, key, value, ctx):  # repro-lint: disable=DF004
        import scipy.sparse as sp

        q_block, a_block = value
        mean = ctx.config.get("mean")
        if mean is not None:
            colsum = q_block.sum(axis=0)
            self.q_colsum = colsum if self.q_colsum is None else self.q_colsum + colsum
        sketch_size = q_block.shape[1]
        if sp.issparse(a_block):
            csr = a_block.tocsr()
            for i in range(q_block.shape[0]):
                lo, hi = csr.indptr[i], csr.indptr[i + 1]
                outer = np.outer(q_block[i], csr.data[lo:hi])
                partial = sp.csr_matrix(
                    (
                        outer.ravel(),
                        np.tile(csr.indices[lo:hi], sketch_size),
                        np.arange(sketch_size + 1) * (hi - lo),
                    ),
                    shape=(sketch_size, csr.shape[1]),
                )
                ctx.increment("bt/partials")
                yield KEY_B, partial
        else:
            dense = np.asarray(a_block)
            for i in range(q_block.shape[0]):
                ctx.increment("bt/partials")
                yield KEY_B, np.outer(q_block[i], dense[i])

    def cleanup(self, ctx):
        mean = ctx.config.get("mean")
        if mean is not None and self.q_colsum is not None:
            yield KEY_B, -np.outer(self.q_colsum, mean)


class ProjectMapper(Mapper):
    """ZJob (power iteration): ``Z_blk = Ac_blk * B' = A_blk B' - 1 (mean B')``.

    Config: ``bt`` (the D x k' transpose of B), optional ``mean``.
    """

    def map(self, key, value, ctx):
        bt = ctx.config["bt"]
        projected = np.asarray(value @ bt)
        mean = ctx.config.get("mean")
        if mean is not None:
            projected = projected - mean @ bt
        yield key, projected
