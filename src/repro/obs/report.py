"""Aggregated views over a trace: per-job, per-phase, per-iteration tables.

These are the trace-side counterparts of the paper's evaluation artifacts:

- the per-job table is Table 2's running-time column plus Section 5.2's
  intermediate-data column, one row per distributed job;
- the per-phase table splits each platform's time the way the follow-up
  analysis paper does (job init vs. map compute vs. shuffle vs. reduce);
- the per-iteration table is the accuracy-vs-cost curve of Figures 4-5.

:func:`reconcile` is the trust anchor: it checks that everything derived
from the trace agrees *exactly* with the engine's own
:class:`~repro.engine.metrics.EngineMetrics`, so the pretty timeline can
never drift from the accounting the benchmarks report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.obs.export import TraceData

_BYTE_ATTRS = (
    "map_output_bytes",
    "shuffle_bytes",
    "hdfs_read_bytes",
    "hdfs_write_bytes",
    "driver_result_bytes",
    "broadcast_bytes",
    "intermediate_bytes",
)


@dataclass
class TraceSummary:
    """Aggregates computed from one trace."""

    n_jobs: int = 0
    total_sim_seconds: float = 0.0
    totals: dict[str, int] = field(default_factory=dict)
    total_task_retries: int = 0
    by_job_name: "OrderedDict[str, dict[str, Any]]" = field(default_factory=OrderedDict)
    by_phase_name: "OrderedDict[str, dict[str, Any]]" = field(default_factory=OrderedDict)


def job_spans(trace: TraceData) -> list[Any]:
    return [span for span in trace.spans if span.kind == "job"]


def summarize(trace: TraceData) -> TraceSummary:
    """Aggregate a trace into per-job-name and per-phase-name totals."""
    summary = TraceSummary(totals={key: 0 for key in _BYTE_ATTRS})
    for span in job_spans(trace):
        summary.n_jobs += 1
        summary.total_sim_seconds += span.dur
        summary.total_task_retries += int(span.attrs.get("task_retries", 0))
        for key in _BYTE_ATTRS:
            summary.totals[key] += int(span.attrs.get(key, 0))
        row = summary.by_job_name.setdefault(
            span.name,
            {"runs": 0, "sim_seconds": 0.0, "task_retries": 0,
             **{key: 0 for key in _BYTE_ATTRS}},
        )
        row["runs"] += 1
        row["sim_seconds"] += span.dur
        row["task_retries"] += int(span.attrs.get("task_retries", 0))
        for key in _BYTE_ATTRS:
            row[key] += int(span.attrs.get(key, 0))
    for span in trace.spans:
        if span.kind != "phase":
            continue
        row = summary.by_phase_name.setdefault(
            span.name, {"runs": 0, "sim_seconds": 0.0, "tasks": 0}
        )
        row["runs"] += 1
        row["sim_seconds"] += span.dur
    task_counts: dict[int, int] = {}
    for span in trace.spans:
        if span.kind == "task" and span.parent_id is not None:
            task_counts[span.parent_id] = task_counts.get(span.parent_id, 0) + 1
    for span in trace.spans:
        if span.kind == "phase" and span.span_id in task_counts:
            summary.by_phase_name[span.name]["tasks"] += task_counts[span.span_id]
    return summary


def iteration_groups(trace: TraceData) -> "OrderedDict[int | None, list[Any]]":
    """Iteration spans grouped by their parent (one group per run/fit)."""
    groups: OrderedDict[int | None, list[Any]] = OrderedDict()
    for span in trace.spans:
        if span.kind == "iteration":
            groups.setdefault(span.parent_id, []).append(span)
    return groups


def reconcile(trace: TraceData, metrics: Any) -> list[str]:
    """Cross-check trace-derived totals against an ``EngineMetrics``.

    Returns a list of human-readable discrepancies; an empty list means the
    trace and the engine's own accounting agree exactly (float-exact
    simulated durations, integer-exact byte counts).
    """
    problems: list[str] = []
    spans = job_spans(trace)
    jobs = list(metrics.jobs)
    if len(spans) != len(jobs):
        problems.append(
            f"trace has {len(spans)} job spans but metrics recorded {len(jobs)} jobs"
        )
        return problems
    for index, (span, stats) in enumerate(zip(spans, jobs)):
        where = f"job #{index} ({stats.name})"
        if span.name != stats.name:
            problems.append(f"{where}: trace span is named {span.name!r}")
        if span.dur != stats.sim_seconds:
            problems.append(
                f"{where}: span duration {span.dur!r} != sim_seconds {stats.sim_seconds!r}"
            )
        for key in _BYTE_ATTRS:
            expected = int(getattr(stats, key))
            got = int(span.attrs.get(key, 0))
            if got != expected:
                problems.append(f"{where}: {key} {got} != {expected}")
        if int(span.attrs.get("task_retries", 0)) != int(stats.task_retries):
            problems.append(
                f"{where}: task_retries {span.attrs.get('task_retries')} "
                f"!= {stats.task_retries}"
            )
    total = sum(span.dur for span in spans)
    if total != metrics.total_sim_seconds:
        problems.append(
            f"total sim seconds {total!r} != {metrics.total_sim_seconds!r}"
        )
    shuffle = sum(int(span.attrs.get("shuffle_bytes", 0)) for span in spans)
    if shuffle != metrics.total_shuffle_bytes:
        problems.append(f"total shuffle bytes {shuffle} != {metrics.total_shuffle_bytes}")
    intermediate = sum(int(span.attrs.get("intermediate_bytes", 0)) for span in spans)
    if intermediate != metrics.total_intermediate_bytes:
        problems.append(
            f"total intermediate bytes {intermediate} "
            f"!= {metrics.total_intermediate_bytes}"
        )
    return problems


# -- text rendering ----------------------------------------------------------


def format_job_table(summary: TraceSummary) -> str:
    """Per-job-name table: the trace-side Table 2 / Section 5.2 view."""
    lines = [
        f"{'job':<22}{'runs':>6}{'sim s':>12}{'shuffle B':>14}"
        f"{'interm. B':>14}{'hdfs r B':>12}{'hdfs w B':>12}{'bcast B':>12}{'retry':>7}"
    ]
    for name, row in summary.by_job_name.items():
        lines.append(
            f"{name:<22}{row['runs']:>6}{row['sim_seconds']:>12.3f}"
            f"{row['shuffle_bytes']:>14}{row['intermediate_bytes']:>14}"
            f"{row['hdfs_read_bytes']:>12}{row['hdfs_write_bytes']:>12}"
            f"{row['broadcast_bytes']:>12}{row['task_retries']:>7}"
        )
    totals = summary.totals
    lines.append(
        f"{'TOTAL':<22}{summary.n_jobs:>6}{summary.total_sim_seconds:>12.3f}"
        f"{totals['shuffle_bytes']:>14}{totals['intermediate_bytes']:>14}"
        f"{totals['hdfs_read_bytes']:>12}{totals['hdfs_write_bytes']:>12}"
        f"{totals['broadcast_bytes']:>12}{summary.total_task_retries:>7}"
    )
    return "\n".join(lines)


def format_phase_table(summary: TraceSummary) -> str:
    """Where the simulated time goes, split by timeline phase."""
    lines = [f"{'phase':<22}{'runs':>6}{'tasks':>8}{'sim s':>12}{'share':>8}"]
    total = sum(row["sim_seconds"] for row in summary.by_phase_name.values())
    for name, row in sorted(
        summary.by_phase_name.items(), key=lambda item: -item[1]["sim_seconds"]
    ):
        share = row["sim_seconds"] / total if total else 0.0
        lines.append(
            f"{name:<22}{row['runs']:>6}{row['tasks']:>8}"
            f"{row['sim_seconds']:>12.3f}{share:>8.1%}"
        )
    return "\n".join(lines)


def format_iteration_table(trace: TraceData) -> str:
    """Per-iteration convergence telemetry (the Figure 4/5 curve, as text)."""
    groups = iteration_groups(trace)
    if not groups:
        return "(no iteration spans in trace)"
    blocks: list[str] = []
    run_names = {
        span.span_id: span.name for span in trace.spans if span.kind == "run"
    }
    for parent_id, iterations in groups.items():
        title = run_names.get(parent_id, "(standalone loop)") if parent_id else "(standalone loop)"
        lines = [
            f"-- {title}",
            f"{'iter':>5}{'sim s':>12}{'objective':>14}{'conv delta':>12}"
            f"{'subsp delta':>12}{'accuracy':>10}{'interm. B':>14}",
        ]
        for span in iterations:
            attrs = span.attrs
            accuracy = attrs.get("accuracy")
            lines.append(
                f"{attrs.get('index', '?'):>5}{span.t0 + span.dur:>12.3f}"
                f"{_num(attrs.get('objective')):>14}{_num(attrs.get('convergence_delta')):>12}"
                f"{_num(attrs.get('subspace_delta')):>12}"
                f"{_num(accuracy):>10}{attrs.get('intermediate_bytes', 0):>14}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _num(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value):.5g}"


# -- HTML rendering ----------------------------------------------------------
#
# Self-contained single-file report: inline CSS (light/dark via
# prefers-color-scheme), inline SVG charts, no external assets or scripts.
# Chart styling follows a fixed spec: 2px lines with >=8px end markers ringed
# in the surface color, bars <=24px with 4px rounded data-ends and 2px surface
# gaps, all text in ink tokens (never the series color), hairline gridlines,
# native SVG <title> tooltips, and a table view next to every chart.

_HTML_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
  }
}
body { background: var(--page); color: var(--ink); margin: 0;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 980px; margin: 0 auto; padding: 24px 20px 60px; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.warn { background: var(--surface); border: 1px solid var(--border);
  border-left: 3px solid #ec835a; border-radius: 6px; padding: 8px 12px;
  color: var(--ink-2); margin: 0 0 14px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0 6px; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 118px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 0 0 6px; }
svg text { fill: var(--muted); font: 11px system-ui, sans-serif; }
svg .dlabel { fill: var(--ink-2); font-weight: 600; }
table { border-collapse: collapse; width: 100%; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
th, td { text-align: right; padding: 5px 10px; border-top: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; border-top: none; }
th:first-child, td:first-child { text-align: left; font-variant-numeric: normal; }
pre { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px; overflow-x: auto; font-size: 12px; }
"""


def _esc(value: Any) -> str:
    import html

    return html.escape(str(value))


def _spark_svg(
    points: list[tuple[float, float]],
    series_var: str,
    value_format: str = ".5g",
    width: int = 640,
    height: int = 120,
) -> str:
    """One-series sparkline: 2px line, ringed end marker, end label, grid."""
    if not points:
        return "<p class='sub'>(no data)</p>"
    pad_l, pad_r, pad_t, pad_b = 10.0, 76.0, 12.0, 18.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def sx(x: float) -> float:
        return pad_l + (x - x_lo) / x_span * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - (y - y_lo) / y_span) * plot_h

    grid = "".join(
        f"<line x1='{pad_l}' y1='{sy(y):.1f}' x2='{pad_l + plot_w}' "
        f"y2='{sy(y):.1f}' stroke='var(--grid)' stroke-width='1'/>"
        for y in (y_lo, (y_lo + y_hi) / 2, y_hi)
    )
    poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    dots = "".join(
        f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='4' fill='var({series_var})'"
        f" stroke='var(--surface)' stroke-width='2'>"
        f"<title>iteration {x:g}: {format(y, value_format)}</title></circle>"
        for x, y in points
    )
    end_x, end_y = points[-1]
    end_label = (
        f"<text class='dlabel' x='{sx(end_x) + 10:.1f}' y='{sy(end_y) + 4:.1f}'>"
        f"{_esc(format(end_y, value_format))}</text>"
    )
    axis_labels = (
        f"<text x='{pad_l}' y='{height - 4}'>iter {x_lo:g}</text>"
        f"<text x='{pad_l + plot_w:.1f}' y='{height - 4}' text-anchor='end'>"
        f"iter {x_hi:g}</text>"
    )
    return (
        f"<svg viewBox='0 0 {width} {height}' width='100%' role='img'>"
        f"{grid}"
        f"<polyline points='{poly}' fill='none' stroke='var({series_var})'"
        f" stroke-width='2' stroke-linejoin='round' stroke-linecap='round'/>"
        f"{dots}{end_label}{axis_labels}</svg>"
    )


def _bars_svg(rows: list[tuple[str, float]], total: float, width: int = 640) -> str:
    """Horizontal single-hue bar chart: <=24px bars, 4px rounded data-end."""
    if not rows:
        return "<p class='sub'>(no phase spans)</p>"
    bar_h, gap, pad_l, pad_r, pad_t = 20, 2 + 6, 180.0, 90.0, 6
    height = pad_t * 2 + len(rows) * (bar_h + gap)
    plot_w = width - pad_l - pad_r
    max_v = max(v for _, v in rows) or 1.0
    parts: list[str] = []
    y = float(pad_t)
    for name, value in rows:
        w = max(1.0, value / max_v * plot_w)
        share = value / total if total else 0.0
        # square at the baseline (left), 4px rounded data-end (right)
        parts.append(
            f"<path d='M {pad_l} {y} h {w - 4:.1f} a 4 4 0 0 1 4 4 v {bar_h - 8}"
            f" a 4 4 0 0 1 -4 4 h {-(w - 4):.1f} z' fill='var(--series-1)'>"
            f"<title>{_esc(name)}: {value:.3f} sim s ({share:.1%})</title></path>"
        )
        parts.append(
            f"<text x='{pad_l - 8}' y='{y + bar_h / 2 + 4:.1f}' text-anchor='end'>"
            f"{_esc(name)}</text>"
        )
        parts.append(
            f"<text class='dlabel' x='{pad_l + w + 8:.1f}' y='{y + bar_h / 2 + 4:.1f}'>"
            f"{value:.3f}s ({share:.0%})</text>"
        )
        y += bar_h + gap
    baseline = (
        f"<line x1='{pad_l}' y1='{pad_t - 2}' x2='{pad_l}' y2='{y - gap + 2:.1f}'"
        f" stroke='var(--axis)' stroke-width='1'/>"
    )
    return (
        f"<svg viewBox='0 0 {width} {height}' width='100%' role='img'>"
        f"{baseline}{''.join(parts)}</svg>"
    )


def _html_table(headers: list[str], rows: list[list[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _serving_rows(metrics_snapshot: dict[str, Any] | None) -> list[list[Any]]:
    """Per-op serving summary rows from ``spca_serve_*`` samples, if any."""
    if not metrics_snapshot:
        return []
    outcomes: dict[str, dict[str, float]] = {}
    rows_total: dict[str, float] = {}
    batches: dict[str, float] = {}
    for item in metrics_snapshot.get("counters", []):
        op = item.get("labels", {}).get("op", "")
        if item["name"] == "spca_serve_requests_total":
            outcome = item["labels"].get("outcome", "ok")
            outcomes.setdefault(op, {})[outcome] = item["value"]
        elif item["name"] == "spca_serve_rows_total":
            rows_total[op] = item["value"]
        elif item["name"] == "spca_serve_batches_total":
            batches[op] = item["value"]
    latency: dict[str, dict[str, Any]] = {}
    for item in metrics_snapshot.get("histograms", []):
        if item["name"] == "spca_serve_request_seconds":
            latency[item.get("labels", {}).get("op", "")] = item
    ops = sorted(set(outcomes) | set(rows_total) | set(latency))

    def _ms(hist: dict[str, Any] | None, quantile: str) -> str:
        if not hist or hist.get(quantile) is None:
            return "-"
        return f"{hist[quantile] * 1e3:.2f}"

    return [
        [
            op,
            f"{outcomes.get(op, {}).get('ok', 0):g}",
            f"{outcomes.get(op, {}).get('rejected', 0):g}",
            f"{outcomes.get(op, {}).get('deadline', 0):g}",
            f"{rows_total.get(op, 0):g}",
            f"{batches.get(op, 0):g}",
            _ms(latency.get(op), "p50"),
            _ms(latency.get(op), "p90"),
            _ms(latency.get(op), "p99"),
        ]
        for op in ops
    ]


def _streaming_rows(metrics_snapshot: dict[str, Any] | None) -> list[list[Any]]:
    """Per-engine streaming summary rows from ``spca_stream_*`` samples."""
    if not metrics_snapshot:
        return []
    counters: dict[str, dict[str, float]] = {}
    for item in metrics_snapshot.get("counters", []):
        if item["name"].startswith("spca_stream_"):
            engine = item.get("labels", {}).get("engine", "")
            counters.setdefault(engine, {})[item["name"]] = item["value"]
    gauges: dict[str, dict[str, float]] = {}
    for item in metrics_snapshot.get("gauges", []):
        if item["name"].startswith("spca_stream_") and item["value"] is not None:
            engine = item.get("labels", {}).get("engine", "")
            gauges.setdefault(engine, {})[item["name"]] = item["value"]
    walls: dict[str, dict[str, Any]] = {}
    for item in metrics_snapshot.get("histograms", []):
        if item["name"] == "spca_stream_window_wall_seconds":
            walls[item.get("labels", {}).get("engine", "")] = item

    def _ms(hist: dict[str, Any] | None, quantile: str) -> str:
        if not hist or hist.get(quantile) is None:
            return "-"
        return f"{hist[quantile] * 1e3:.2f}"

    engines = sorted(set(counters) | set(gauges) | set(walls))
    return [
        [
            engine,
            f"{counters.get(engine, {}).get('spca_stream_rows_total', 0):g}",
            f"{counters.get(engine, {}).get('spca_stream_windows_total', 0):g}",
            f"{counters.get(engine, {}).get('spca_stream_drift_events_total', 0):g}",
            f"{counters.get(engine, {}).get('spca_stream_checkpoints_total', 0):g}",
            f"{gauges.get(engine, {}).get('spca_stream_rows_per_second', 0):,.0f}",
            f"{gauges.get(engine, {}).get('spca_stream_window_lag', 0):.2f}",
            _ms(walls.get(engine), "p50"),
            _ms(walls.get(engine), "p99"),
        ]
        for engine in engines
    ]


def render_html(
    trace: TraceData,
    metrics_snapshot: dict[str, Any] | None = None,
    title: str = "repro-spca run report",
    warnings: list[str] | None = None,
) -> str:
    """Render *trace* (plus an optional metrics snapshot) as one HTML page."""
    from repro.obs.analyze import critical_path, straggler_report

    summary = summarize(trace)
    iterations = [
        span for group in iteration_groups(trace).values() for span in group
    ]
    parts: list[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_HTML_CSS}</style></head>",
        f"<body><main><h1>{_esc(title)}</h1>",
        "<p class='sub'>simulated clock throughout; "
        "generated by <code>repro-spca report --html</code></p>",
    ]
    for warning in warnings or []:
        parts.append(f"<p class='warn'>warning: {_esc(warning)}</p>")

    parts.append("<div class='tiles'>")
    for label, value in (
        ("sim time", f"{summary.total_sim_seconds:.3f}s"),
        ("jobs", f"{summary.n_jobs}"),
        ("iterations", f"{len(iterations)}"),
        ("shuffle", f"{summary.totals.get('shuffle_bytes', 0):,} B"),
        ("task retries", f"{summary.total_task_retries}"),
    ):
        parts.append(
            f"<div class='tile'><div class='label'>{_esc(label)}</div>"
            f"<div class='value'>{_esc(value)}</div></div>"
        )
    parts.append("</div>")

    obj_points = [
        (float(s.attrs["index"]), float(s.attrs["objective"]))
        for s in iterations
        if s.attrs.get("objective") is not None and s.attrs.get("index") is not None
    ]
    delta_points = [
        (float(s.attrs["index"]), float(s.attrs["convergence_delta"]))
        for s in iterations
        if s.attrs.get("convergence_delta") is not None
        and s.attrs.get("index") is not None
    ]
    if obj_points:
        parts.append("<h2>Objective per iteration</h2><div class='card'>")
        parts.append(_spark_svg(obj_points, "--series-1", ".8g"))
        parts.append("</div>")
    if delta_points:
        parts.append("<h2>Convergence delta per iteration</h2><div class='card'>")
        parts.append(_spark_svg(delta_points, "--series-2", ".3g"))
        parts.append("</div>")
    if iterations:
        parts.append("<h2>Iterations</h2>")
        parts.append(
            _html_table(
                ["iter", "end sim s", "objective", "conv delta", "interm. B"],
                [
                    [
                        s.attrs.get("index", "?"),
                        f"{s.t0 + s.dur:.3f}",
                        _num(s.attrs.get("objective")),
                        _num(s.attrs.get("convergence_delta")),
                        f"{int(s.attrs.get('intermediate_bytes', 0)):,}",
                    ]
                    for s in iterations
                ],
            )
        )

    phase_rows = sorted(
        (
            (name, row["sim_seconds"])
            for name, row in summary.by_phase_name.items()
        ),
        key=lambda kv: -kv[1],
    )
    phase_total = sum(v for _, v in phase_rows)
    parts.append("<h2>Where the simulated time goes</h2><div class='card'>")
    parts.append(_bars_svg(phase_rows[:12], phase_total))
    parts.append("</div>")

    parts.append("<h2>Jobs</h2>")
    parts.append(
        _html_table(
            ["job", "runs", "sim s", "shuffle B", "interm. B", "retries"],
            [
                [
                    name,
                    row["runs"],
                    f"{row['sim_seconds']:.3f}",
                    f"{row['shuffle_bytes']:,}",
                    f"{row['intermediate_bytes']:,}",
                    row["task_retries"],
                ]
                for name, row in summary.by_job_name.items()
            ],
        )
    )

    path = critical_path(trace)
    if path is not None:
        parts.append("<h2>Critical path</h2>")
        rows = [
            [
                f"{seg.name}{' (self)' if seg.self_time else ''}",
                seg.kind,
                f"{seg.start:.3f}",
                f"{seg.end:.3f}",
                f"{seg.duration:.3f}",
            ]
            for seg in path.segments[:40]
        ]
        parts.append(
            _html_table(["span", "kind", "start s", "end s", "duration s"], rows)
        )
        if len(path.segments) > 40:
            parts.append(
                f"<p class='sub'>... {len(path.segments) - 40} more segments</p>"
            )

    skews = straggler_report(trace)
    if skews:
        parts.append("<h2>Partition skew</h2>")
        parts.append(
            _html_table(
                ["phase", "job", "tasks", "max s", "median s", "max/med", "max/mean"],
                [
                    [
                        skew.phase_name,
                        skew.job_name,
                        skew.n_tasks,
                        f"{skew.max_s:.3f}",
                        f"{skew.median_s:.3f}",
                        f"{skew.skew:.2f}",
                        f"{skew.imbalance:.2f}",
                    ]
                    for skew in skews[:12]
                ],
            )
        )

    serving_rows = _serving_rows(metrics_snapshot)
    if serving_rows:
        parts.append("<h2>Serving</h2>")
        parts.append(
            "<p class='sub'>Per-op request outcomes and latency from the "
            "<code>spca_serve_*</code> metrics (batched results are "
            "bit-identical to single-row serving).</p>"
        )
        parts.append(
            _html_table(
                ["op", "ok", "rejected", "deadline", "rows", "batches",
                 "p50 ms", "p90 ms", "p99 ms"],
                serving_rows,
            )
        )

    streaming_rows = _streaming_rows(metrics_snapshot)
    if streaming_rows:
        parts.append("<h2>Streaming</h2>")
        parts.append(
            "<p class='sub'>Windowed mini-batch EM throughput and "
            "backpressure from the <code>spca_stream_*</code> metrics "
            "(window lag is the buffered-row queue in window units).</p>"
        )
        parts.append(
            _html_table(
                ["engine", "rows", "windows", "drift events", "checkpoints",
                 "rows/s", "window lag", "wall p50 ms", "wall p99 ms"],
                streaming_rows,
            )
        )

    if metrics_snapshot is not None:
        parts.append("<h2>Metrics snapshot</h2>")
        counter_rows = [
            [
                item["name"]
                + (
                    "{" + ",".join(f"{k}={v}" for k, v in item["labels"].items()) + "}"
                    if item.get("labels")
                    else ""
                ),
                f"{item['value']:g}",
            ]
            for item in metrics_snapshot.get("counters", [])
        ]
        if counter_rows:
            parts.append(_html_table(["counter", "value"], counter_rows))
        hist_rows = [
            [
                item["name"],
                item["count"],
                f"{item['sum']:.6g}",
                _num(item.get("p50")),
                _num(item.get("p90")),
                _num(item.get("p99")),
            ]
            for item in metrics_snapshot.get("histograms", [])
        ]
        if hist_rows:
            parts.append(
                _html_table(["histogram", "count", "sum", "p50", "p90", "p99"],
                            hist_rows)
            )

    parts.append("</main></body></html>")
    return "".join(parts)
