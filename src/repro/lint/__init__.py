"""repro.lint: distributed-dataflow static analysis + shape contracts.

The paper's four optimizations exist because naive dataflow patterns silently
destroy performance and correctness on distributed platforms.  This package
makes those patterns mechanically checkable:

- :mod:`repro.lint.analyzer` / ``repro-lint`` -- AST rules DF001-DF005 (plus
  the CT001 contract cross-check) over job classes and RDD pipelines;
- :mod:`repro.lint.contracts` -- ``@contract`` runtime shape/kind checking
  for every distributed kernel, off by default, enabled in tests;
- :mod:`repro.lint.algebra` -- dynamic commutativity/associativity
  verification for registered combiners (the runtime half of DF002);
- :mod:`repro.lint.exec_visitors` -- AST rules EX001-EX005 over executor
  task code (purity, picklability, shm lifetime, determinism);
- :mod:`repro.lint.racecheck` -- the dynamic race detector for the
  execute/commit protocol (an instrumented shadow executor building a
  happens-before relation over driver-visible state).
"""

from __future__ import annotations

from repro.lint import contracts
from repro.lint.analyzer import iter_python_files, lint_paths, lint_source
from repro.lint.contracts import Spec, contract, parse_spec
from repro.lint.findings import (
    Finding,
    format_findings,
    format_findings_github,
    format_findings_json,
)
from repro.lint.racecheck import (
    RaceChecker,
    RaceCheckExecutor,
    RaceConflict,
    RaceRecorder,
    RaceReport,
    run_spca_racecheck,
)
from repro.lint.rules import RULES, Rule, get_rule

__all__ = [
    "RULES",
    "Finding",
    "RaceCheckExecutor",
    "RaceChecker",
    "RaceConflict",
    "RaceRecorder",
    "RaceReport",
    "Rule",
    "Spec",
    "contract",
    "contracts",
    "format_findings",
    "format_findings_github",
    "format_findings_json",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_spec",
    "run_spca_racecheck",
]
