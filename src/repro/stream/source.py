"""Row sources: where a PCA stream's rows come from.

A :class:`RowSource` is the streaming counterpart of the engines' HDFS
splits / RDD partitions: an ordered, possibly unbounded sequence of row
chunks over a fixed column space.  The contract that makes the whole
pipeline testable is *arrival-chunking independence*: the values of row i
depend only on i, never on how the source happens to batch rows into
chunks.  The windower re-slices arrivals into windows, so any chunking of
the same row order produces bit-identical windows -- the property the
equivalence suite pins.

``chunks(start_row=n)`` resumes mid-stream: it yields the same rows the
original stream would have yielded from absolute row n on.  Checkpoint
resume relies on this to replay from the last window boundary.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix


class RowSource(abc.ABC):
    """An ordered stream of row chunks over ``n_cols`` columns."""

    @property
    @abc.abstractmethod
    def n_cols(self) -> int:
        """The fixed column count D of every chunk."""

    @abc.abstractmethod
    def chunks(self, start_row: int = 0) -> Iterator[Matrix]:
        """Yield ``(n_i, D)`` row chunks starting at absolute row *start_row*.

        Row values must depend only on the absolute row index, never on the
        chunk boundaries; resuming at row n yields exactly the suffix of the
        stream from row n.
        """


def _slice_from(chunk: Matrix, skip: int) -> Matrix | None:
    """Drop the first *skip* rows of *chunk*; None when nothing is left."""
    if skip <= 0:
        return chunk
    if skip >= chunk.shape[0]:
        return None
    return chunk[skip:]


class MatrixSource(RowSource):
    """Streams a materialized matrix in fixed-size chunks, optionally
    replaying it for several epochs (row N is row ``N mod n_rows`` of the
    matrix).  The in-memory stand-in for a row-streamed dataset."""

    def __init__(self, matrix: Matrix, chunk_rows: int = 256, epochs: int = 1):
        if matrix.shape[0] < 1:
            raise ShapeError("MatrixSource needs at least one row")
        if chunk_rows < 1:
            raise ShapeError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if epochs < 1:
            raise ShapeError(f"epochs must be >= 1, got {epochs}")
        self.matrix = matrix
        self.chunk_rows = chunk_rows
        self.epochs = epochs

    @property
    def n_cols(self) -> int:
        return self.matrix.shape[1]

    @property
    def total_rows(self) -> int:
        return self.matrix.shape[0] * self.epochs

    def chunks(self, start_row: int = 0) -> Iterator[Matrix]:
        n_rows = self.matrix.shape[0]
        row = start_row
        while row < self.total_rows:
            position = row % n_rows
            take = min(self.chunk_rows, n_rows - position, self.total_rows - row)
            yield self.matrix[position : position + take]
            row += take


class IterableSource(RowSource):
    """Wraps a finite sequence of pre-chunked row batches.

    The batches are materialized once so the source can be replayed (and
    resumed) -- streams too large to hold should use a replayable source
    instead.  Zero-row batches are tolerated and skipped.
    """

    def __init__(self, batches: Sequence[Matrix], n_cols: int | None = None):
        self.batches = [batch for batch in batches if batch.shape[0] > 0]
        if n_cols is None:
            if not self.batches:
                raise ShapeError(
                    "cannot infer n_cols from an empty batch sequence"
                )
            n_cols = self.batches[0].shape[1]
        for batch in self.batches:
            if batch.shape[1] != n_cols:
                raise ShapeError(
                    f"batch has {batch.shape[1]} columns, expected {n_cols}"
                )
        self._n_cols = n_cols

    @property
    def n_cols(self) -> int:
        return self._n_cols

    def chunks(self, start_row: int = 0) -> Iterator[Matrix]:
        skip = start_row
        for batch in self.batches:
            piece = _slice_from(batch, skip)
            skip = max(0, skip - batch.shape[0])
            if piece is not None:
                yield piece


@dataclass(frozen=True)
class DriftSpec:
    """A planted regime change: from absolute row ``at_row`` on, the
    dominant loading direction is rotated by ``angle_degrees`` out of the
    original span.  Used to exercise the drift detector with a known
    ground truth."""

    at_row: int
    angle_degrees: float = 45.0

    def __post_init__(self) -> None:
        if self.at_row < 0:
            raise ShapeError(f"at_row must be >= 0, got {self.at_row}")
        if not 0.0 < self.angle_degrees <= 90.0:
            raise ShapeError(
                f"angle_degrees must be in (0, 90], got {self.angle_degrees}"
            )


class SyntheticSource(RowSource):
    """An unbounded low-rank Gaussian stream, deterministic per row.

    Rows are generated in fixed internal blocks of ``block_rows``, each from
    a generator seeded by ``(seed, block_index)`` -- so the value of row i is
    a pure function of i and the source parameters, independent of how the
    consumer chunks its reads.  (Seeding per block rather than advancing one
    generator is what makes ``chunks(start_row=n)`` exact: normal draws
    consume a data-dependent number of raw words, so a shared stream could
    not be repositioned.)

    With a :class:`DriftSpec`, rows from ``drift.at_row`` on are drawn from
    a rotated loading matrix; :meth:`basis` exposes the ground-truth
    subspace on both sides of the change point.
    """

    def __init__(
        self,
        n_cols: int,
        rank: int,
        *,
        noise: float = 0.05,
        seed: int = 0,
        block_rows: int = 256,
        total_rows: int | None = None,
        drift: DriftSpec | None = None,
    ):
        if rank < 1 or rank > n_cols:
            raise ShapeError(f"rank must be in [1, {n_cols}], got {rank}")
        if block_rows < 1:
            raise ShapeError(f"block_rows must be >= 1, got {block_rows}")
        if total_rows is not None and total_rows < 1:
            raise ShapeError(f"total_rows must be >= 1, got {total_rows}")
        self._n_cols = n_cols
        self.rank = rank
        self.noise = noise
        self.seed = seed
        self.block_rows = block_rows
        self.total_rows = total_rows
        self.drift = drift

        rng = np.random.default_rng(seed)
        self._scales = np.linspace(3.0, 1.0, rank)
        self._loadings = rng.normal(size=(rank, n_cols))
        # A direction orthogonal to the loading span, used to rotate the
        # dominant loading out of plane at the drift point.  Drawn
        # unconditionally so the pre-drift rows do not depend on whether a
        # drift was requested.
        extra = rng.normal(size=n_cols)
        for row in self._loadings:
            extra = extra - (extra @ row) / (row @ row) * row
        extra = extra / np.linalg.norm(extra)
        self._drifted = self._loadings.copy()
        if drift is not None:
            first = self._loadings[0]
            radians = np.radians(drift.angle_degrees)
            self._drifted[0] = (
                np.cos(radians) * first
                + np.sin(radians) * np.linalg.norm(first) * extra
            )

    @property
    def n_cols(self) -> int:
        return self._n_cols

    def basis(self, row: int) -> np.ndarray:
        """Ground-truth loading basis ``(D, rank)`` in effect at *row*."""
        loadings = self._loadings
        if self.drift is not None and row >= self.drift.at_row:
            loadings = self._drifted
        return loadings.T.copy()

    def _block(self, index: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, index))
        latents = rng.normal(size=(self.block_rows, self.rank)) * self._scales
        noise = rng.normal(size=(self.block_rows, self._n_cols)) * self.noise
        start = index * self.block_rows
        if self.drift is None or self.drift.at_row >= start + self.block_rows:
            signal = latents @ self._loadings
        elif self.drift.at_row <= start:
            signal = latents @ self._drifted
        else:
            boundary = self.drift.at_row - start
            signal = np.concatenate(
                [
                    latents[:boundary] @ self._loadings,
                    latents[boundary:] @ self._drifted,
                ]
            )
        return signal + noise

    def chunks(self, start_row: int = 0) -> Iterator[Matrix]:
        index = start_row // self.block_rows
        offset = start_row - index * self.block_rows
        row = start_row
        while self.total_rows is None or row < self.total_rows:
            block = self._block(index)
            if offset:
                block = block[offset:]
            if self.total_rows is not None:
                block = block[: self.total_rows - row]
            if block.shape[0]:
                yield block
            row += block.shape[0]
            index += 1
            offset = 0


def as_source(
    data: RowSource | Matrix | Sequence[Matrix], chunk_rows: int = 256
) -> RowSource:
    """Coerce *data* to a :class:`RowSource`.

    Accepts a source (returned as-is), a single dense/CSR matrix (wrapped
    in a :class:`MatrixSource`), or a sequence of row batches (wrapped in
    an :class:`IterableSource`).
    """
    if isinstance(data, RowSource):
        return data
    if isinstance(data, np.ndarray) or sp.issparse(data):
        return MatrixSource(data, chunk_rows=chunk_rows)
    return IterableSource(list(data))
