"""Pytest plugin: run every test with runtime shape contracts enabled.

Load it with ``-p repro.lint.pytest_plugin`` or from a rootdir conftest; the
repo's own ``tests/conftest.py`` enables the same fixture inline, so the
tier-1 suite always exercises the kernels with their contracts armed.

Also provides the ``race_checker`` fixture: a factory that instruments an
engine (SparkContext or MapReduceRuntime) with the dynamic race detector for
the duration of a ``with`` block and asserts every checked run was
conflict-free at teardown.  Tests that *expect* conflicts (synthetic races)
should construct :class:`~repro.lint.racecheck.RaceChecker` directly.
"""

from __future__ import annotations

import pytest

from repro.lint import contracts


@pytest.fixture(scope="session", autouse=True)
def repro_runtime_contracts():
    """Enable runtime contract checking for the whole test session."""
    with contracts.checked():
        yield


@pytest.fixture
def race_checker():
    """Factory: ``checker = race_checker(engine)`` -> active RaceChecker.

    Usage::

        def test_my_stage(race_checker):
            ctx = SparkContext(executor="threads")
            with race_checker(ctx) as checker:
                run_my_stage(ctx)
            assert checker.report().clean

    Checkers left unexamined are verified clean at teardown, so simply
    wrapping a run in the fixture is itself an assertion.
    """
    from repro.lint.racecheck import RaceChecker

    created: list[RaceChecker] = []

    def make(engine, label: str = "test") -> RaceChecker:
        checker = RaceChecker(engine, label=label)
        created.append(checker)
        return checker

    yield make
    for checker in created:
        report = checker.report()
        assert report.clean, [conflict.render() for conflict in report.conflicts]


def pytest_report_header(config):  # pragma: no cover - cosmetic
    return "repro.lint: runtime shape contracts enabled"
