"""The paper-scaled dataset series: every spec materializes correctly."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    biotext_series,
    diabetes_series,
    images_series,
    make_dataset,
    tweets_series,
)
from repro.engine.serde import sizeof, sizeof_pairs


class TestSeriesShapes:
    def test_biotext_series(self):
        specs = biotext_series(n_rows=500)
        assert [s.n_cols for s in specs] == [200, 1000, 1400]
        assert all(s.sparse for s in specs)
        assert all(s.n_rows == 500 for s in specs)

    def test_diabetes_series(self):
        specs = diabetes_series()
        assert [s.n_cols for s in specs] == [200, 1000, 6567]
        assert all(not s.sparse for s in specs)
        assert all(s.n_rows == 353 for s in specs)  # patients are unscaled

    def test_images_series(self):
        (spec,) = images_series(n_rows=100)
        assert spec.n_cols == 128  # SIFT dimensionality is unscaled

    def test_biotext_denser_than_tweets(self):
        tweets = make_dataset(tweets_series(n_rows=2000)[0])
        biotext = make_dataset(biotext_series(n_rows=2000)[0])
        assert (
            biotext.nnz / np.prod(biotext.shape)
            > tweets.nnz / np.prod(tweets.shape)
        )

    def test_specs_regenerate_identically(self):
        spec = tweets_series(n_rows=300)[0]
        first = make_dataset(spec)
        second = make_dataset(spec)
        assert (first != second).nnz == 0

    def test_paper_size_labels(self):
        assert diabetes_series()[2].paper_size == "353 x 65.7K"
        assert images_series()[0].paper_size == "160M x 128"


class TestSizeofProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        first=st.lists(st.tuples(st.integers(), st.floats(allow_nan=False,
                                                          allow_infinity=False)),
                       max_size=10),
        second=st.lists(st.tuples(st.integers(), st.floats(allow_nan=False,
                                                           allow_infinity=False)),
                        max_size=10),
    )
    def test_sizeof_pairs_additive_under_concat(self, first, second):
        assert sizeof_pairs(first + second) == sizeof_pairs(first) + sizeof_pairs(second)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=20),
        m=st.integers(min_value=1, max_value=20),
    )
    def test_sizeof_array_scales_with_elements(self, n, m):
        small = sizeof(np.zeros(n))
        big = sizeof(np.zeros(n * m))
        assert big >= small

    def test_sparse_cheaper_than_dense_when_sparse_enough(self):
        sparse = sp.random(200, 200, density=0.01, random_state=0, format="csr")
        dense = np.asarray(sparse.todense())
        assert sizeof(sparse) < sizeof(dense)
