"""The synchronous request layer: named-model inference with telemetry.

:class:`PCAService` is the thin, blocking facade over the registry and the
row-stable kernels -- what a request handler (or the async micro-batcher)
calls once it holds a batch.  Each call resolves ``name@version`` through
the registry's LRU cache, validates shapes, runs the op through the
executor layer, and records a request-scoped span plus latency/throughput
metrics.

Results are defined **row-wise** (see :mod:`repro.serve.kernels`): the
output for any row is bit-identical to pushing that row through the model
alone, regardless of batch composition, chunking, or executor.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.engine.exec.base import TaskExecutor
from repro.errors import ShapeError
from repro.obs import get_tracer
from repro.obs.metrics import get_registry as get_metrics
from repro.serve import kernels
from repro.serve.registry import LATEST, ModelRegistry


class PCAService:
    """Serve ``transform``/``project``/``reconstruct``/``score`` by name.

    Args:
        registry: the model registry to resolve names against.
        executor: optional PR 5 task executor for intra-batch parallelism;
            None (or serial) keeps everything on the calling thread.
        chunk_rows: rows per executor task (default: split across workers,
            capped at :data:`repro.serve.kernels.DEFAULT_CHUNK_ROWS`).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        executor: TaskExecutor | None = None,
        chunk_rows: int | None = None,
    ):
        self.registry = registry
        self.executor = executor
        self.chunk_rows = chunk_rows

    def model(self, name: str, version: str = LATEST):
        """The resolved, cached :class:`PCAModel` for ``name@version``."""
        return self.registry.get(name, version)

    def resolve(self, name: str, version: str = LATEST) -> str:
        return self.registry.resolve(name, version)

    # -- ops --------------------------------------------------------------

    def transform(self, name: str, rows: Any, version: str = LATEST) -> np.ndarray:
        """Posterior-mean latents for *rows* under ``name@version``."""
        return self._apply("transform", name, rows, version)

    def project(self, name: str, rows: Any, version: str = LATEST) -> np.ndarray:
        """Least-squares subspace coordinates for *rows*."""
        return self._apply("project", name, rows, version)

    def reconstruct(self, name: str, rows: Any, version: str = LATEST) -> np.ndarray:
        """Rows projected onto the subspace and mapped back (dense)."""
        return self._apply("reconstruct", name, rows, version)

    def score(self, name: str, rows: Any, version: str = LATEST) -> np.ndarray:
        """Per-row squared reconstruction error ``||y - reconstruct(y)||^2``.

        Low scores mean the subspace explains the row well; a simple
        anomaly signal for request-time data.
        """
        return self._apply("score", name, rows, version)

    # -- machinery --------------------------------------------------------

    def _apply(self, op: str, name: str, rows: Any, version: str) -> np.ndarray:
        single = not sp.issparse(rows) and np.asarray(rows).ndim == 1
        batch = self.as_batch(rows)
        model = self.registry.get(name, version)
        tracer = get_tracer()
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "task", f"serve.request/{op}", model=name, rows=batch.shape[0]
            ):
                result = kernels.run_batch(
                    model, op, batch, self.executor, self.chunk_rows
                )
        else:
            result = kernels.run_batch(
                model, op, batch, self.executor, self.chunk_rows
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("spca_serve_requests_total", op=op, outcome="ok").inc()
            metrics.counter("spca_serve_rows_total", op=op).inc(batch.shape[0])
            metrics.histogram("spca_serve_request_seconds", op=op).observe(
                time.perf_counter() - started
            )
        if single and op != "score":
            return result[0]
        return result

    @staticmethod
    def as_batch(rows: Any) -> Any:
        """Normalize request rows to a 2-D batch (1-D vectors become 1 x D)."""
        if sp.issparse(rows):
            return rows.tocsr()
        array = np.asarray(rows, dtype=np.float64)
        if array.ndim == 1:
            return array[None, :]
        if array.ndim != 2:
            raise ShapeError(
                f"request rows must be 1-D or 2-D, got {array.ndim}-D"
            )
        return array
