"""Pytest plugin: run every test with runtime shape contracts enabled.

Load it with ``-p repro.lint.pytest_plugin`` or from a rootdir conftest; the
repo's own ``tests/conftest.py`` enables the same fixture inline, so the
tier-1 suite always exercises the kernels with their contracts armed.
"""

from __future__ import annotations

import pytest

from repro.lint import contracts


@pytest.fixture(scope="session", autouse=True)
def repro_runtime_contracts():
    """Enable runtime contract checking for the whole test session."""
    with contracts.checked():
        yield


def pytest_report_header(config):  # pragma: no cover - cosmetic
    return "repro.lint: runtime shape contracts enabled"
