"""Streaming PCA: windowed mini-batch EM over an unbounded row stream.

sPCA's state is a small (D x d) matrix independent of the row count, so
PCA can run forever over a stream: each window of rows is reduced
engine-side to d-sized sufficient statistics and blended driver-side.
This example runs the full ``repro.stream`` pipeline three ways:

1. an unbounded synthetic stream with a planted regime change, caught by
   the subspace drift detector;
2. the same windows on the Spark engine simulator -- bit-identical to the
   sequential reference, because the executor/commit protocol never
   re-associates a float;
3. a checkpointed stream killed mid-flight and resumed, reaching the
   bit-identical model the uninterrupted run reaches.

Run with:  python examples/streaming_pca.py
"""

import tempfile

import numpy as np

from repro.core.checkpoint import CheckpointPolicy, DirectoryCheckpointStore
from repro.extensions import IncrementalPPCA
from repro.metrics import subspace_angle_degrees
from repro.stream import (
    DriftSpec,
    MatrixSource,
    StreamConfig,
    StreamingPCA,
    SyntheticSource,
    reference_windows,
)


def drifting_stream() -> None:
    print("== drift detection on an unbounded stream ==")
    source = SyntheticSource(
        n_cols=32, rank=4, noise=0.05, seed=11,
        drift=DriftSpec(at_row=6_000, angle_degrees=55.0),
    )
    config = StreamConfig(
        n_components=4, window=500, seed=12,
        drift_threshold_degrees=15.0, drift_lag=3, drift_warmup=5,
    )
    result = StreamingPCA(config).run(source, max_windows=24)
    print(f"streamed {result.rows:,} rows in {result.windows} windows")
    for event in result.drift_events:
        print(f"  drift fired at window {event.window_index} "
              f"(row {event.end_row:,}): {event.angle_degrees:.1f} degrees "
              f"-- planted at row 6,000")
    angle = subspace_angle_degrees(result.model.basis, source.basis(10_000))
    print(f"  angle to the post-drift ground truth: {angle:.1f} degrees\n")


def engine_equivalence() -> None:
    print("== Spark-engine windows equal the sequential reference, bitwise ==")
    rng = np.random.default_rng(21)
    data = rng.normal(size=(2_000, 3)) @ rng.normal(size=(3, 40))
    config = StreamConfig(n_components=3, window=250, seed=22)
    streamed = StreamingPCA(config, "spark").run(
        MatrixSource(data, chunk_rows=333)
    )
    oracle = IncrementalPPCA(3, seed=22).partial_fit_stream(
        (w.rows for w in reference_windows(data, config.spec())), n_cols=40
    )
    match = np.array_equal(streamed.model.components, oracle.components)
    print(f"  components bitwise equal: {match}")
    print(f"  simulated cluster time: {streamed.sim_seconds:.1f}s "
          f"for {streamed.windows} window jobs\n")


def checkpoint_resume() -> None:
    print("== kill at window 5, resume from the snapshot ==")
    source = SyntheticSource(n_cols=24, rank=3, seed=31, total_rows=4_000)
    config = StreamConfig(n_components=3, window=400, seed=32)
    clean = StreamingPCA(config).run(source)
    with tempfile.TemporaryDirectory() as scratch:
        policy = CheckpointPolicy(DirectoryCheckpointStore(scratch), every=1)
        StreamingPCA(config).run(source, max_windows=5, checkpoint=policy)
        resumed = StreamingPCA(config).resume(source, policy)
    match = np.array_equal(resumed.model.components, clean.model.components)
    print(f"  resumed {resumed.windows} remaining windows")
    print(f"  final model bitwise equals the uninterrupted run: {match}")


def main() -> None:
    drifting_stream()
    engine_equivalence()
    checkpoint_resume()


if __name__ == "__main__":
    main()
