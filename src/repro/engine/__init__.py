"""Simulated distributed execution platforms.

The paper evaluates sPCA on an 8-node EC2 cluster running Hadoop MapReduce
and Apache Spark 1.0.  This package rebuilds both platforms as single-process
simulators that preserve everything the paper measures:

- **dataflow** -- what each phase reads, shuffles, and materializes, with
  byte-accurate accounting (intermediate-data results, Section 5.2);
- **memory** -- driver and executor memory models (MLlib's failure beyond
  6,000 columns, Figures 7-8);
- **time** -- a simulated wall clock that schedules measured per-task compute
  times onto a configurable number of cores and charges network/disk
  transfers at configurable bandwidths (running times, Tables 2-4).

Submodules:

- :mod:`repro.engine.cluster` -- cluster hardware description.
- :mod:`repro.engine.serde` -- serialized-size estimation.
- :mod:`repro.engine.simtime` -- cost model and task scheduling.
- :mod:`repro.engine.metrics` -- per-job statistics.
- :mod:`repro.engine.mapreduce` -- the Hadoop-style engine.
- :mod:`repro.engine.spark` -- the Spark-style engine.
"""

from repro.engine.cluster import ClusterSpec
from repro.engine.metrics import EngineMetrics, JobStats
from repro.engine.simtime import (
    HADOOP_LIKE_COSTS,
    SPARK_LIKE_COSTS,
    CostModel,
    TaskPlacement,
    schedule_makespan,
    schedule_tasks,
)

__all__ = [
    "ClusterSpec",
    "CostModel",
    "EngineMetrics",
    "HADOOP_LIKE_COSTS",
    "JobStats",
    "SPARK_LIKE_COSTS",
    "TaskPlacement",
    "schedule_makespan",
    "schedule_tasks",
]
