"""Chaos suite: any survivable fault plan must not change the answer.

Hypothesis generates fault plans whose kill/fetch events stay within the
engines' ``max_task_attempts`` budget, injects them into full sPCA fits on
both distributed backends, and asserts the final model, the per-job byte
accounting, and the engine counters are *identical* to a fault-free run.
That is the fault-tolerance contract of both platforms: retries and lineage
recomputation cost time, never correctness.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import MapReduceBackend, SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.faults import (
    ExecutorLoss,
    FaultPlan,
    FetchFailure,
    KillTask,
    PlannedFaults,
    Straggler,
)

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)
CONFIG = SPCAConfig(
    n_components=3, max_iterations=2, tolerance=0.0, seed=5,
    compute_error_every_iteration=False,
)
MAX_TASK_ATTEMPTS = 4

# Every job name the two backends submit during a fit.
JOB_NAMES = ("meanJob", "FnormJob", "YtXJob", "ss3Job")


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    return rng.normal(size=(60, 10)) @ rng.normal(size=(10, 10))


def job_signature(metrics):
    """The deterministic accounting columns of every submitted job."""
    return [
        (job.name, job.n_map_tasks, job.map_output_bytes, job.shuffle_bytes,
         job.hdfs_read_bytes, job.hdfs_write_bytes, job.driver_result_bytes,
         job.broadcast_bytes, job.intermediate_bytes)
        for job in metrics.jobs
    ]


def run_fit(backend_name, plan=None):
    faults = PlannedFaults(plan) if plan is not None else None
    if backend_name == "mapreduce":
        engine = MapReduceRuntime(
            cluster=CLUSTER, max_task_attempts=MAX_TASK_ATTEMPTS, faults=faults
        )
        backend = MapReduceBackend(CONFIG, runtime=engine)
        metrics = engine.metrics
    else:
        engine = SparkContext(
            cluster=CLUSTER, max_task_attempts=MAX_TASK_ATTEMPTS, faults=faults
        )
        backend = SparkBackend(CONFIG, context=engine)
        metrics = engine.metrics
    model, _ = SPCA(CONFIG, backend).fit(_DATA)
    return model, metrics


# Hypothesis calls run_fit many times per test; computing the fault-free
# baseline once per backend keeps the suite's runtime tolerable.
_DATA = None
_BASELINES = {}


@pytest.fixture(scope="module", autouse=True)
def _bind_data(data):
    global _DATA
    _DATA = data
    _BASELINES.clear()
    yield
    _DATA = None
    _BASELINES.clear()


def baseline(backend_name):
    if backend_name not in _BASELINES:
        model, metrics = run_fit(backend_name)
        _BASELINES[backend_name] = (model, job_signature(metrics))
    return _BASELINES[backend_name]


def survivable_events():
    job = st.sampled_from(JOB_NAMES)
    occurrence = st.one_of(st.none(), st.integers(min_value=0, max_value=2))
    kills = st.builds(
        KillTask,
        job=job,
        task=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        attempts=st.integers(min_value=1, max_value=MAX_TASK_ATTEMPTS - 1),
        occurrence=occurrence,
    )
    fetches = st.builds(
        FetchFailure,
        job=job,
        attempts=st.integers(min_value=1, max_value=MAX_TASK_ATTEMPTS - 1),
        occurrence=occurrence,
    )
    stragglers = st.builds(
        Straggler,
        job=job,
        factor=st.floats(min_value=1.5, max_value=20.0),
        occurrence=occurrence,
    )
    losses = st.builds(
        ExecutorLoss,
        job=job,
        executor=st.integers(min_value=0, max_value=CLUSTER.num_nodes - 1),
        occurrence=occurrence,
    )
    return st.one_of(kills, fetches, stragglers, losses)


def survivable_plans():
    return st.lists(survivable_events(), min_size=1, max_size=4).map(
        lambda events: FaultPlan(events=tuple(events))
    )


@pytest.mark.parametrize("backend_name", ["mapreduce", "spark"])
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(plan=survivable_plans())
def test_property_survivable_plans_change_nothing_but_time(backend_name, plan):
    assert plan.check_recoverable(MAX_TASK_ATTEMPTS)
    clean_model, clean_signature = baseline(backend_name)
    chaos_model, chaos_metrics = run_fit(backend_name, plan)
    # Bit-identical model: retries recompute the same floats in the same
    # order, accumulators/counters commit exactly once.
    assert np.array_equal(chaos_model.components, clean_model.components)
    assert np.array_equal(chaos_model.mean, clean_model.mean)
    assert chaos_model.noise_variance == clean_model.noise_variance
    # Identical byte accounting, job for job.
    assert job_signature(chaos_metrics) == clean_signature


@pytest.mark.parametrize("backend_name", ["mapreduce", "spark"])
def test_fault_free_plan_equals_no_injector(backend_name):
    clean_model, clean_signature = baseline(backend_name)
    model, metrics = run_fit(backend_name, FaultPlan())
    assert np.array_equal(model.components, clean_model.components)
    assert job_signature(metrics) == clean_signature
    assert all(job.faults == {} for job in metrics.jobs)
    assert all(job.task_retries == 0 for job in metrics.jobs)


@pytest.mark.parametrize("backend_name", ["mapreduce", "spark"])
def test_heavy_deterministic_plan_is_survivable_and_counted(backend_name):
    plan = FaultPlan(
        events=(
            KillTask(job="meanJob", attempts=3, occurrence=0),
            FetchFailure(job="YtXJob", attempts=2, occurrence=None),
            Straggler(job="ss3Job", factor=10.0, occurrence=None),
            ExecutorLoss(job="YtXJob", executor=1, occurrence=0),
        )
    )
    clean_model, clean_signature = baseline(backend_name)
    model, metrics = run_fit(backend_name, plan)
    assert np.array_equal(model.components, clean_model.components)
    assert job_signature(metrics) == clean_signature
    total_faults = {}
    for job in metrics.jobs:
        for label, count in job.faults.items():
            total_faults[label] = total_faults.get(label, 0) + count
    assert total_faults.get("kill_task", 0) > 0
    assert total_faults.get("straggler", 0) > 0
    if backend_name == "spark":
        assert total_faults.get("fetch_failure", 0) > 0
        assert total_faults.get("executor_loss", 0) > 0
    assert metrics.total_recovery_sim_seconds > 0
