"""CLI for the perf harness: batched-pipeline and executor-scaling suites.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py                    # BENCH_3.json
    PYTHONPATH=src python benchmarks/perf/run.py --suite executor   # BENCH_5.json
    PYTHONPATH=src python benchmarks/perf/run.py --suite kernels    # BENCH_kernels.json
    PYTHONPATH=src python benchmarks/perf/run.py --suite serve      # BENCH_serve.json
    PYTHONPATH=src python benchmarks/perf/run.py --suite stream     # BENCH_stream.json
    PYTHONPATH=src python benchmarks/perf/run.py --quick            # CI smoke shapes

``batch`` measures the PR-3 record pipeline (batch vs per-record, serial
executor); ``executor`` measures end-to-end ``SPCA.fit`` under the
``serial``/``threads``/``processes`` executors across a worker-scaling
curve; ``serve`` fires a storm of concurrent single-row requests at the
micro-batching serving layer (batched vs unbatched, bitwise-verified);
``kernels`` measures the pluggable kernel backends (fused/numba vs numpy,
micro-op chains and end-to-end fits, all bitwise-verified) plus the
worker-resident per-iteration dispatch-byte reduction and the raw-BLAS
floor; ``stream`` measures windowed streaming PCA on each engine (sustained
rows/s, window wall percentiles, backpressure lag, checkpoint overhead,
bitwise-verified against the incremental oracle).
Each writes its result document (schema: perf section of
``benchmarks/README.md``) to the repo root -- ``BENCH_3.json``,
``BENCH_5.json``, ``BENCH_serve.json``, or ``BENCH_stream.json`` --
unless ``--output`` overrides it, and prints a summary
table.  Exits non-zero if the document fails schema validation, so a CI run
doubles as a schema check; absolute timings are never asserted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.harness import (  # noqa: E402
    run_executor_suite,
    run_suite,
    summarize,
    summarize_executor,
    traced_quick_fit,
    validate,
    validate_executor,
)
from perf.kernels_bench import (  # noqa: E402
    run_kernels_suite,
    summarize_kernels,
    validate_kernels,
)
from perf.stream_bench import (  # noqa: E402
    run_stream_suite,
    summarize_stream,
    validate_stream,
)
from repro.serve.loadgen import (  # noqa: E402
    run_serve_suite,
    summarize_serve,
    validate_serve,
)


def _run_serve(quick: bool = False, repeats: int | None = None) -> dict:
    # The serve load generator measures one storm per mode; latency
    # percentiles come from request counts, not repeats.
    del repeats
    return run_serve_suite(quick=quick)


SUITES = {
    "batch": (run_suite, validate, summarize, "BENCH_3.json"),
    "executor": (
        run_executor_suite,
        validate_executor,
        summarize_executor,
        "BENCH_5.json",
    ),
    "kernels": (
        run_kernels_suite,
        validate_kernels,
        summarize_kernels,
        "BENCH_kernels.json",
    ),
    "serve": (_run_serve, validate_serve, summarize_serve, "BENCH_serve.json"),
    "stream": (
        run_stream_suite,
        validate_stream,
        summarize_stream,
        "BENCH_stream.json",
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="batch",
        help="which suite to run (batch -> BENCH_3, executor -> BENCH_5, "
             "serve -> BENCH_serve, stream -> BENCH_stream)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shapes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per measurement (default depends on --quick)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="where to write the result JSON (default: <repo>/BENCH_N.json)",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also run one deterministic quick-shape traced fit and write "
             "its trace here (.jsonl or Chrome JSON); pairs with "
             "'repro-spca diff' against a committed baseline",
    )
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the traced fit's metrics snapshot here "
             "(.prom for Prometheus text, else JSON)",
    )
    args = parser.parse_args(argv)

    if args.trace_out or args.metrics_out:
        # Artifact mode: one deterministic traced fit instead of the timing
        # suite (CI diffs the trace against a committed baseline).
        from repro.obs import write_snapshot, write_trace

        trace, snapshot = traced_quick_fit()
        if args.trace_out:
            print(f"wrote {write_trace(trace, args.trace_out)}")
        if args.metrics_out:
            write_snapshot(snapshot, args.metrics_out)
            print(f"wrote {args.metrics_out}")
        return 0

    run, validate_fn, summarize_fn, default_name = SUITES[args.suite]
    output = args.output or REPO_ROOT / default_name
    result = run(quick=args.quick, repeats=args.repeats)
    validate_fn(result)
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(summarize_fn(result))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
