"""Mahout-PCA analog: stochastic SVD with mean propagation on MapReduce.

Section 2.3: Mahout computes PCA by running SSVD with a ``--pca`` option
that stores the column mean separately from the sparse input and propagates
it through the SSVD products.  This implementation chains the same jobs
Mahout runs -- sketch (Q-job), Bt-job, power-iteration jobs -- on the
simulated MapReduce engine, materializing the same N x (d+p) intermediate
matrices to HDFS between jobs.  Those materializations, plus the Bt job's
per-record dense partials, are exactly the communication bottleneck the
paper measures (961 GB of intermediate data on Tweets vs sPCA's 131 MB).

Accuracy refinement: each power iteration improves the subspace estimate,
so the fit records an (accumulated-time, accuracy) point after the initial
pass and after every power iteration -- the Mahout-PCA curves of
Figures 4-6.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.result import BaselineResult
from repro.core.model import PCAModel
from repro.engine.mapreduce.api import MapReduceJob
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.metrics import JobStats
from repro.errors import ShapeError
from repro.jobs import mapreduce_jobs as mr
from repro.jobs import ssvd_jobs
from repro.linalg.blocks import Matrix, partition_rows
from repro.obs import EventTrace, record_job_stats


class SSVDPCAMapReduce:
    """PCA via stochastic SVD on the MapReduce engine (Mahout-PCA).

    Args:
        n_components: number of principal components d.
        oversampling: extra sketch columns p (Mahout's default is small).
        power_iterations: subspace-iteration refinements q; accuracy is
            recorded after each.
        runtime: the MapReduce engine (fresh default cluster if omitted).
        mean_propagation: the Mahout ``--pca`` option; disabling it centers
            each block densely inside the mappers.
        seed: seed for the Gaussian test matrix.
        error_sample_fraction: row-sampling rate for accuracy measurement.
    """

    def __init__(
        self,
        n_components: int,
        oversampling: int = 10,
        power_iterations: int = 3,
        runtime: MapReduceRuntime | None = None,
        mean_propagation: bool = True,
        seed: int = 0,
        error_sample_fraction: float = 1.0,
    ):
        if n_components < 1:
            raise ShapeError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.oversampling = max(0, oversampling)
        self.power_iterations = max(0, power_iterations)
        self.runtime = runtime or MapReduceRuntime()
        self.mean_propagation = mean_propagation
        self.seed = seed
        self.error_sample_fraction = error_sample_fraction

    def fit(self, data: Matrix, compute_accuracy: bool = True) -> BaselineResult:
        """Run the SSVD-PCA job chain; returns the model plus measurements."""
        n_rows, n_cols = data.shape
        sketch_size = min(self.n_components + self.oversampling, min(n_rows, n_cols))
        if self.n_components > sketch_size:
            raise ShapeError(
                f"n_components={self.n_components} exceeds min(N, D)={sketch_size}"
            )
        started = time.perf_counter()
        jobs_start = len(self.runtime.metrics.jobs)

        splits = self._splits(data)
        data_mean = self._mean_job(splits)
        # With the PCA option the mean is propagated through the job chain;
        # without it, the inputs are centered densely up front (sparsity is
        # lost -- the cost Section 2.3 warns about).
        mean = data_mean if self.mean_propagation else None
        if not self.mean_propagation:
            splits = self._densely_centered(splits, data_mean)
        rng = np.random.default_rng(self.seed)
        test_matrix = rng.normal(size=(n_cols, sketch_size))

        sketch_blocks = self._sketch_job(splits, test_matrix, mean)
        basis_blocks = self._driver_qr(sketch_blocks, iteration=0)

        timeline: list[tuple[float, float]] = []
        small = self._bt_job(splits, basis_blocks, mean)
        if compute_accuracy:
            timeline.append(self._accuracy_point(splits, small, mean, jobs_start))
        for iteration in range(1, self.power_iterations + 1):
            projected = self._project_job(splits, small, mean, iteration)
            basis_blocks = self._driver_qr(projected, iteration)
            small = self._bt_job(splits, basis_blocks, mean)
            if compute_accuracy:
                timeline.append(self._accuracy_point(splits, small, mean, jobs_start))

        model = self._model_from_b(small, data, data_mean, n_rows,
                                   centered_input=not self.mean_propagation)
        run_jobs = self.runtime.metrics.jobs[jobs_start:]
        return BaselineResult(
            model=model,
            simulated_seconds=self._algorithm_seconds(run_jobs),
            wall_seconds=time.perf_counter() - started,
            intermediate_bytes=sum(
                job.intermediate_bytes for job in run_jobs if job.name != "errorJob"
            ),
            accuracy_timeline=timeline,
        )

    # -- job chain ---------------------------------------------------------

    def _splits(self, data: Matrix) -> list[list]:
        blocks = partition_rows(data, self.runtime.cluster.total_cores)
        return [[(block.start, block.data)] for block in blocks]

    def _mean_job(self, splits) -> np.ndarray:
        job = MapReduceJob(
            name="meanJob", mapper=mr.MeanMapper(), reducer=mr.MatrixSumReducer()
        )
        output = dict(self.runtime.run(job, splits))
        return output[mr.KEY_SUMS] / output[mr.KEY_COUNT]

    def _sketch_job(self, splits, test_matrix, mean) -> list[tuple[int, np.ndarray]]:
        job = MapReduceJob(
            name="YJob",
            mapper=ssvd_jobs.SketchMapper(),
            output_path="ssvd/Y",
            output_is_intermediate=True,
            config={"test_matrix": test_matrix, "mean": mean},
        )
        self.runtime.run(job, splits)
        return self.runtime.hdfs.read("ssvd/Y")

    def _driver_qr(self, blocks, iteration: int) -> list[tuple[int, np.ndarray]]:
        """QR of the stacked sketch; Q goes back to HDFS as intermediate data.

        Mahout distributes this QR; stacking on the driver is a
        simplification that preserves the communication volume (the full
        N x k' matrix still round-trips through the distributed store).
        """
        ordered = sorted(blocks, key=lambda item: item[0])
        stacked = np.vstack([block for _, block in ordered])
        started = time.perf_counter()
        basis, _ = np.linalg.qr(stacked)
        qr_seconds = time.perf_counter() - started
        out_blocks = []
        offset = 0
        for start, block in ordered:
            out_blocks.append((start, basis[offset : offset + block.shape[0]]))
            offset += block.shape[0]
        path = f"ssvd/Q-{iteration}"
        nbytes = self.runtime.hdfs.write(path, out_blocks)
        stats = JobStats(
            name="QJob",
            output_bytes=nbytes,
            output_is_intermediate=True,
            hdfs_write_bytes=nbytes,
            wall_seconds=qr_seconds,
            sim_seconds=(
                self.runtime.cost_model.per_job_overhead_s
                + qr_seconds * self.runtime.cost_model.compute_scale
                + self.runtime.cost_model.disk_seconds(nbytes)
            ),
        )
        record_job_stats(
            self.runtime.metrics,
            stats,
            phase_name="driver QR",
            events=[EventTrace("hdfs_write", 0.0, {"bytes": nbytes, "path": path})],
        )
        return out_blocks

    def _bt_job(self, splits, basis_blocks, mean) -> np.ndarray:
        basis_by_start = dict(basis_blocks)
        joined = [
            [(start, (basis_by_start[start], block)) for start, block in split]
            for split in self._raw_splits(splits)
        ]
        job = MapReduceJob(
            name="BtJob",
            mapper=ssvd_jobs.BtMapper(),
            reducer=mr.MatrixSumReducer(),
            combiner=mr.MatrixSumReducer(),
            config={"mean": mean},
        )
        output = dict(self.runtime.run(job, joined))
        small = output[ssvd_jobs.KEY_B]
        if hasattr(small, "todense"):
            small = small.todense()
        return np.asarray(small)

    def _project_job(self, splits, small, mean, iteration: int):
        job = MapReduceJob(
            name="ZJob",
            mapper=ssvd_jobs.ProjectMapper(),
            output_path=f"ssvd/Z-{iteration}",
            output_is_intermediate=True,
            config={"bt": small.T, "mean": mean},
        )
        self.runtime.run(job, splits)
        return self.runtime.hdfs.read(f"ssvd/Z-{iteration}")

    @staticmethod
    def _densely_centered(splits, mean):
        """Without the PCA option the mappers receive densely centered blocks."""
        return [
            [
                (
                    start,
                    np.asarray(
                        block.todense() if hasattr(block, "todense") else block
                    )
                    - mean,
                )
                for start, block in split
            ]
            for split in splits
        ]

    def _raw_splits(self, splits):
        return [[(start, block) for start, block in split] for split in splits]

    def _model_from_b(self, small, data, mean, n_rows, centered_input=False) -> PCAModel:
        _, singular_values, vt = np.linalg.svd(small, full_matrices=False)
        components = vt[: self.n_components].T
        total_variance = float(np.sum(singular_values**2)) / n_rows
        kept_variance = float(np.sum(singular_values[: self.n_components] ** 2)) / n_rows
        n_cols = data.shape[1]
        residual_dims = max(n_cols - self.n_components, 1)
        noise = max((total_variance - kept_variance) / residual_dims, 0.0)
        if centered_input:
            # The chain already centered the data; the model's mean is still
            # the original data mean so transforms/reconstructions line up.
            pass
        return PCAModel(
            components=components, mean=mean, noise_variance=noise, n_samples=n_rows
        )

    def _accuracy_point(self, splits, small, mean, jobs_start) -> tuple[float, float]:
        _, _, vt = np.linalg.svd(small, full_matrices=False)
        components = vt[: self.n_components].T
        # Centered-input runs (mean_propagation=False) score against the
        # already-centered splits with a zero mean; propagated runs score
        # against the raw splits with the real mean.
        error = self._error_job(splits, components, mean)
        run_jobs = self.runtime.metrics.jobs[jobs_start:]
        return self._algorithm_seconds(run_jobs), 1.0 - error

    def _error_job(self, splits, components, mean) -> float:
        if mean is None:
            mean = np.zeros(components.shape[0])
        ls_projector = components @ np.linalg.inv(components.T @ components)
        job = MapReduceJob(
            name="errorJob",
            mapper=mr.ErrorMapper(),
            reducer=mr.MatrixSumReducer(),
            config={
                "mean": mean,
                "components": components,
                "ls_projector": ls_projector,
                "sample_fraction": self.error_sample_fraction,
                "seed": self.seed,
                "mean_propagation": True,
            },
        )
        output = dict(self.runtime.run(job, splits))
        from repro.jobs.kernels import error_from_colsums

        return error_from_colsums(output[mr.KEY_RESIDUAL], output[mr.KEY_MAGNITUDE])

    @staticmethod
    def _algorithm_seconds(jobs) -> float:
        return sum(job.sim_seconds for job in jobs if job.name != "errorJob")
