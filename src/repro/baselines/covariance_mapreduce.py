"""Covariance PCA on MapReduce (Chu et al., NIPS 2006).

The Related Work section describes this approach: "they show that the
covariance matrix can efficiently be computed in the MapReduce model using
only one pass on the data.  Afterwards, they use a centralized algorithm to
obtain the eigenvectors.  The disadvantage ... is that it requires storing
the covariance matrix in the memory of one machine" -- fine for thin
matrices, infeasible for wide ones.  (The paper even borrows this pattern
for sPCA's XtX computation.)

One MapReduce job accumulates per-split partial Gramians and column sums
with a stateful combiner; the driver assembles the covariance and runs the
eigendecomposition.  A driver-memory budget models the single-machine
constraint, failing for large D exactly like the Spark-side MLlib analog.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.result import BaselineResult
from repro.core.model import PCAModel
from repro.engine.mapreduce.api import MapReduceJob, Mapper
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.errors import DriverOutOfMemoryError, ShapeError
from repro.jobs.mapreduce_jobs import MatrixSumReducer
from repro.linalg.blocks import Matrix, partition_rows

KEY_GRAM = "cov/gram"
KEY_SUMS = "cov/sums"
KEY_COUNT = "cov/count"


class GramianMapper(Mapper):
    """One pass: accumulate ``Y_blk' Y_blk`` (dense) and column sums."""

    def setup(self, ctx):
        self.gram = None
        self.sums = None
        self.count = 0

    def map(self, key, value, ctx):
        dense = np.asarray(
            value.todense() if hasattr(value, "todense") else value,
            dtype=np.float64,
        )
        partial = dense.T @ dense
        self.gram = partial if self.gram is None else self.gram + partial
        sums = dense.sum(axis=0)
        self.sums = sums if self.sums is None else self.sums + sums
        self.count += dense.shape[0]
        return ()

    def cleanup(self, ctx):
        if self.gram is not None:
            yield KEY_GRAM, self.gram
            yield KEY_SUMS, self.sums
            yield KEY_COUNT, self.count


class CovariancePCAMapReduce:
    """One-pass covariance + centralized eigendecomposition, on MapReduce.

    Args:
        n_components: number of principal components d.
        runtime: the MapReduce engine (fresh default cluster when omitted).
        driver_memory_bytes: single-machine memory budget for the D x D
            covariance; defaults to the runtime cluster's driver memory.
    """

    def __init__(
        self,
        n_components: int,
        runtime: MapReduceRuntime | None = None,
        driver_memory_bytes: int | None = None,
    ):
        if n_components < 1:
            raise ShapeError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.runtime = runtime or MapReduceRuntime()
        if driver_memory_bytes is None:
            driver_memory_bytes = self.runtime.cluster.driver_memory_bytes
        self.driver_memory_bytes = int(driver_memory_bytes)

    def fit(self, data: Matrix) -> BaselineResult:
        """One distributed pass + a driver-side eigendecomposition.

        Raises:
            DriverOutOfMemoryError: when the D x D covariance exceeds the
                driver memory budget (checked before any distributed work).
        """
        n_rows, n_cols = data.shape
        if self.n_components > min(n_rows, n_cols):
            raise ShapeError(
                f"n_components={self.n_components} exceeds min(N, D)"
            )
        gram_bytes = n_cols * n_cols * np.dtype(np.float64).itemsize
        if gram_bytes > self.driver_memory_bytes:
            raise DriverOutOfMemoryError(
                requested_bytes=gram_bytes,
                limit_bytes=self.driver_memory_bytes,
                what="D x D covariance matrix",
            )
        started = time.perf_counter()
        jobs_start = len(self.runtime.metrics.jobs)

        blocks = partition_rows(data, self.runtime.cluster.total_cores)
        splits = [[(block.start, block.data)] for block in blocks]
        job = MapReduceJob(
            name="covarianceJob",
            mapper=GramianMapper(),
            reducer=MatrixSumReducer(),
            combiner=MatrixSumReducer(),
        )
        output = dict(self.runtime.run(job, splits))
        gram = np.asarray(output[KEY_GRAM])
        mean = np.asarray(output[KEY_SUMS]).ravel() / output[KEY_COUNT]
        covariance = gram / n_rows - np.outer(mean, mean)

        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        components = eigenvectors[:, order[: self.n_components]]
        discarded = eigenvalues[order[self.n_components :]]
        noise = float(discarded.mean()) if discarded.size else 0.0

        run_jobs = self.runtime.metrics.jobs[jobs_start:]
        return BaselineResult(
            model=PCAModel(
                components=components,
                mean=mean,
                noise_variance=max(noise, 0.0),
                n_samples=n_rows,
            ),
            simulated_seconds=sum(j.sim_seconds for j in run_jobs),
            wall_seconds=time.perf_counter() - started,
            intermediate_bytes=sum(j.intermediate_bytes for j in run_jobs),
            peak_driver_bytes=gram_bytes,
        )
