"""Streaming PCA: fit principal components without holding the data.

sPCA's state is a small (D x d) matrix independent of the row count, so
PCA can be learned from a stream of row batches -- think a tweet firehose
feeding the Tweets matrix one hour at a time.  This example streams
mini-batches through :class:`IncrementalPPCA` and compares the result
against a full-data exact PCA.

Run with:  python examples/streaming_pca.py
"""

import numpy as np

from repro.data import bag_of_words
from repro.extensions import IncrementalPPCA
from repro.linalg import CenteredOperator
from repro.metrics import subspace_angle_degrees


def batch_stream(matrix, batch_size, n_passes):
    """Yield row batches, simulating several passes over a stream."""
    for _ in range(n_passes):
        for start in range(0, matrix.shape[0], batch_size):
            yield matrix[start : start + batch_size]


def main() -> None:
    n_docs, vocabulary, d = 12_000, 800, 6
    documents = bag_of_words(n_docs, vocabulary, words_per_doc=9.0, seed=17)

    algorithm = IncrementalPPCA(n_components=d, seed=5, step_decay=0.6)
    model = algorithm.partial_fit_stream(
        batch_stream(documents, batch_size=500, n_passes=12), n_cols=vocabulary
    )
    print(f"streamed {model.n_samples:,} rows in batches of 500 "
          f"(12 passes over {n_docs:,} documents)")

    # Exact reference via the mean-propagated operator (never densified).
    _, _, vt = CenteredOperator(documents).top_singular_subspace(d)
    angle = subspace_angle_degrees(model.basis, vt.T)
    print(f"angle to the exact top-{d} subspace: {angle:.1f} degrees")

    explained = np.linalg.norm(model.transform(documents), axis=0)
    print("latent column energies:", np.round(explained, 1))


if __name__ == "__main__":
    main()
