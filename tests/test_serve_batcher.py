"""The async micro-batcher: coalescing, deadlines, backpressure, shutdown.

pytest-asyncio is not a dependency; every test drives its own event loop
with ``asyncio.run``.  The headline property (hypothesis-driven at the
bottom) is the ISSUE acceptance bar: results of batched concurrent serving
are **bitwise identical** to sequential single-row transforms, across the
serial/threads/processes executors.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PCAModel
from repro.engine.exec import make_executor
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ShapeError,
)
from repro.serve import (
    BatchPolicy,
    MicroBatcher,
    ModelRegistry,
    PCAService,
)
from repro.serve import kernels

N_FEATURES = 10
N_COMPONENTS = 3


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return PCAModel(
        components=rng.normal(size=(N_FEATURES, N_COMPONENTS)),
        mean=rng.normal(size=N_FEATURES),
        noise_variance=0.15,
        n_samples=500,
    )


@pytest.fixture
def service(tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("m", _model())
    return PCAService(registry)


def _serve_all(service, rows, op="transform", batching=True, policy=None, **submit_kw):
    """Submit each row concurrently; returns (results, batcher stats)."""

    async def drive():
        batcher = MicroBatcher(service, policy, batching=batching)
        results = await asyncio.gather(
            *(batcher.submit(op, "m", row, **submit_kw) for row in rows)
        )
        await batcher.close()
        return results, batcher

    return asyncio.run(drive())


class TestCoalescing:
    def test_concurrent_requests_coalesce_into_few_batches(self, service):
        rows = np.random.default_rng(0).normal(size=(50, N_FEATURES))
        results, batcher = _serve_all(service, rows)
        assert batcher.batches_dispatched < 50
        assert len(results) == 50

    def test_unbatched_mode_dispatches_per_request(self, service):
        rows = np.random.default_rng(0).normal(size=(10, N_FEATURES))
        _, batcher = _serve_all(service, rows, batching=False)
        assert batcher.batches_dispatched == 10

    def test_size_threshold_flushes_early(self, service):
        rows = np.random.default_rng(0).normal(size=(30, N_FEATURES))
        policy = BatchPolicy(max_batch_rows=10, max_delay_s=60.0)
        results, batcher = _serve_all(service, rows, policy=policy)
        # With a one-minute timer only size-triggered flushes (plus the
        # close() drain) can have fired.
        assert len(results) == 30
        assert batcher.batches_dispatched >= 3

    def test_batched_results_bitwise_equal_reference(self, service):
        rows = np.random.default_rng(1).normal(size=(64, N_FEATURES))
        results, _ = _serve_all(service, rows)
        model = service.model("m")
        reference = kernels.reference_rows(model, "transform", rows)
        assert np.array_equal(np.vstack(results), reference)

    def test_multi_row_and_sparse_requests_mix(self, service):
        dense_block = np.random.default_rng(2).normal(size=(4, N_FEATURES))
        sparse_block = sp.random(
            3, N_FEATURES, density=0.5, random_state=3, format="csr"
        )
        single = np.arange(float(N_FEATURES))

        async def drive():
            batcher = MicroBatcher(service, BatchPolicy(max_delay_s=0.01))
            out = await asyncio.gather(
                batcher.submit("transform", "m", dense_block),
                batcher.submit("transform", "m", sparse_block),
                batcher.submit("transform", "m", single),
            )
            await batcher.close()
            return out

        dense_out, sparse_out, single_out = asyncio.run(drive())
        model = service.model("m")
        assert np.array_equal(
            dense_out, kernels.reference_rows(model, "transform", dense_block)
        )
        assert np.array_equal(
            sparse_out, kernels.reference_rows(model, "transform", sparse_block)
        )
        assert single_out.ndim == 1
        assert np.array_equal(single_out, model.transform(single[None, :])[0])


class TestFailureModes:
    def test_backpressure_rejects_over_limit(self, service):
        policy = BatchPolicy(max_batch_rows=1000, max_delay_s=60.0, max_queue_rows=5)

        async def drive():
            batcher = MicroBatcher(service, policy)
            row = np.zeros(N_FEATURES)
            accepted = [
                asyncio.ensure_future(batcher.submit("transform", "m", row))
                for _ in range(5)
            ]
            await asyncio.sleep(0)  # let the five submits enqueue their rows
            with pytest.raises(QueueFullError):
                await batcher.submit("transform", "m", row)
            await batcher.close()  # drains the five accepted requests
            results = await asyncio.gather(*accepted)
            assert batcher.requests_rejected == 1
            return results

        results = asyncio.run(drive())
        assert len(results) == 5
        assert all(isinstance(r, np.ndarray) for r in results)

    def test_deadline_expired_request_fails(self, service):
        async def drive():
            batcher = MicroBatcher(service, BatchPolicy(max_delay_s=0.05))
            task = asyncio.ensure_future(
                batcher.submit(
                    "transform", "m", np.zeros(N_FEATURES), deadline_s=0.0
                )
            )
            with pytest.raises(DeadlineExceededError):
                await task
            await batcher.close()
            assert batcher.requests_expired == 1

        asyncio.run(drive())

    def test_closed_batcher_rejects_submissions(self, service):
        async def drive():
            batcher = MicroBatcher(service)
            await batcher.close()
            with pytest.raises(ServiceClosedError):
                await batcher.submit("transform", "m", np.zeros(N_FEATURES))

        asyncio.run(drive())

    def test_close_without_drain_fails_queued_requests(self, service):
        async def drive():
            batcher = MicroBatcher(service, BatchPolicy(max_delay_s=60.0))
            task = asyncio.ensure_future(
                batcher.submit("transform", "m", np.zeros(N_FEATURES))
            )
            await asyncio.sleep(0)  # let the submit enqueue
            await batcher.close(drain=False)
            with pytest.raises(ServiceClosedError):
                await task

        asyncio.run(drive())

    def test_close_with_drain_completes_queued_requests(self, service):
        async def drive():
            batcher = MicroBatcher(service, BatchPolicy(max_delay_s=60.0))
            task = asyncio.ensure_future(
                batcher.submit("transform", "m", np.ones(N_FEATURES))
            )
            await asyncio.sleep(0)
            await batcher.close(drain=True)
            return await task

        result = asyncio.run(drive())
        model = service.model("m")
        assert np.array_equal(result, model.transform(np.ones((1, N_FEATURES)))[0])

    def test_unknown_op_rejected_at_admission(self, service):
        async def drive():
            async with MicroBatcher(service) as batcher:
                with pytest.raises(ShapeError):
                    await batcher.submit("fit", "m", np.zeros(N_FEATURES))

        asyncio.run(drive())

    def test_bad_policy_rejected(self):
        with pytest.raises(ShapeError):
            BatchPolicy(max_batch_rows=0)
        with pytest.raises(ShapeError):
            BatchPolicy(max_delay_s=-1.0)


# -- the acceptance property ------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=40),
    op=st.sampled_from(["transform", "project", "reconstruct", "score"]),
    max_batch_rows=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_batched_serving_bitwise_equals_sequential(
    tmp_path_factory, n_rows, op, max_batch_rows, seed
):
    """Micro-batched concurrent serving == sequential single-row, bit for bit."""
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    model = _model(3)
    registry.publish("m", model)
    service = PCAService(registry)
    rows = np.random.default_rng(seed).normal(size=(n_rows, N_FEATURES))
    policy = BatchPolicy(max_batch_rows=max_batch_rows, max_delay_s=0.001)

    results, _ = _serve_all(service, rows, op=op, policy=policy)
    served = (
        np.concatenate([np.ravel(r) for r in results])
        if op == "score"
        else np.vstack(results)
    )
    reference = kernels.reference_rows(model, op, rows)
    assert np.array_equal(served, reference)


@pytest.mark.parametrize("executor_name", ["serial", "threads", "processes"])
def test_batched_serving_bitwise_equal_across_executors(tmp_path, executor_name):
    """The executor used for intra-batch chunking cannot change a single bit."""
    registry = ModelRegistry(tmp_path)
    model = _model(9)
    registry.publish("m", model)
    rows = np.random.default_rng(42).normal(size=(48, N_FEATURES))
    reference = kernels.reference_rows(model, "transform", rows)

    if executor_name == "serial":
        service = PCAService(registry)
        results, _ = _serve_all(service, rows)
    else:
        with make_executor(executor_name, 2) as executor:
            service = PCAService(registry, executor=executor, chunk_rows=7)
            results, _ = _serve_all(service, rows)
    assert np.array_equal(np.vstack(results), reference)
