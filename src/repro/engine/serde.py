"""Serialized-size estimation for intermediate-data accounting.

The communication-complexity results of the paper are measured in bytes of
intermediate data.  Rather than actually serializing every record, the
engines estimate the wire size of each value with :func:`sizeof`, which
charges numpy buffers at their true byte size and Python scalars/containers
at small fixed overheads.  The estimates are deterministic, additive, and
close enough to any real encoding that byte *ratios* (the quantity the paper
reports: 961 GB vs 131 MB) are preserved.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

# Fixed per-object overheads, roughly matching compact binary encodings.
_SCALAR_BYTES = 8
_CONTAINER_OVERHEAD = 8


def sizeof(value: object) -> int:
    """Estimated serialized size of *value* in bytes."""
    if value is None:
        return 1
    if isinstance(value, (bool, int, float, np.integer, np.floating)):
        return _SCALAR_BYTES
    if isinstance(value, (str, bytes)):
        return len(value) + _CONTAINER_OVERHEAD
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + _CONTAINER_OVERHEAD
    if sp.issparse(value):
        csr = value.tocsr()
        return (
            int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
            + _CONTAINER_OVERHEAD
        )
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(
            sizeof(k) + sizeof(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(sizeof(item) for item in value)
    nbytes = getattr(value, "nbytes", None)
    if callable(nbytes):
        return int(nbytes()) + _CONTAINER_OVERHEAD
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes) + _CONTAINER_OVERHEAD
    # Fall back to the repr length; better to overcount odd objects than to
    # silently give them a free ride through the shuffle.
    return len(repr(value)) + _CONTAINER_OVERHEAD


def sizeof_pairs(pairs: Iterable[tuple[object, object]]) -> int:
    """Total serialized size of an iterable of (key, value) records."""
    return sum(sizeof(key) + sizeof(value) for key, value in pairs)
