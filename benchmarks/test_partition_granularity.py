"""Design-choice ablation: input partition granularity.

sPCA's mapper output is one partial (YtX, XtX) pair *per split*, so the
shuffle volume is proportional to the number of splits: finer partitioning
buys scheduling flexibility but multiplies communicated partials.  This is
the block-size trade-off every distributed matrix library faces; the bench
quantifies it on the Spark backend.
"""

import pytest

from harness import SPARK_COSTS, default_config, format_bytes
from repro.backends import SparkBackend
from repro.core import SPCA
from repro.data.generators import bag_of_words
from repro.data.paper import scaled_cluster
from repro.engine.spark.context import SparkContext

PARTITIONS_PER_CORE = (1, 2, 4)


@pytest.mark.benchmark(group="partition-granularity")
def test_partition_granularity(benchmark, report):
    data = bag_of_words(20_000, 3_000, words_per_doc=8.0, seed=66)
    config = default_config(max_iterations=3, compute_error_every_iteration=False)
    results = {}

    def run_all():
        for ppc in PARTITIONS_PER_CORE:
            backend = SparkBackend(
                config,
                SparkContext(cluster=scaled_cluster(), cost_model=SPARK_COSTS),
                partitions_per_core=ppc,
            )
            SPCA(config, backend).fit(data)
            results[ppc] = (backend.simulated_seconds, backend.intermediate_bytes)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("Partition granularity (Spark backend, 20000x3000, 3 iterations)")
    report(f"{'parts/core':>11}{'partitions':>12}{'sim s':>8}{'intermediate':>16}")
    cores = scaled_cluster().total_cores
    for ppc, (seconds, nbytes) in results.items():
        report(f"{ppc:>11}{ppc * cores:>12}{seconds:>8.1f}{format_bytes(nbytes):>16}")

    # Finer partitioning communicates more partial matrices.
    volumes = [results[ppc][1] for ppc in PARTITIONS_PER_CORE]
    assert volumes == sorted(volumes)
    assert volumes[-1] > 1.5 * volumes[0]
