"""Each DF rule fires on a minimal fixture and stays quiet on clean code."""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths, lint_source


def lint(source: str, select=None):
    return lint_source(textwrap.dedent(source), path="fixture.py", select=select)


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# DF001: array captured in a worker closure


def test_df001_flags_closure_captured_array():
    findings = lint(
        """
        import numpy as np

        def job(ctx, rdd):
            projector = np.ones((100, 10))
            return rdd.map(lambda row: row @ projector)
        """
    )
    assert codes(findings) == ["DF001"]
    assert "projector" in findings[0].message
    assert "broadcast" in findings[0].message


def test_df001_flags_annotated_parameter():
    findings = lint(
        """
        import numpy as np

        def job(ctx, rdd, mean: np.ndarray):
            return rdd.map(lambda row: row - mean)
        """
    )
    assert codes(findings) == ["DF001"]


def test_df001_clean_when_broadcast():
    findings = lint(
        """
        import numpy as np

        def job(ctx, rdd):
            projector = np.ones((100, 10))
            bc = ctx.broadcast(projector)
            return rdd.map(lambda row: row @ bc.value)
        """
    )
    assert codes(findings) == []


def test_df001_ignores_module_level_constants():
    # Module globals ship with the code, not the closure.
    findings = lint(
        """
        import numpy as np

        WEIGHTS = np.ones(10)

        def job(rdd):
            return rdd.map(lambda row: row @ WEIGHTS)
        """
    )
    assert codes(findings) == []


def test_df001_sees_through_helper_functions():
    # The lambda calls a local helper that itself captures the array.
    findings = lint(
        """
        import numpy as np

        def job(ctx, rdd):
            projector = np.ones((100, 10))

            def project(row):
                return row @ projector

            return rdd.map(lambda row: project(row))
        """
    )
    assert codes(findings) == ["DF001"]


# ---------------------------------------------------------------------------
# DF002: non-monoid combiner


def test_df002_flags_subtraction_in_combiner_lambda():
    findings = lint(
        """
        def job(rdd):
            return rdd.reduce_by_key(lambda a, b: a - b)
        """
    )
    assert codes(findings) == ["DF002"]
    assert "-" in findings[0].message


def test_df002_flags_division_in_reducer_class():
    findings = lint(
        """
        from repro.engine.mapreduce.api import Reducer

        class MeanReducer(Reducer):
            def reduce(self, key, values, ctx):
                yield key, sum(values) / len(values)
        """
    )
    assert codes(findings) == ["DF002"]


def test_df002_clean_for_addition():
    findings = lint(
        """
        def job(rdd):
            return rdd.reduce_by_key(lambda a, b: a + b)
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# DF003: driver-state mutation from worker code


def test_df003_flags_list_append_from_worker():
    findings = lint(
        """
        def job(rdd):
            results = []
            rdd.foreach(lambda row: results.append(row))
            return results
        """
    )
    assert codes(findings) == ["DF003"]
    assert "append" in findings[0].message


def test_df003_flags_subscript_store():
    findings = lint(
        """
        def job(rdd):
            totals = {}

            def tally(row):
                totals[row[0]] = row[1]

            rdd.foreach(tally)
        """
    )
    assert codes(findings) == ["DF003"]


def test_df003_clean_for_accumulators():
    findings = lint(
        """
        def job(ctx, rdd):
            total = ctx.accumulator(0.0)
            rdd.foreach(lambda row: total.add(row))
            return total.value
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# DF004: per-record partial emission from a Mapper


def test_df004_flags_per_record_partial():
    findings = lint(
        """
        from repro.engine.mapreduce.api import Mapper

        KEY = "partial"

        class NaiveMapper(Mapper):
            def map(self, key, value, ctx):
                yield KEY, value.T @ value
        """
    )
    assert codes(findings) == ["DF004"]
    assert "cleanup" in findings[0].message


def test_df004_clean_for_stateful_cleanup_combiner():
    findings = lint(
        """
        from repro.engine.mapreduce.api import Mapper

        KEY = "partial"

        class StatefulMapper(Mapper):
            def setup(self, ctx):
                self.partial = None

            def map(self, key, value, ctx):
                update = value.T @ value
                self.partial = update if self.partial is None else self.partial + update
                return ()

            def cleanup(self, ctx):
                yield KEY, self.partial
        """
    )
    assert codes(findings) == []


def test_df004_clean_for_keyed_passthrough():
    # Map-only materialization keyed by the record's own key is not
    # combiner input (XMaterializeMapper's pattern).
    findings = lint(
        """
        from repro.engine.mapreduce.api import Mapper

        class MaterializeMapper(Mapper):
            def map(self, key, value, ctx):
                yield key, value @ value.T
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# DF005: uncached loop RDD; nested action


def test_df005_flags_uncached_rdd_in_loop():
    findings = lint(
        """
        def em(ctx, data):
            rdd = ctx.parallelize(data)
            for _ in range(10):
                rdd.map(lambda r: r).collect()
        """
    )
    assert codes(findings) == ["DF005"]
    assert "cache" in findings[0].message


def test_df005_clean_when_cached():
    findings = lint(
        """
        def em(ctx, data):
            rdd = ctx.parallelize(data).cache()
            for _ in range(10):
                rdd.map(lambda r: r).collect()
        """
    )
    assert codes(findings) == []


def test_df005_flags_action_inside_transformation():
    findings = lint(
        """
        def job(rdd, other):
            return rdd.map(lambda row: (row, other.count()))
        """
    )
    assert codes(findings) == ["DF005"]
    assert "count" in findings[0].message


# ---------------------------------------------------------------------------
# CT001: static contract cross-check


def test_ct001_flags_conflicting_literal_shapes():
    findings = lint(
        """
        import numpy as np
        from repro.lint.contracts import contract

        @contract(block="matrix (b, D)", mean="dense (D,)")
        def kernel(block, mean):
            return block - mean

        def driver():
            return kernel(np.zeros((4, 7)), np.zeros(3))
        """
    )
    assert codes(findings) == ["CT001"]
    assert "D" in findings[0].message


def test_ct001_clean_for_consistent_shapes():
    findings = lint(
        """
        import numpy as np
        from repro.lint.contracts import contract

        @contract(block="matrix (b, D)", mean="dense (D,)")
        def kernel(block, mean):
            return block - mean

        def driver():
            return kernel(np.zeros((4, 7)), np.zeros(7))
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# suppression comments


def test_suppression_comment_silences_one_rule():
    findings = lint(
        """
        def job(rdd):
            return rdd.reduce_by_key(lambda a, b: a - b)  # repro-lint: disable=DF002
        """
    )
    assert codes(findings) == []


def test_suppression_on_def_header_covers_the_block():
    findings = lint(
        """
        from repro.engine.mapreduce.api import Mapper

        KEY = "partial"

        class AblationMapper(Mapper):
            def map(self, key, value, ctx):  # repro-lint: disable=DF004
                yield KEY, value.T @ value
                yield KEY, value @ value.T
        """
    )
    assert codes(findings) == []


def test_suppression_does_not_silence_other_rules():
    findings = lint(
        """
        def job(rdd):
            return rdd.reduce_by_key(lambda a, b: a - b)  # repro-lint: disable=DF001
        """
    )
    assert codes(findings) == ["DF002"]


# ---------------------------------------------------------------------------
# select + syntax errors + real code


def test_select_restricts_rules():
    source = """
        def job(rdd):
            results = []
            rdd.foreach(lambda row: results.append(row))
            return rdd.reduce_by_key(lambda a, b: a - b)
    """
    assert codes(lint(source)) == ["DF003", "DF002"] or set(codes(lint(source))) == {
        "DF002",
        "DF003",
    }
    assert codes(lint(source, select={"DF002"})) == ["DF002"]


def test_syntax_error_reported_as_finding():
    findings = lint("def broken(:\n")
    assert codes(findings) == ["E999"]


def test_repo_jobs_are_clean():
    # The real job modules lint clean (ablations carry explicit suppressions).
    assert lint_paths(["src/repro/jobs"]) == []
