"""Unit tests for row-block partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg import RowBlock, block_nbytes, iter_blocks, partition_rows, stack_blocks


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_partition_covers_all_rows_dense(rng):
    matrix = rng.normal(size=(17, 5))
    blocks = partition_rows(matrix, 4)
    assert sum(block.n_rows for block in blocks) == 17
    assert blocks[0].start == 0
    assert blocks[-1].stop == 17


def test_partition_round_trip_dense(rng):
    matrix = rng.normal(size=(23, 4))
    restored = stack_blocks(partition_rows(matrix, 5))
    np.testing.assert_allclose(restored, matrix)


def test_partition_round_trip_sparse(rng):
    matrix = sp.random(40, 12, density=0.2, random_state=3, format="csr")
    restored = stack_blocks(partition_rows(matrix, 7))
    assert (restored != matrix).nnz == 0


def test_partition_more_partitions_than_rows(rng):
    matrix = rng.normal(size=(3, 2))
    blocks = partition_rows(matrix, 10)
    assert len(blocks) == 3
    assert all(block.n_rows == 1 for block in blocks)


def test_partition_rejects_bad_args(rng):
    with pytest.raises(ShapeError):
        partition_rows(rng.normal(size=(3, 2)), 0)
    with pytest.raises(ShapeError):
        partition_rows(np.empty((0, 4)), 2)


def test_stack_rejects_gaps(rng):
    matrix = rng.normal(size=(10, 2))
    blocks = partition_rows(matrix, 5)
    del blocks[2]
    with pytest.raises(ShapeError):
        stack_blocks(blocks)


def test_stack_rejects_empty():
    with pytest.raises(ShapeError):
        stack_blocks([])


def test_iter_blocks_sorts_by_start(rng):
    matrix = rng.normal(size=(9, 2))
    blocks = partition_rows(matrix, 3)
    shuffled = [blocks[2], blocks[0], blocks[1]]
    assert [b.start for b in iter_blocks(shuffled)] == [b.start for b in blocks]


def test_block_nbytes_sparse_counts_index_structures():
    matrix = sp.random(30, 30, density=0.1, random_state=0, format="csr")
    expected = matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    assert block_nbytes(matrix) == expected


def test_block_nbytes_dense():
    matrix = np.zeros((4, 8))
    assert block_nbytes(matrix) == matrix.nbytes


def test_densified_preserves_values():
    matrix = sp.random(6, 5, density=0.4, random_state=1, format="csr")
    block = RowBlock(0, matrix)
    dense = block.densified()
    assert not dense.is_sparse
    np.testing.assert_allclose(dense.data, matrix.todense())


def test_row_block_properties():
    block = RowBlock(10, np.ones((4, 6)))
    assert block.n_rows == 4
    assert block.n_cols == 6
    assert block.stop == 14
    assert not block.is_sparse
