"""Findings, suppression comments, and report formatting.

A finding pins one rule violation to a file/line/column.  Suppressions use
pylint-style inline comments::

    bad_statement()  # repro-lint: disable=DF004

A suppression on the ``def``/``class`` header line covers the whole block, so
an intentional ablation class (the paper reproduces several bad dataflows on
purpose, to measure them) can be waived once, with a justification comment,
instead of line by line.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping; column is 1-based to match ``render``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Per-file suppression map: which codes are waived on which lines."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    block_spans: list[tuple[int, int, set[str]]] = field(default_factory=list)

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.by_line.get(finding.line)
        if codes is not None and (finding.code in codes or "all" in codes):
            return True
        for start, end, span_codes in self.block_spans:
            if start <= finding.line <= end and (
                finding.code in span_codes or "all" in span_codes
            ):
                return True
        return False


def _parse_line_comments(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed codes for every disable comment."""
    suppressed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        if codes:
            suppressed.setdefault(lineno, set()).update(codes)
    return suppressed


def collect_suppressions(source: str, tree: ast.Module) -> Suppressions:
    """Build the suppression map: inline comments plus block-header spans.

    A comment on the header line of a ``def``/``class`` (or on any of its
    decorator lines) suppresses the listed codes for the full block body.
    """
    by_line = _parse_line_comments(source)
    spans: list[tuple[int, int, set[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        header_lines = [node.lineno]
        header_lines.extend(dec.lineno for dec in node.decorator_list)
        codes: set[str] = set()
        for lineno in header_lines:
            codes.update(by_line.get(lineno, ()))
        if codes:
            spans.append((node.lineno, node.end_lineno or node.lineno, codes))
    return Suppressions(by_line=by_line, block_spans=spans)


def format_findings(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line, sorted by location."""
    return "\n".join(finding.render() for finding in sorted(findings))


def format_findings_json(findings: list[Finding]) -> str:
    """Machine-readable report: a JSON document with findings and a count."""
    payload = {
        "findings": [finding.to_dict() for finding in sorted(findings)],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _github_escape(text: str, *, property_value: bool = False) -> str:
    """Escape per GitHub's workflow-command data/property encoding rules."""
    escaped = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        escaped = escaped.replace(":", "%3A").replace(",", "%2C")
    return escaped


def format_findings_github(findings: list[Finding]) -> str:
    """GitHub Actions annotations: one ``::error`` workflow command per finding.

    Emitted to stdout inside a workflow step, these surface as inline PR
    annotations at the offending file/line.
    """
    lines = []
    for finding in sorted(findings):
        lines.append(
            "::error file={file},line={line},col={col},title={title}::{message}".format(
                file=_github_escape(finding.path, property_value=True),
                line=finding.line,
                col=finding.col + 1,
                title=_github_escape(f"repro-lint {finding.code}", property_value=True),
                message=_github_escape(f"{finding.code} {finding.message}"),
            )
        )
    return "\n".join(lines)
