"""Simulated wall-clock model.

The engines execute everything in one Python process, but they *measure* the
compute time of each simulated task and then reconstruct what a cluster
would have taken: task times are scheduled onto ``total_cores`` slots with a
longest-processing-time greedy (a standard 4/3-approximation of makespan,
and a good model of Hadoop/Spark slot scheduling), and every byte that moves
is charged at the configured bandwidth.

Two calibrated cost profiles are provided.  Their *absolute* values are
arbitrary (we are not claiming to predict EC2 seconds); what matters for the
reproduction is the *relative* structure the paper leans on:

- Hadoop pays a multi-second fixed overhead per job and materializes all
  map output and job output through disk (Section 5.2: "the overheads of the
  Hadoop framework and job initialization have a larger relative impact...").
- Spark pays a tiny per-job overhead and moves intermediate data through
  memory/network only.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class CostModel:
    """Bandwidths and overheads that convert work into simulated seconds.

    Attributes:
        per_job_overhead_s: fixed job submission/initialization latency.
        per_task_overhead_s: per-task scheduling/launch latency.
        network_bytes_per_s: aggregate cluster network bandwidth.
        disk_bytes_per_s: aggregate disk bandwidth.
        compute_scale: multiplier applied to measured task compute seconds
            (models slower/faster worker CPUs relative to the simulating
            machine).
    """

    per_job_overhead_s: float
    per_task_overhead_s: float
    network_bytes_per_s: float
    disk_bytes_per_s: float
    compute_scale: float = 1.0

    def network_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.network_bytes_per_s

    def disk_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.disk_bytes_per_s


HADOOP_LIKE_COSTS = CostModel(
    per_job_overhead_s=5.0,
    per_task_overhead_s=0.2,
    network_bytes_per_s=1.0 * 1024**3,
    disk_bytes_per_s=200.0 * 1024**2,
)

SPARK_LIKE_COSTS = CostModel(
    per_job_overhead_s=0.15,
    per_task_overhead_s=0.005,
    network_bytes_per_s=1.0 * 1024**3,
    disk_bytes_per_s=200.0 * 1024**2,
)


def _validated_durations(task_seconds, what: str) -> list[float]:
    """Coerce to floats, rejecting NaN/inf/negative values loudly.

    A negative or non-finite task time silently corrupts both the straggler
    median and the makespan heap (the greedy would *prefer* the poisoned
    slot forever), so bad inputs fail here with the offending value named.
    """
    durations = [float(t) for t in task_seconds]
    for index, duration in enumerate(durations):
        if not math.isfinite(duration) or duration < 0.0:
            raise ShapeError(
                f"{what}: task duration #{index} is {duration!r}; "
                "durations must be finite and >= 0"
            )
    return durations


def apply_speculative_execution(task_seconds, straggler_factor: float = 3.0):
    """Cap straggler tasks at a multiple of the stage's median task time.

    Both Hadoop and Spark launch speculative duplicates of tasks that run
    far behind their peers, so a single slow attempt does not set the stage
    time.  The simulator models this by capping each task's contribution at
    ``straggler_factor`` times the median -- which also keeps one-off
    timing hiccups of the *simulating* process (GC pauses etc.) from
    polluting the simulated timeline.
    """
    if straggler_factor <= 1.0:
        raise ShapeError(
            f"straggler_factor must be > 1, got {straggler_factor}"
        )
    durations = _validated_durations(task_seconds, "apply_speculative_execution")
    if not durations:
        return durations
    ordered = sorted(durations)
    mid = len(ordered) // 2
    # True median: even-length stages average the two middle elements, so
    # the cap is symmetric in the stage's tasks instead of biased to the
    # upper middle element (which let one straggler inflate its own cap).
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    ceiling = straggler_factor * median
    return [min(duration, ceiling) for duration in durations]


@dataclass(frozen=True)
class TaskPlacement:
    """Where and when the scheduler placed one task on the cluster.

    Attributes:
        task_id: index of the task in the input sequence.
        slot: execution slot (core) the task runs on.
        start: simulated start offset from the beginning of the phase.
        duration: the task's simulated running time.
    """

    task_id: int
    slot: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


def schedule_tasks(task_seconds, slots: int) -> list[TaskPlacement]:
    """Place tasks onto *slots* parallel slots, LPT-greedy, with timestamps.

    This exposes the scheduling *decisions* behind
    :func:`schedule_makespan` -- which slot each task lands on and when --
    so the tracing layer can draw the cluster's parallelism on a timeline.
    Returned placements are ordered by ``task_id``.  An empty task list
    yields an empty schedule (a phase with no tasks, e.g. the reduce phase
    of a map-only job); ``slots < 1`` is always an error, even then.
    """
    if slots < 1:
        raise ShapeError(f"slots must be >= 1, got {slots}")
    durations = _validated_durations(task_seconds, "schedule_tasks")
    if not durations:
        return []
    order = sorted(range(len(durations)), key=lambda i: durations[i], reverse=True)
    heap = [(0.0, slot) for slot in range(min(slots, len(durations)))]
    placements = []
    for task_id in order:
        load, slot = heapq.heappop(heap)
        placements.append(TaskPlacement(task_id, slot, load, durations[task_id]))
        heapq.heappush(heap, (load + durations[task_id], slot))
    placements.sort(key=lambda placement: placement.task_id)
    return placements


def schedule_makespan(task_seconds, slots: int) -> float:
    """Makespan of greedily scheduling tasks onto *slots* parallel slots.

    Longest-processing-time-first: sort descending, always assign to the
    least-loaded slot.  Returns the maximum slot load, i.e. how long the
    phase takes on the cluster.  An empty task list has makespan 0.
    """
    placements = schedule_tasks(task_seconds, slots)
    if not placements:
        return 0.0
    return max(placement.end for placement in placements)
