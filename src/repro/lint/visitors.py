"""AST dataflow visitors for the DF001-DF005 and CT001 rules.

The analysis is deliberately scoped to the dataflow idioms this codebase (and
the paper's implementations) actually use:

- *worker code* is any function object handed to an RDD transformation/action,
  to ``SparkContext.run_job``, or used as a combiner (``reduce_by_key`` /
  ``aggregate`` / ``Accumulator`` merge functions), plus ``reduce`` methods of
  ``Reducer``/``Combiner`` classes and ``map`` methods of ``Mapper`` classes;
- *driver state* is any name bound in an enclosing **function** scope of a
  worker closure (module-level names -- imports, constants, top-level
  functions -- are exempt: they exist on every worker);
- a name's *origin* is inferred from its binding: assigned from a
  ``numpy``/``scipy``/``kernels`` call or a matrix product -> array; assigned
  from ``*.broadcast(...)`` -> broadcast handle; from ``*.accumulator(...)``
  -> accumulator; a parameter annotated with an array type -> array.

Everything is a deterministic function of the source text: no imports of the
analyzed modules, no execution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.contracts import Spec, parse_spec

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda

# Methods whose function-valued argument(s) execute on workers.
WORKER_ARG_POSITIONS: dict[str, tuple[int, ...]] = {
    "map": (0,),
    "flat_map": (0,),
    "filter": (0,),
    "map_partitions": (0,),
    "map_partitions_with_index": (0,),
    "map_values": (0,),
    "zip_partitions": (1,),
    "foreach": (0,),
    "foreach_partition": (0,),
    "run_job": (1,),
    "sort_by": (0,),
}

# Methods whose function-valued argument(s) must be a commutative monoid
# (they also execute on workers).
COMBINER_ARG_POSITIONS: dict[str, tuple[int, ...]] = {
    "reduce_by_key": (0,),
    "reduce": (0,),
    "fold": (1,),
    "aggregate": (1, 2),
    "tree_aggregate": (1, 2),
    "accumulator": (1,),
}

# Names whose assigned call results are treated as (potentially large) arrays.
_ARRAY_CALL_ROOTS = {"np", "numpy", "sp", "scipy", "kernels"}

_ARRAY_ANNOTATION_MARKERS = ("ndarray", "Matrix", "spmatrix", "sparray", "csr_matrix", "NDArray")

# RDD-producing terminal method names for the DF005 cache analysis.
_RDD_PRODUCERS = {
    "parallelize",
    "from_hdfs",
    "map",
    "flat_map",
    "filter",
    "map_partitions",
    "map_partitions_with_index",
    "map_values",
    "zip_partitions",
    "zip_with_index",
    "union",
    "repartition",
    "coalesce",
    "sample",
    "glom",
    "distinct",
    "sort_by",
    "group_by_key",
    "reduce_by_key",
}

_RDD_ACTIONS_NO_ARGS = {"collect", "count", "first"}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "add",
    "sort",
    "reverse",
}

_KIND_ARRAY = "array"
_KIND_BROADCAST = "broadcast"
_KIND_ACCUMULATOR = "accumulator"
_KIND_FUNCTION = "function"
_KIND_OTHER = "other"


# ---------------------------------------------------------------------------
# small AST helpers


def _terminal_name(func: ast.expr) -> str | None:
    """``a.b.c(...)`` -> ``c``;  ``f(...)`` -> ``f``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted_root(expr: ast.expr) -> str | None:
    """Leftmost identifier of an attribute/call/subscript chain."""
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Yield every node in *root*'s own scope.

    Nested function/lambda/class nodes are yielded (so callers can recurse)
    but their bodies are not entered -- they are separate scopes.
    """
    if isinstance(root, ast.Lambda):
        stack: list[ast.AST] = [root.body]
    elif isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
        stack = list(root.body)
    else:
        stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _param_names(fn: FunctionNode) -> list[ast.arg]:
    args = fn.args
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        params.append(args.vararg)
    if args.kwarg:
        params.append(args.kwarg)
    return params


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _bound_names(fn: FunctionNode) -> set[str]:
    """Names local to *fn*: parameters plus every binding construct."""
    names = {param.arg for param in _param_names(fn)}
    declared_nonlocal: set[str] = set()
    for node in _iter_scope(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                names.add(node.name)
        elif isinstance(node, ast.comprehension):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_nonlocal.update(node.names)
    return names - declared_nonlocal


def _free_loads(fn: FunctionNode) -> list[tuple[str, ast.Name]]:
    """Name loads inside *fn* (and nested functions) not bound within *fn*."""
    results: list[tuple[str, ast.Name]] = []

    def visit(scope: FunctionNode, outer_bound: frozenset[str]) -> None:
        bound = outer_bound | frozenset(_bound_names(scope))
        for node in _iter_scope(scope):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in bound:
                    results.append((node.id, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(node, bound)

    visit(fn, frozenset())
    return results


def _is_array_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return any(marker in text for marker in _ARRAY_ANNOTATION_MARKERS)


def _rhs_origin(value: ast.expr) -> str:
    """Classify the origin of a value bound by an assignment."""
    if isinstance(value, ast.Call):
        terminal = _terminal_name(value.func)
        if terminal == "broadcast":
            return _KIND_BROADCAST
        if terminal == "accumulator":
            return _KIND_ACCUMULATOR
        if _dotted_root(value.func) in _ARRAY_CALL_ROOTS:
            return _KIND_ARRAY
        return _KIND_OTHER
    if isinstance(value, ast.BinOp):
        for sub in ast.walk(value):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.MatMult):
                return _KIND_ARRAY
    return _KIND_OTHER


# ---------------------------------------------------------------------------
# module model


@dataclass
class _ScopeInfo:
    """Per-function binding information."""

    node: FunctionNode
    enclosing: FunctionNode | None
    origins: dict[str, str] = field(default_factory=dict)
    local_defs: dict[str, FunctionNode] = field(default_factory=dict)


class ModuleModel:
    """Scope graph + origin map + worker-function set for one module."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.scopes: dict[int, _ScopeInfo] = {}
        self.module_names: set[str] = set()
        self.module_defs: dict[str, ast.FunctionDef] = {}
        # id(node) -> node for functions that run on workers / as combiners.
        self.worker_fns: dict[int, FunctionNode] = {}
        self.combiner_fns: dict[int, FunctionNode] = {}
        self._build()
        self._discover_workers()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        for node in _iter_scope(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_names.add(node.name)
                if isinstance(node, ast.FunctionDef):
                    self.module_defs[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self.module_names.update(_target_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                self.module_names.update(_target_names(node.target))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self.module_names.add((alias.asname or alias.name).split(".")[0])

        def visit_scope(owner: ast.AST, enclosing: FunctionNode | None) -> None:
            for node in _iter_scope(owner):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    self.scopes[id(node)] = self._scope_info(node, enclosing)
                    visit_scope(node, node)
                elif isinstance(node, ast.ClassDef):
                    # Methods of a (possibly nested) class: the class body is
                    # not a closure scope, so the enclosing function carries
                    # through unchanged.
                    visit_scope(node, enclosing)

        visit_scope(self.tree, None)

    def _scope_info(self, fn: FunctionNode, enclosing: FunctionNode | None) -> _ScopeInfo:
        info = _ScopeInfo(node=fn, enclosing=enclosing)
        for param in _param_names(fn):
            info.origins[param.arg] = (
                _KIND_ARRAY if _is_array_annotation(param.annotation) else _KIND_OTHER
            )
        for node in _iter_scope(fn):
            if isinstance(node, ast.Assign):
                origin = _rhs_origin(node.value)
                for target in node.targets:
                    for name in _target_names(target):
                        info.origins[name] = origin
            elif isinstance(node, ast.AnnAssign):
                if _is_array_annotation(node.annotation):
                    origin = _KIND_ARRAY
                elif node.value is not None:
                    origin = _rhs_origin(node.value)
                else:
                    origin = _KIND_OTHER
                for name in _target_names(node.target):
                    info.origins[name] = origin
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.origins[node.name] = _KIND_FUNCTION
                info.local_defs[node.name] = node
        return info

    def _discover_workers(self) -> None:
        for call, enclosing in self._calls_with_scope():
            terminal = _terminal_name(call.func)
            if terminal is None or not isinstance(call.func, ast.Attribute):
                continue
            for table, registry in (
                (WORKER_ARG_POSITIONS, self.worker_fns),
                (COMBINER_ARG_POSITIONS, self.combiner_fns),
            ):
                positions = table.get(terminal)
                if positions is None:
                    continue
                for position in positions:
                    if position >= len(call.args):
                        continue
                    fn = self._resolve_function(call.args[position], enclosing)
                    if fn is not None:
                        registry[id(fn)] = fn

    def _calls_with_scope(self) -> Iterator[tuple[ast.Call, FunctionNode | None]]:
        def visit(owner: ast.AST, enclosing: FunctionNode | None) -> None:
            for node in _iter_scope(owner):
                if isinstance(node, ast.Call):
                    yield_buffer.append((node, enclosing))
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    visit(node, node)
                elif isinstance(node, ast.ClassDef):
                    visit(node, enclosing)

        yield_buffer: list[tuple[ast.Call, FunctionNode | None]] = []
        visit(self.tree, None)
        yield from yield_buffer

    def _resolve_function(
        self, expr: ast.expr, enclosing: FunctionNode | None
    ) -> FunctionNode | None:
        if isinstance(expr, ast.Lambda):
            return expr
        if isinstance(expr, ast.Name):
            scope = enclosing
            while scope is not None:
                info = self.scopes[id(scope)]
                if expr.id in info.local_defs:
                    return info.local_defs[expr.id]
                scope = info.enclosing
            return self.module_defs.get(expr.id)
        return None

    # -- lookups ----------------------------------------------------------

    def enclosing_of(self, fn: FunctionNode) -> FunctionNode | None:
        info = self.scopes.get(id(fn))
        return info.enclosing if info is not None else None

    def resolve_origin(self, fn: FunctionNode, name: str) -> tuple[str, FunctionNode] | None:
        """Find *name* in the enclosing function chain of *fn*.

        Returns ``(origin_kind, defining_scope)`` or ``None`` when the name
        resolves to module scope / builtins (exempt: those exist everywhere).
        """
        scope = self.enclosing_of(fn)
        while scope is not None:
            info = self.scopes[id(scope)]
            if name in info.origins:
                return info.origins[name], scope
            scope = info.enclosing
        return None

    def resolve_local_def(self, fn: FunctionNode, name: str) -> FunctionNode | None:
        scope = self.enclosing_of(fn)
        while scope is not None:
            info = self.scopes[id(scope)]
            if name in info.local_defs:
                return info.local_defs[name]
            scope = info.enclosing
        return None

    def worker_group(self, fn: FunctionNode) -> list[FunctionNode]:
        """*fn* plus every function-scoped helper it (transitively) calls."""
        group: list[FunctionNode] = []
        seen: set[int] = set()
        queue = [fn]
        while queue:
            current = queue.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            group.append(current)
            for name, _ in _free_loads(current):
                helper = self.resolve_local_def(current, name)
                if helper is not None and id(helper) not in seen:
                    queue.append(helper)
        return group


# ---------------------------------------------------------------------------
# rule checks


def check_df001(model: ModuleModel) -> list[Finding]:
    """Array captured in a worker closure without going through Broadcast."""
    findings: list[Finding] = []
    reported: set[tuple[int, str]] = set()
    worker_entries = {**model.worker_fns, **model.combiner_fns}
    for entry in worker_entries.values():
        for member in model.worker_group(entry):
            for name, node in _free_loads(member):
                resolved = model.resolve_origin(member, name)
                if resolved is None:
                    continue
                kind, _scope = resolved
                if kind != _KIND_ARRAY:
                    continue
                key = (node.lineno, name)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        path=model.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="DF001",
                        message=(
                            f"array {name!r} captured in a worker closure; ship it "
                            "with context.broadcast(...) and read .value instead "
                            "(one copy per node, not per task -- paper Section 4.3)"
                        ),
                    )
                )
    return findings


def check_df002(model: ModuleModel) -> list[Finding]:
    """Combiner bodies must stay a commutative monoid: no -, /, //, %, reversed."""
    findings: list[Finding] = []

    def scan(body: ast.AST, where: str) -> None:
        for node in ast.walk(body):
            bad_op = None
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, (ast.Sub, ast.Div, ast.FloorDiv, ast.Mod)
            ):
                bad_op = {
                    ast.Sub: "-",
                    ast.Div: "/",
                    ast.FloorDiv: "//",
                    ast.Mod: "%",
                }[type(node.op)]
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "reversed"
            ):
                bad_op = "reversed()"
            if bad_op is not None:
                findings.append(
                    Finding(
                        path=model.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="DF002",
                        message=(
                            f"{where} uses order-sensitive {bad_op}; partial "
                            "aggregation must be commutative and associative "
                            "(combiners run in platform-chosen order -- Section 4.1)"
                        ),
                    )
                )

    for fn in model.combiner_fns.values():
        scan(fn, "combiner function")
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {_terminal_name(base) or "" for base in node.bases}
        if not any("Reducer" in name or "Combiner" in name for name in base_names):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "reduce":
                scan(item, f"combiner {node.name}.reduce")
    return findings


def check_df003(model: ModuleModel) -> list[Finding]:
    """Driver-side state must not be mutated from worker code."""
    findings: list[Finding] = []
    worker_entries = {**model.worker_fns, **model.combiner_fns}

    def report(node: ast.AST, detail: str) -> None:
        findings.append(
            Finding(
                path=model.path,
                line=node.lineno,
                col=node.col_offset,
                code="DF003",
                message=(
                    f"{detail} inside a worker closure double-counts under task "
                    "retry/speculative execution; use an accumulator (Section 4.2)"
                ),
            )
        )

    seen_members: set[int] = set()
    for entry in worker_entries.values():
        for member in model.worker_group(entry):
            if id(member) in seen_members:
                continue
            seen_members.add(id(member))
            free = {name for name, _ in _free_loads(member)}

            def is_driver_name(name: str) -> bool:
                resolved = model.resolve_origin(member, name)
                return resolved is not None and resolved[0] not in (
                    _KIND_ACCUMULATOR,
                    _KIND_BROADCAST,
                    _KIND_FUNCTION,
                )

            for node in ast.walk(member):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    report(node, f"rebinding of {', '.join(node.names)!s}")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            base = _dotted_root(target)
                            if base and base in free and is_driver_name(base):
                                report(node, f"store into driver-scope object {base!r}")
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr not in _MUTATOR_METHODS:
                        continue
                    base = node.func.value
                    if isinstance(base, ast.Name) and base.id in free and is_driver_name(base.id):
                        report(
                            node,
                            f"mutating call {base.id}.{node.func.attr}() on driver-scope object",
                        )
    return findings


def check_df004(model: ModuleModel) -> list[Finding]:
    """Per-record emission of computed partials under an aggregation key."""
    findings: list[Finding] = []
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {_terminal_name(base) or "" for base in node.bases}
        if not any("Mapper" in name for name in base_names):
            continue
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef) and item.name == "map"):
                continue
            params = [param.arg for param in _param_names(item)]
            key_param = params[1] if len(params) > 1 else None
            param_set = set(params)
            for sub in ast.walk(item):
                if not isinstance(sub, ast.Yield) or sub.value is None:
                    continue
                value = sub.value
                if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                    key_expr, val_expr = value.elts
                else:
                    key_expr, val_expr = None, value
                # Pass-through output keyed by the input record's own key is a
                # map-only materialization, not combiner input.
                if isinstance(key_expr, ast.Name) and key_expr.id == key_param:
                    continue
                # Echoing a parameter verbatim is the identity mapper.
                if isinstance(val_expr, ast.Name) and val_expr.id in param_set:
                    continue
                findings.append(
                    Finding(
                        path=model.path,
                        line=sub.lineno,
                        col=sub.col_offset,
                        code="DF004",
                        message=(
                            f"{node.name}.map emits a computed partial per record "
                            "under an aggregation key; accumulate across the split "
                            "and emit once from cleanup() (stateful combiner, "
                            "Section 4.1)"
                        ),
                    )
                )
    return findings


def check_df005(model: ModuleModel) -> list[Finding]:
    """Uncached RDD reused in a loop; action called inside a transformation."""
    findings: list[Finding] = []

    # (a) per function: RDD-producing assignment reused inside a loop, no cache().
    for info in list(model.scopes.values()):
        fn = info.node
        if isinstance(fn, ast.Lambda):
            continue
        produced: dict[str, ast.Assign] = {}
        cached: set[str] = set()
        for node in _iter_scope(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                terminal = _terminal_name(node.value.func)
                names = [
                    name for target in node.targets for name in _target_names(target)
                ]
                if terminal == "cache":
                    cached.update(names)
                elif (
                    terminal in _RDD_PRODUCERS
                    and isinstance(node.value.func, ast.Attribute)
                ):
                    for name in names:
                        produced[name] = node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "cache" and isinstance(node.func.value, ast.Name):
                    cached.add(node.func.value.id)
        if not produced:
            continue
        reported: set[str] = set()
        for node in _iter_scope(fn):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in produced
                    and sub.id not in cached
                    and sub.id not in reported
                ):
                    reported.add(sub.id)
                    findings.append(
                        Finding(
                            path=model.path,
                            line=sub.lineno,
                            col=sub.col_offset,
                            code="DF005",
                            message=(
                                f"RDD {sub.id!r} is reused inside a loop without "
                                "cache(); every iteration recomputes it from "
                                "lineage (cache the iterated RDD -- Section 4.2)"
                            ),
                        )
                    )

    # (b) action invoked inside worker code.
    worker_entries = {**model.worker_fns, **model.combiner_fns}
    seen: set[int] = set()
    for entry in worker_entries.values():
        for member in model.worker_group(entry):
            if id(member) in seen:
                continue
            seen.add(id(member))
            for node in ast.walk(member):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RDD_ACTIONS_NO_ARGS
                    and not node.args
                    and not node.keywords
                ):
                    findings.append(
                        Finding(
                            path=model.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="DF005",
                            message=(
                                f"action .{node.func.attr}() invoked inside a "
                                "transformation/worker closure runs a nested job "
                                "per task; collect on the driver instead"
                            ),
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# CT001: static cross-check of @contract shape symbols at literal call sites


@dataclass(frozen=True)
class ContractDecl:
    """Statically collected ``@contract`` declaration for one function."""

    name: str
    params: tuple[str, ...]
    specs: dict[str, Spec]


def collect_contract_decls(tree: ast.Module) -> dict[str, ContractDecl]:
    """Harvest ``@contract(...)`` decorators from a module's AST."""
    decls: dict[str, ContractDecl] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for decorator in node.decorator_list:
            if not (
                isinstance(decorator, ast.Call)
                and _terminal_name(decorator.func) == "contract"
            ):
                continue
            specs: dict[str, Spec] = {}
            for keyword in decorator.keywords:
                if keyword.arg is None or keyword.arg == "ret":
                    continue
                if isinstance(keyword.value, ast.Constant) and isinstance(
                    keyword.value.value, str
                ):
                    try:
                        specs[keyword.arg] = parse_spec(keyword.value.value)
                    except ValueError:
                        continue
            params = tuple(param.arg for param in _param_names(node))
            decls[node.name] = ContractDecl(node.name, params, specs)
    return decls


def _literal_shape(expr: ast.expr) -> tuple[int, ...] | None:
    """Shape of an argument when it is statically evident, else None."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        return ()
    if not isinstance(expr, ast.Call):
        return None
    terminal = _terminal_name(expr.func)
    if terminal in {"zeros", "ones", "empty", "full"} and expr.args:
        first = expr.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            return (first.value,)
        if isinstance(first, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, int) for e in first.elts
        ):
            return tuple(e.value for e in first.elts)  # type: ignore[misc]
    if terminal == "eye" and expr.args:
        dims = [
            arg.value
            for arg in expr.args[:2]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int)
        ]
        if len(dims) == len(expr.args[:2]):
            return (dims[0], dims[1] if len(dims) > 1 else dims[0])
    return None


def check_ct001(
    model: ModuleModel, contract_table: dict[str, ContractDecl]
) -> list[Finding]:
    """Unify literal call-site dimensions against contract shape symbols."""
    findings: list[Finding] = []
    if not contract_table:
        return findings
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        terminal = _terminal_name(node.func)
        decl = contract_table.get(terminal or "")
        if decl is None:
            continue
        bindings: dict[str, tuple[int, str]] = {}
        arguments = list(zip(decl.params, node.args)) + [
            (kw.arg, kw.value) for kw in node.keywords if kw.arg in decl.specs
        ]
        for param, expr in arguments:
            spec = decl.specs.get(param or "")
            if spec is None or spec.dims is None:
                continue
            shape = _literal_shape(expr)
            if shape is None:
                continue
            if len(shape) != len(spec.dims):
                findings.append(
                    Finding(
                        path=model.path,
                        line=expr.lineno,
                        col=expr.col_offset,
                        code="CT001",
                        message=(
                            f"call to {decl.name}: argument {param!r} has literal "
                            f"shape {shape} but the contract declares "
                            f"{spec.dims} ({len(spec.dims)} dimension(s))"
                        ),
                    )
                )
                continue
            for dim, actual in zip(spec.dims, shape):
                if isinstance(dim, int):
                    if dim != actual:
                        findings.append(
                            Finding(
                                path=model.path,
                                line=expr.lineno,
                                col=expr.col_offset,
                                code="CT001",
                                message=(
                                    f"call to {decl.name}: argument {param!r} has "
                                    f"dimension {actual} where the contract "
                                    f"requires {dim}"
                                ),
                            )
                        )
                    continue
                bound = bindings.get(dim)
                if bound is None:
                    bindings[dim] = (actual, param or "?")
                elif bound[0] != actual:
                    findings.append(
                        Finding(
                            path=model.path,
                            line=expr.lineno,
                            col=expr.col_offset,
                            code="CT001",
                            message=(
                                f"call to {decl.name}: argument {param!r} binds "
                                f"symbol {dim}={actual} but {dim}={bound[0]} was "
                                f"already bound by argument {bound[1]!r}"
                            ),
                        )
                    )
    return findings


def run_all_checks(
    model: ModuleModel, contract_table: dict[str, ContractDecl] | None = None
) -> list[Finding]:
    """Every rule over one module model."""
    # Imported here because exec_visitors builds on this module's helpers.
    from repro.lint.exec_visitors import run_exec_checks

    findings: list[Finding] = []
    findings.extend(check_df001(model))
    findings.extend(check_df002(model))
    findings.extend(check_df003(model))
    findings.extend(check_df004(model))
    findings.extend(check_df005(model))
    findings.extend(check_ct001(model, contract_table or {}))
    findings.extend(run_exec_checks(model))
    return findings
