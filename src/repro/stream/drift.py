"""Drift detection on the stream's subspace-delta telemetry.

The detector is *passive*: it watches the principal-subspace angle between
the current components and the components ``lag`` windows back (the same
:func:`~repro.metrics.subspace.subspace_angle_degrees` the evaluation
stack uses) and reports a :class:`DriftEvent` when the angle stays above a
threshold for ``patience`` consecutive windows.  It never mutates the
model -- reacting (re-seeding, widening the step size, alerting) is the
caller's policy -- so detection cannot perturb the bitwise-equivalence
guarantees of the pipeline.

After firing, the detector re-anchors: its comparison history is cleared
so the post-change regime becomes the new baseline instead of firing on
every subsequent window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.metrics.subspace import subspace_angle_degrees


@dataclass(frozen=True)
class DriftEvent:
    """A detected subspace regime change.

    Attributes:
        window_index: the window whose update confirmed the drift.
        end_row: absolute row index just past that window.
        angle_degrees: the subspace angle that confirmed it.
    """

    window_index: int
    end_row: int
    angle_degrees: float


class DriftDetector:
    """Fires when the model's subspace rotates persistently.

    Args:
        threshold_degrees: principal angle (vs the components ``lag``
            windows back) above which a window counts as drifting.
        lag: comparison distance in windows.  Small lags react faster but
            see less contrast; larger lags integrate the rotation.
        warmup: windows to observe before comparisons begin (the early
            stochastic-EM iterations rotate rapidly from the random start).
            Defaults to ``lag``.
        patience: consecutive drifting windows required to fire.  Values
            above 1 trade detection delay for noise immunity.
    """

    def __init__(
        self,
        threshold_degrees: float,
        *,
        lag: int = 3,
        warmup: int | None = None,
        patience: int = 1,
    ):
        if threshold_degrees <= 0:
            raise ShapeError(
                f"threshold_degrees must be > 0, got {threshold_degrees}"
            )
        if lag < 1:
            raise ShapeError(f"lag must be >= 1, got {lag}")
        if patience < 1:
            raise ShapeError(f"patience must be >= 1, got {patience}")
        self.threshold_degrees = float(threshold_degrees)
        self.lag = lag
        self.warmup = lag if warmup is None else warmup
        if self.warmup < lag:
            raise ShapeError(
                f"warmup must be >= lag ({lag}), got {self.warmup}"
            )
        self.patience = patience
        self._history: list[np.ndarray] = []
        self._observed = 0
        self._consecutive = 0

    def observe(
        self, window_index: int, end_row: int, components: np.ndarray
    ) -> tuple[float | None, DriftEvent | None]:
        """Feed one window's fitted components.

        Returns ``(angle, event)``: the measured lag-angle (None during
        warmup / refill) and the drift event, if this window confirmed one.
        """
        components = np.array(components, copy=True)
        self._observed += 1
        angle: float | None = None
        event: DriftEvent | None = None
        if len(self._history) >= self.lag and self._observed > self.warmup:
            angle = float(
                subspace_angle_degrees(components, self._history[-self.lag])
            )
            if angle >= self.threshold_degrees:
                self._consecutive += 1
            else:
                self._consecutive = 0
            if self._consecutive >= self.patience:
                event = DriftEvent(
                    window_index=window_index,
                    end_row=end_row,
                    angle_degrees=angle,
                )
                # Re-anchor on the post-change regime.
                self._history.clear()
                self._consecutive = 0
                self._observed = 1
        self._history.append(components)
        if len(self._history) > self.lag:
            self._history.pop(0)
        return angle, event

    def state(self) -> dict:
        """JSON-able snapshot of the detector's memory (checkpointing).

        Floats survive the JSON round trip exactly (shortest-repr), so a
        restored detector continues bit-identically.
        """
        return {
            "history": [basis.tolist() for basis in self._history],
            "observed": self._observed,
            "consecutive": self._consecutive,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self._history = [
            np.array(basis, dtype=np.float64) for basis in state["history"]
        ]
        self._observed = int(state["observed"])
        self._consecutive = int(state["consecutive"])
