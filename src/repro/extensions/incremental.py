"""Incremental (mini-batch) PPCA.

A natural extension of sPCA's design (its per-iteration state is only the
small ``(C, ss)`` pair, independent of N): instead of full-data EM passes,
process the rows in mini-batches and blend each batch's sufficient
statistics into running averages with a decaying step size.  This fits
datasets that stream in or do not fit in memory, at the cost of stochastic
rather than monotone convergence.

The update is stochastic EM (sEM): for batch t with step size
``eta_t = (t + 2)^(-kappa)``, the running moments are

    S_yx <- (1 - eta) * S_yx + eta * (Yc_t' X_t / |batch|)
    S_xx <- (1 - eta) * S_xx + eta * (X_t' X_t / |batch| + ss * M^-1)

and the M-step solves ``C = S_yx S_xx^-1`` exactly as in full EM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import PCAModel
from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.linalg.centered import centered_times, centered_transpose_times
from repro.linalg.stats import column_means


@dataclass
class IncrementalPPCA:
    """Mini-batch PPCA with stochastic EM updates.

    Args:
        n_components: latent dimensionality d.
        batch_size: rows per mini-batch.
        n_epochs: passes over the data.
        step_decay: kappa in ``eta_t = (t + 2)^-kappa``; 0.5 < kappa <= 1
            satisfies the Robbins-Monro conditions.
        seed: seed for initialization and row shuffling.
    """

    n_components: int
    batch_size: int = 256
    n_epochs: int = 5
    step_decay: float = 0.7
    seed: int = 0

    def fit(self, data: Matrix) -> PCAModel:
        """Stream over *data* in shuffled mini-batches; returns the model."""
        n_rows, n_cols = data.shape
        d = self.n_components
        if d > min(n_rows, n_cols):
            raise ShapeError(f"n_components={d} exceeds min(N, D)")
        if self.batch_size < 1:
            raise ShapeError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.5 < self.step_decay <= 1.0:
            raise ShapeError(
                f"step_decay must be in (0.5, 1], got {self.step_decay}"
            )
        rng = np.random.default_rng(self.seed)
        mean = column_means(data)
        components = rng.normal(size=(n_cols, d))
        ss = 1.0
        identity = np.eye(d)

        moment_yx: np.ndarray | None = None
        moment_xx: np.ndarray | None = None
        batch_index = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n_rows)
            for start in range(0, n_rows, self.batch_size):
                rows = np.sort(order[start : start + self.batch_size])
                batch = data[rows]
                moment = components.T @ components + ss * identity
                moment_inv = np.linalg.inv(moment)
                latent = centered_times(batch, mean, components @ moment_inv)
                size = batch.shape[0]
                batch_yx = centered_transpose_times(batch, mean, latent) / size
                batch_xx = latent.T @ latent / size + ss * moment_inv

                eta = (batch_index + 2.0) ** (-self.step_decay)
                moment_yx = (
                    batch_yx if moment_yx is None
                    else (1 - eta) * moment_yx + eta * batch_yx
                )
                moment_xx = (
                    batch_xx if moment_xx is None
                    else (1 - eta) * moment_xx + eta * batch_xx
                )
                components = moment_yx @ np.linalg.inv(moment_xx)

                # Batch estimate of the residual variance.
                residual = (
                    centered_times(batch, mean, np.eye(n_cols))
                    if n_cols <= 512
                    else None
                )
                if residual is not None:
                    reconstruction = latent @ components.T
                    batch_ss = float(
                        np.sum((residual - reconstruction) ** 2)
                    ) / (size * n_cols)
                else:
                    # Avoid the dense residual for very wide data: use the
                    # trace identity ||Yc||^2 - 2tr(X'YcC) + tr(XtX C'C).
                    from repro.linalg.frobenius import frobenius_sparse

                    ss1 = frobenius_sparse(batch, mean)
                    ss3 = float(np.sum(centered_times(batch, mean, components) * latent))
                    ss2 = float(
                        np.trace((latent.T @ latent + size * ss * moment_inv)
                                 @ components.T @ components)
                    )
                    batch_ss = (ss1 + ss2 - 2 * ss3) / (size * n_cols)
                ss = max((1 - eta) * ss + eta * batch_ss, 1e-12)
                batch_index += 1

        self.model_ = PCAModel(
            components=components, mean=mean, noise_variance=ss, n_samples=n_rows
        )
        return self.model_

    def partial_fit_stream(self, batches, n_cols: int) -> PCAModel:
        """Fit from an iterable of row batches without materializing them.

        Args:
            batches: iterable of (n_i, D) dense or sparse row blocks.  The
                column means are estimated online (streaming average).
            n_cols: the number of columns D.

        Returns:
            The fitted model (also stored as ``self.model_``).
        """
        rng = np.random.default_rng(self.seed)
        d = self.n_components
        components = rng.normal(size=(n_cols, d))
        ss = 1.0
        identity = np.eye(d)
        mean = np.zeros(n_cols)
        seen = 0
        moment_yx = None
        moment_xx = None
        for batch_index, batch in enumerate(batches):
            if batch.shape[1] != n_cols:
                raise ShapeError(
                    f"batch has {batch.shape[1]} columns, expected {n_cols}"
                )
            size = batch.shape[0]
            batch_mean = column_means(batch)
            mean = (seen * mean + size * batch_mean) / (seen + size)
            seen += size

            moment = components.T @ components + ss * identity
            moment_inv = np.linalg.inv(moment)
            latent = centered_times(batch, mean, components @ moment_inv)
            batch_yx = centered_transpose_times(batch, mean, latent) / size
            batch_xx = latent.T @ latent / size + ss * moment_inv
            eta = (batch_index + 2.0) ** (-self.step_decay)
            moment_yx = (
                batch_yx if moment_yx is None
                else (1 - eta) * moment_yx + eta * batch_yx
            )
            moment_xx = (
                batch_xx if moment_xx is None
                else (1 - eta) * moment_xx + eta * batch_xx
            )
            components = moment_yx @ np.linalg.inv(moment_xx)

            from repro.linalg.frobenius import frobenius_sparse

            ss1 = frobenius_sparse(batch, mean)
            ss3 = float(np.sum(centered_times(batch, mean, components) * latent))
            ss2 = float(
                np.trace((latent.T @ latent + size * ss * moment_inv)
                         @ components.T @ components)
            )
            ss = max(
                (1 - eta) * ss + eta * (ss1 + ss2 - 2 * ss3) / (size * n_cols),
                1e-12,
            )
        if seen == 0:
            raise ShapeError("the batch stream was empty")
        self.model_ = PCAModel(
            components=components, mean=mean, noise_variance=ss, n_samples=seen
        )
        return self.model_
