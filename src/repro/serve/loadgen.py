"""Load generator for the serving layer: the ``BENCH_serve`` suite.

Fires a storm of concurrent single-row requests at :class:`MicroBatcher`
twice -- micro-batching on, then off -- through otherwise identical
machinery, and reports sustained throughput plus nearest-rank p50/p90/p99
request latency for each mode.  Every scenario also replays its rows
through the sequential single-row reference (:func:`kernels.reference_rows`)
and records whether the served answers were **bitwise identical** -- the
speedup claim is only meaningful at equal correctness, so the document
carries both.

Wall-clock only, like the other perf suites: timings are of this simulator
on this machine (see ``provenance``); ratios are the meaningful quantity.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Any

import numpy as np

from repro.core.model import PCAModel
from repro.obs.metrics import METRICS_SCHEMA, collecting
from repro.serve import kernels
from repro.serve.api import PCAService
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.registry import ModelRegistry

BENCH_NAME = "BENCH_serve"

REQUIRED_PROVENANCE_FIELDS = {"git_sha", "cpu_count", "python", "platform"}
REQUIRED_SCENARIO_FIELDS = {
    "mode",
    "op",
    "requests",
    "wall_s",
    "throughput_rps",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "batches",
    "bitwise_equal",
}


def make_demo_model(
    n_features: int, n_components: int, seed: int = 0
) -> PCAModel:
    """A deterministic synthetic PPCA model for benchmarking/smoke tests."""
    rng = np.random.default_rng(seed)
    components, _ = np.linalg.qr(rng.normal(size=(n_features, n_components)))
    return PCAModel(
        components=components * rng.uniform(1.0, 3.0, size=n_components),
        mean=rng.normal(size=n_features),
        noise_variance=0.05,
        n_samples=1000,
    )


def percentile_ms(latencies_s: list[float], q: float) -> float:
    """Nearest-rank percentile (same convention as the metrics registry)."""
    if not latencies_s:
        return 0.0
    ordered = sorted(latencies_s)
    rank = max(1, int(np.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1] * 1e3


def run_scenario(
    service: PCAService,
    name: str,
    op: str,
    rows: np.ndarray,
    batching: bool,
    policy: BatchPolicy | None = None,
) -> dict:
    """Serve every row of *rows* as its own concurrent request; measure.

    Returns one BENCH_serve scenario entry.  ``bitwise_equal`` compares the
    concatenated request results against the sequential single-row
    reference -- batching/chunking must be invisible down to the bit.
    """
    model = service.model(name)

    async def drive() -> tuple[list[tuple[float, Any]], float, int]:
        batcher = MicroBatcher(service, policy, batching=batching)

        async def one(row: np.ndarray) -> tuple[float, Any]:
            started = time.perf_counter()
            result = await batcher.submit(op, name, row)
            return time.perf_counter() - started, result

        started = time.perf_counter()
        pairs = await asyncio.gather(*(one(row) for row in rows))
        wall = time.perf_counter() - started
        # close() awaits in-flight dispatches, so the batch counter
        # (incremented on the dispatcher thread) is settled afterwards.
        await batcher.close()
        return list(pairs), wall, batcher.batches_dispatched

    pairs, wall, batches = asyncio.run(drive())
    latencies = [latency for latency, _ in pairs]
    reference = kernels.reference_rows(model, op, rows)
    if op == "score":
        served = np.asarray([result[0] for _, result in pairs])
    else:
        served = np.vstack([result for _, result in pairs])
    return {
        "mode": "batched" if batching else "unbatched",
        "op": op,
        "requests": len(rows),
        "wall_s": wall,
        "throughput_rps": len(rows) / max(wall, 1e-12),
        "p50_ms": percentile_ms(latencies, 50),
        "p90_ms": percentile_ms(latencies, 90),
        "p99_ms": percentile_ms(latencies, 99),
        "batches": batches,
        "bitwise_equal": bool(np.array_equal(served, reference)),
    }


def run_serve_suite(quick: bool = False) -> dict:
    """Run the serving load benchmark; returns the BENCH_serve document.

    Full mode fires >= 1000 concurrent ``transform`` requests (the ISSUE
    acceptance bar) per mode; quick mode is a CI-sized smoke.  Both modes
    dispatch through identical machinery -- the only difference between the
    compared scenarios is whether requests coalesce.
    """
    if quick:
        n_requests, n_features, n_components = 200, 32, 4
        extra_ops: tuple[str, ...] = ()
    else:
        n_requests, n_features, n_components = 1500, 64, 8
        extra_ops = ("project", "reconstruct", "score")
    rng = np.random.default_rng(7)
    rows = rng.normal(size=(n_requests, n_features))
    model = make_demo_model(n_features, n_components, seed=3)
    policy = BatchPolicy(max_batch_rows=256, max_delay_s=0.002)

    scenarios = []
    with tempfile.TemporaryDirectory(prefix="spca-serve-bench-") as root:
        registry = ModelRegistry(root)
        registry.publish("bench", model)
        service = PCAService(registry)
        with collecting() as metrics:
            for batching in (False, True):
                scenarios.append(
                    run_scenario(service, "bench", "transform", rows, batching, policy)
                )
            for op in extra_ops:
                scenarios.append(
                    run_scenario(service, "bench", op, rows, True, policy)
                )
            snapshot = metrics.snapshot()

    by_mode = {s["mode"]: s for s in scenarios if s["op"] == "transform"}
    result = {
        "bench": BENCH_NAME,
        "quick": quick,
        "created_unix": time.time(),
        "provenance": _provenance(
            requests=n_requests,
            n_features=n_features,
            n_components=n_components,
            max_batch_rows=policy.max_batch_rows,
            max_delay_s=policy.max_delay_s,
        ),
        "scenarios": scenarios,
        "transform_speedup": (
            by_mode["unbatched"]["wall_s"] / max(by_mode["batched"]["wall_s"], 1e-12)
        ),
        "metrics": snapshot,
    }
    validate_serve(result)
    return result


def _provenance(**config: Any) -> dict:
    # benchmarks/perf/harness.py owns the canonical provenance stamper, but
    # src/ cannot import from benchmarks/; keep the fields identical.
    import os
    import pathlib
    import platform
    import subprocess

    repo_root = pathlib.Path(__file__).resolve().parents[3]
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "git_sha": git_sha,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        **config,
    }


def validate_serve(result: dict) -> None:
    """Schema check for a BENCH_serve document; raises ValueError on violation.

    Beyond shape, this enforces the acceptance bar: every scenario must be
    bitwise-identical to the sequential reference, full-mode runs must
    cover >= 1000 concurrent transform requests per mode, and the batched
    transform path must beat the unbatched one (at, therefore, equal
    correctness).  Quick runs skip the speedup assertion -- CI smoke shapes
    are too small for a stable ratio.
    """
    for field in ("bench", "quick", "created_unix", "scenarios", "transform_speedup"):
        if field not in result:
            raise ValueError(f"missing top-level field {field!r}")
    if result["bench"] != BENCH_NAME:
        raise ValueError(f"bench must be {BENCH_NAME!r}, got {result['bench']!r}")
    prov = result.get("provenance")
    if not isinstance(prov, dict):
        raise ValueError("missing top-level field 'provenance'")
    missing = REQUIRED_PROVENANCE_FIELDS - prov.keys()
    if missing:
        raise ValueError(f"provenance missing fields {sorted(missing)}")
    if not result["scenarios"]:
        raise ValueError("scenarios must be non-empty")
    modes = set()
    for scenario in result["scenarios"]:
        missing = REQUIRED_SCENARIO_FIELDS - scenario.keys()
        if missing:
            raise ValueError(
                f"scenario {scenario.get('mode')!r}/{scenario.get('op')!r} "
                f"missing fields {sorted(missing)}"
            )
        if scenario["op"] not in kernels.OPS:
            raise ValueError(f"unknown scenario op {scenario['op']!r}")
        if scenario["bitwise_equal"] is not True:
            raise ValueError(
                f"scenario {scenario['mode']!r}/{scenario['op']!r} is not "
                "bitwise-identical to the sequential reference"
            )
        for field in ("wall_s", "throughput_rps"):
            if not (isinstance(scenario[field], float) and scenario[field] > 0):
                raise ValueError(f"scenario field {field!r} must be positive")
        if scenario["op"] == "transform":
            modes.add(scenario["mode"])
            if not result["quick"] and scenario["requests"] < 1000:
                raise ValueError(
                    "full-mode transform scenarios need >= 1000 concurrent "
                    f"requests, got {scenario['requests']}"
                )
    if modes != {"batched", "unbatched"}:
        raise ValueError(
            f"need batched and unbatched transform scenarios, got {sorted(modes)}"
        )
    if not result["quick"] and result["transform_speedup"] <= 1.0:
        raise ValueError(
            "batched transform must beat unbatched at equal correctness; "
            f"measured speedup {result['transform_speedup']:.3f}x"
        )
    snapshot = result.get("metrics")
    if snapshot is not None:
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"metrics block schema must be {METRICS_SCHEMA!r}, "
                f"got {snapshot.get('schema')!r}"
            )
        served = [
            c
            for c in snapshot.get("counters", [])
            if c["name"] == "spca_serve_requests_total"
        ]
        if not served or sum(c["value"] for c in served) <= 0:
            raise ValueError("metrics block recorded no serve requests")


def summarize_serve(result: dict) -> str:
    prov = result["provenance"]
    lines = [
        f"{result['bench']}  (quick={result['quick']}, cpus={prov['cpu_count']}, "
        f"sha={prov['git_sha'][:12]})"
    ]
    lines.append(
        f"{'scenario':<24}{'requests':>9}{'rps':>10}{'p50 ms':>9}"
        f"{'p99 ms':>9}{'batches':>9}{'bitwise':>9}"
    )
    for scenario in result["scenarios"]:
        label = f"{scenario['mode']}/{scenario['op']}"
        lines.append(
            f"{label:<24}{scenario['requests']:>9}"
            f"{scenario['throughput_rps']:>10.0f}{scenario['p50_ms']:>9.2f}"
            f"{scenario['p99_ms']:>9.2f}{scenario['batches']:>9}"
            f"{str(scenario['bitwise_equal']):>9}"
        )
    lines.append(f"transform speedup (batched vs unbatched): "
                 f"{result['transform_speedup']:.2f}x")
    return "\n".join(lines)


__all__ = [
    "BENCH_NAME",
    "make_demo_model",
    "percentile_ms",
    "run_scenario",
    "run_serve_suite",
    "summarize_serve",
    "validate_serve",
]
