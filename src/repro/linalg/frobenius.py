"""Frobenius norm of the centered matrix (paper Section 3.4).

PPCA needs ``ss1 = ||Yc||_F^2`` where ``Yc = Y - 1*Ym'``.  Three
implementations are provided, mirroring the paper exactly:

- :func:`frobenius_centered_dense` -- the naive reference: densify and center.
- :func:`frobenius_simple` -- Algorithm 2: center one row at a time, keeping
  only a single dense row in memory, but still iterating over all D entries
  per row.
- :func:`frobenius_sparse` -- Algorithm 3: never densify at all.  First charge
  every row the norm of the mean vector (``msum``), then for each *non-zero*
  element replace the wrongly-charged ``Ym_j^2`` with ``(Y_ij - Ym_j)^2``.

The paper measures Algorithm 3 to be ~270x faster than Algorithm 2 on the
Tweets subset (Table 3); the speedup here comes from touching only ``nnz``
elements instead of ``N*D``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.lint.contracts import contract


def _check(matrix: Matrix, mean: np.ndarray) -> np.ndarray:
    mean = np.asarray(mean, dtype=np.float64).ravel()
    if mean.shape[0] != matrix.shape[1]:
        raise ShapeError(
            f"mean vector has length {mean.shape[0]} but the matrix has "
            f"{matrix.shape[1]} columns"
        )
    return mean


@contract(matrix="matrix (b, D)", mean="dense (D,)", ret="scalar")
def frobenius_centered_dense(matrix: Matrix, mean: np.ndarray) -> float:
    """Reference implementation: materialize ``Yc`` and take its norm."""
    mean = _check(matrix, mean)
    dense = np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
    centered = dense - mean
    return float(np.sum(centered * centered))


@contract(matrix="matrix (b, D)", mean="dense (D,)", ret="scalar")
def frobenius_simple(matrix: Matrix, mean: np.ndarray) -> float:
    """Algorithm 2: row-at-a-time centering with a dense scratch row.

    Memory use is O(D) instead of O(N*D), but the work is still O(N*D)
    because every (dense) entry of each centered row is visited.
    """
    mean = _check(matrix, mean)
    total = 0.0
    sparse = sp.issparse(matrix)
    csr = matrix.tocsr() if sparse else np.asarray(matrix)
    for i in range(matrix.shape[0]):
        if sparse:
            row = np.asarray(csr[i].todense()).ravel()
        else:
            row = csr[i]
        centered = row - mean
        total += float(centered @ centered)
    return total


@contract(matrix="matrix (b, D)", mean="dense (D,)", ret="scalar")
def frobenius_sparse(matrix: Matrix, mean: np.ndarray) -> float:
    """Algorithm 3: Frobenius norm touching only non-zero elements.

    For each row: start from ``msum = sum_j Ym_j^2`` (the row's norm if it
    were all zeros), then for every stored non-zero ``v`` at column ``j`` add
    ``(v - Ym_j)^2`` and subtract the ``Ym_j^2`` that msum already charged.

    Works for dense inputs too (every element is treated as stored), in which
    case it degenerates to the same O(N*D) cost as Algorithm 2.
    """
    mean = _check(matrix, mean)
    msum = float(mean @ mean)
    n_rows = matrix.shape[0]
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        values = csr.data
        cols = csr.indices
        mean_at = mean[cols]
        centered_sq = (values - mean_at) ** 2
        adjustment = float(np.sum(centered_sq) - np.sum(mean_at**2))
        return n_rows * msum + adjustment
    dense = np.asarray(matrix, dtype=np.float64)
    centered_sq = (dense - mean) ** 2
    return n_rows * msum + float(np.sum(centered_sq) - n_rows * msum)
