"""The MapReduce job runtime: split -> map -> combine -> shuffle -> reduce.

Execution is sequential inside one Python process, but the runtime measures
the compute time of every task and reconstructs the cluster timeline with
the cost model: task times are scheduled onto the cluster's cores, map
output is spilled to local disk and fetched over the network (the disk-based
platform's signature), and the per-job fixed overhead models Hadoop job
initialization.  All byte counts are real, measured from the records that
actually flowed.
"""

from __future__ import annotations

import copy
import time
import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.cluster import ClusterSpec
from repro.engine.exec import TaskExecutor, resolve_executor
from repro.engine.exec.resident import ResidentPayloadRef, resolve_payload
from repro.engine.mapreduce.api import MapReduceJob, Mapper, Reducer, TaskContext
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.engine.metrics import EngineMetrics, JobStats
from repro.engine.serde import sizeof_pairs
from repro.engine.simtime import (
    HADOOP_LIKE_COSTS,
    CostModel,
    apply_speculative_execution,
    schedule_tasks,
)
from repro.errors import InvalidPlanError, JobFailedError
from repro.faults import FaultInjector, FaultSite, RandomFaults
from repro.obs import EventTrace, JobTrace, PhaseTrace, TaskTrace, get_tracer

Pair = tuple[Any, Any]


class ResidentDataset:
    """An input dataset whose splits are pinned worker-resident.

    Driver-side code (metrics accounting, the ablation's latent join) sees
    the *real* splits through ``len``/iteration/indexing; the runtime ships
    the matching :class:`~repro.engine.exec.ResidentPayloadRef` to the
    executor instead, so after the pinning job the per-dispatch payload is
    O(model), not O(data).  Simulated HDFS read charges are still taken from
    the real splits -- residency is a driver-pipe optimization, not a change
    to what the modeled platform reads.
    """

    def __init__(
        self,
        splits: Sequence[Sequence[Pair]],
        refs: Sequence[ResidentPayloadRef],
    ):
        if len(splits) != len(refs):
            raise InvalidPlanError(
                f"resident dataset needs one ref per split, got "
                f"{len(splits)} splits and {len(refs)} refs"
            )
        self.splits: list[list[Pair]] = [list(split) for split in splits]
        self.refs: list[ResidentPayloadRef] = list(refs)

    def __len__(self) -> int:
        return len(self.splits)

    def __iter__(self):
        return iter(self.splits)

    def __getitem__(self, index):
        return self.splits[index]


def _partition_of(key: Any, num_partitions: int) -> int:
    """Deterministic key partitioner (Python's hash() is salted per run).

    The explicit ``& 0xFFFFFFFF`` pins the crc32 to its unsigned 32-bit
    value: pre-3.0 zlib (and C implementations reachable through shims)
    returned signed results, and a negative hash would silently flip
    partition assignments across platforms.
    """
    return (zlib.crc32(repr(key).encode()) & 0xFFFFFFFF) % num_partitions


def _partition_pairs(pairs: Sequence[Pair], num_partitions: int) -> list[list[Pair]]:
    """Bucket records by key in one pass, hashing each distinct repr once.

    Equivalent to calling :func:`_partition_of` per record, but the crc32 of
    a key's repr is computed only the first time that repr is seen -- sPCA
    shuffles carry a handful of distinct keys across thousands of records,
    so this removes the per-record hash from the shuffle's hot loop.
    """
    buckets: list[list[Pair]] = [[] for _ in range(num_partitions)]
    partition_of: dict[str, int] = {}
    for pair in pairs:
        key_repr = repr(pair[0])
        partition = partition_of.get(key_repr)
        if partition is None:
            partition = (zlib.crc32(key_repr.encode()) & 0xFFFFFFFF) % num_partitions
            partition_of[key_repr] = partition
        buckets[partition].append(pair)
    return buckets


def _instantiate(template):
    """Fresh per-task instance: classes are constructed, instances deep-copied."""
    if isinstance(template, type):
        return template()
    return copy.deepcopy(template)


# -- pure task bodies (shared by the serial loop and the executor path) ------
#
# Module-level so a ProcessPoolExecutor can pickle them by reference; they
# touch nothing but their arguments, which is what makes a stage's tasks
# safe to run in any order on any executor.


def _run_map_once(
    template, config: dict, job_name: str, split, task_id: int, enable_batch: bool
) -> tuple[list[Pair], TaskContext]:
    mapper: Mapper = _instantiate(template)
    ctx = TaskContext(job_name, task_id, dict(config))
    mapper.setup(ctx)
    if enable_batch:
        output = list(mapper.map_batch(split, ctx))
    else:
        # Per-record baseline: bypass any map_batch override.
        output = []
        for key, value in split:
            output.extend(mapper.map(key, value, ctx))
    output.extend(mapper.cleanup(ctx))
    return output, ctx


def _run_reduce_once(
    template, config: dict, job_name: str, pairs, task_id: int, enable_batch: bool
) -> tuple[list[Pair], TaskContext]:
    reducer: Reducer = _instantiate(template)
    ctx = TaskContext(job_name, task_id, dict(config))
    reducer.setup(ctx)
    groups: dict[Any, list[Any]] = defaultdict(list)
    for key, value in pairs:
        groups[key].append(value)
    ordered = [(key, groups[key]) for key in sorted(groups, key=repr)]
    if enable_batch:
        output = list(reducer.reduce_batch(ordered, ctx))
    else:
        output = []
        for key, values in ordered:
            output.extend(reducer.reduce(key, values, ctx))
    output.extend(reducer.cleanup(ctx))
    return output, ctx


@dataclass
class _StageTaskOutcome:
    """What one concurrently-executed task hands back for ordered commit.

    Pure data: the driver replays counters, fault accounting, and trace
    events from it in task-index order, which keeps every executor's side
    effects bit-identical to the serial loop.
    """

    ok: bool
    pairs: list[Pair] | None
    counters: dict[str, int]
    seconds: float
    retries: int
    fault_events: list[dict[str, Any]]
    failed_seconds: list[float]


def _execute_stage_task(payload) -> _StageTaskOutcome:
    """Run one task's full retry loop from a precomputed fault plan.

    ``payload`` is ``(kind, template, config, job_name, task_id, data,
    enable_batch, plan)`` where ``plan`` comes from
    :meth:`FaultInjector.plan_task`.  Everything observable is returned, not
    applied: the driver commits in task order.
    """
    kind, template, config, job_name, task_id, data, enable_batch, plan = payload
    # Worker-resident inputs arrive as a tiny ref; everything else passes
    # through untouched.
    data = resolve_payload(data)
    total_seconds = 0.0
    fault_events: list[dict[str, Any]] = []
    failed_seconds: list[float] = []
    for attempt, (factor, label) in enumerate(plan, 1):
        started = time.perf_counter()
        if kind == "map":
            result, ctx = _run_map_once(
                template, config, job_name, data, task_id, enable_batch
            )
        else:
            result, ctx = _run_reduce_once(
                template, config, job_name, data, task_id, enable_batch
            )
        elapsed = time.perf_counter() - started
        if factor != 1.0:
            elapsed *= factor
            fault_events.append(
                dict(fault="straggler", job=job_name, kind=kind,
                     task=task_id, attempt=attempt, factor=factor)
            )
        total_seconds += elapsed
        if label is None:
            return _StageTaskOutcome(
                ok=True, pairs=result, counters=dict(ctx.counters),
                seconds=total_seconds, retries=attempt - 1,
                fault_events=fault_events, failed_seconds=failed_seconds,
            )
        failed_seconds.append(elapsed)
        fault_events.append(
            dict(fault=label, job=job_name, kind=kind,
                 task=task_id, attempt=attempt)
        )
    return _StageTaskOutcome(
        ok=False, pairs=None, counters={}, seconds=total_seconds,
        retries=len(plan), fault_events=fault_events,
        failed_seconds=failed_seconds,
    )


class MapReduceRuntime:
    """Executes :class:`MapReduceJob` instances over a simulated cluster.

    Args:
        cluster: hardware description; its core count bounds task parallelism.
        cost_model: converts measured work into simulated seconds.
        hdfs: the simulated distributed filesystem (a fresh one by default).
        failure_rate: probability that any individual task attempt fails and
            is retried (fault-tolerance testing).  Shorthand for a
            :class:`~repro.faults.RandomFaults` injector.
        max_task_attempts: attempts before the whole job is declared failed,
            matching Hadoop's ``mapreduce.map.maxattempts`` default of 4.
        seed: seed for failure injection.
        faults: a :class:`~repro.faults.FaultInjector` consulted at every
            task attempt; overrides ``failure_rate``/``seed`` (which build
            the default ``RandomFaults(failure_rate, seed)``, bit-compatible
            with the historical inline coin flip).  Stage directives a plan
            issues for Spark-only faults (executor loss, driver memory caps)
            are ignored here: MapReduce tasks restart from durable HDFS.
        enable_batch: when True (default) tasks are dispatched through the
            ``map_batch``/``reduce_batch`` protocol, which vectorizing
            mappers override; when False every record goes through the
            per-record ``map``/``reduce`` hooks, ignoring batch overrides
            (the regression-harness baseline).
        executor: a :class:`~repro.engine.exec.TaskExecutor`, an executor
            name (``serial``/``threads``/``processes``), or None for serial.
            Concurrent executors run a stage's independent tasks in
            parallel; results commit in task-index order, so outputs,
            counters, byte totals, and trace-event multisets stay identical
            to serial.  With :class:`RandomFaults` the equivalence holds for
            every run that completes; a job that *fails* fatally leaves the
            generator at a different point than serial would (fault plans
            are drawn for all tasks up front).
        workers: worker count when ``executor`` is given by name.
    """

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        cost_model: CostModel = HADOOP_LIKE_COSTS,
        hdfs: InMemoryHDFS | None = None,
        failure_rate: float = 0.0,
        max_task_attempts: int = 4,
        seed: int = 0,
        enable_batch: bool = True,
        faults: FaultInjector | None = None,
        executor: TaskExecutor | str | None = None,
        workers: int | None = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise InvalidPlanError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self.cluster = cluster or ClusterSpec()
        self.cost_model = cost_model
        self.hdfs = hdfs or InMemoryHDFS()
        self.failure_rate = failure_rate
        self.max_task_attempts = max_task_attempts
        self.enable_batch = enable_batch
        self.metrics = EngineMetrics()
        self.faults = faults if faults is not None else RandomFaults(failure_rate, seed)
        self.executor = resolve_executor(executor, workers)

    # -- public API ------------------------------------------------------

    def run(
        self, job: MapReduceJob, input_data: str | Sequence[Sequence[Pair]]
    ) -> list[Pair]:
        """Run one job; returns its output records and records JobStats.

        Args:
            job: the job description.
            input_data: either an HDFS path (the file is read and split one
                split per core) or an explicit list of splits, each a list of
                (key, value) records.
        """
        started = time.perf_counter()
        stats = JobStats(
            name=job.name, output_is_intermediate=job.output_is_intermediate
        )
        # Stage-level directives (executor loss, driver caps) are Spark
        # concepts; calling begin_job still advances the plan's occurrence
        # counters so cross-engine plans stay aligned.
        self.faults.begin_job("mapreduce", job.name)
        splits, refs = self._resolve_splits(input_data, stats)
        stats.n_map_tasks = len(splits)

        map_outputs, map_times, map_retries = self._map_phase(
            job, splits, stats, refs
        )
        output, reduce_times, reduce_retries = self._reduce_phase(job, map_outputs, stats)

        if job.output_path is not None:
            stats.output_bytes = self.hdfs.write(job.output_path, output)
            stats.hdfs_write_bytes += stats.output_bytes
        else:
            stats.output_bytes = sizeof_pairs(output)

        stats.wall_seconds = time.perf_counter() - started
        stats.sim_seconds = self._simulate_timeline(
            stats, map_times, reduce_times, map_retries, reduce_retries
        )
        self.metrics.record(stats)
        return output

    # -- phases ----------------------------------------------------------

    def _resolve_splits(
        self, input_data, stats: JobStats
    ) -> tuple[list[list[Pair]], "list[ResidentPayloadRef] | None"]:
        if isinstance(input_data, str):
            records = self.hdfs.read(input_data)
            stats.hdfs_read_bytes += self.hdfs.size(input_data)
            num_splits = max(1, min(self.cluster.total_cores, len(records)))
            boundaries = np.linspace(0, len(records), num_splits + 1, dtype=int)
            return [
                records[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:]) if hi > lo
            ], None
        refs: list[ResidentPayloadRef] | None = None
        if isinstance(input_data, ResidentDataset):
            splits = input_data.splits
            refs = input_data.refs
        else:
            splits = [list(split) for split in input_data]
        if not splits:
            raise InvalidPlanError("job has no input splits")
        # MapReduce reads its input from the distributed filesystem on every
        # job -- this re-read is the disk-based platform's defining cost.
        # Charged from the *real* splits even when refs ship instead: worker
        # residency changes driver-pipe traffic, not modeled HDFS traffic.
        stats.hdfs_read_bytes += sum(sizeof_pairs(split) for split in splits)
        return splits, refs

    def _map_phase(
        self, job, splits, stats, refs=None
    ) -> tuple[list[list[Pair]], list[float], list[int]]:
        if self.executor.serial:
            map_outputs = []
            map_times = []
            map_retries = []
            for task_id, split in enumerate(splits):
                pairs, seconds, retries = self._attempt_task(
                    stats, lambda: self._run_map_task(job, split, task_id),
                    kind="map", task_id=task_id,
                )
                map_times.append(seconds)
                map_retries.append(retries)
                map_outputs.append(pairs)
        else:
            map_outputs, map_times, map_retries = self._run_phase_concurrent(
                job, "map", job.mapper, splits, stats, payload_datas=refs
            )
        stats.map_output_bytes = sum(sizeof_pairs(out) for out in map_outputs)
        if job.combiner is not None:
            if self.executor.serial:
                combined = []
                combine_times = []
                combine_retries = []
                for task_id, pairs in enumerate(map_outputs):
                    out, seconds, retries = self._attempt_task(
                        stats,
                        lambda: self._run_reduce_like(job.combiner, job, pairs, task_id),
                        kind="combine", task_id=task_id,
                    )
                    combine_times.append(seconds)
                    combine_retries.append(retries)
                    combined.append(out)
            else:
                combined, combine_times, combine_retries = (
                    self._run_phase_concurrent(
                        job, "combine", job.combiner, map_outputs, stats
                    )
                )
            for task_id, (seconds, retries) in enumerate(
                zip(combine_times, combine_retries)
            ):
                slot = min(task_id, len(map_times) - 1)
                map_times[slot] += seconds
                map_retries[slot] += retries
            map_outputs = combined
        return map_outputs, map_times, map_retries

    def _reduce_phase(
        self, job, map_outputs, stats
    ) -> tuple[list[Pair], list[float], list[int]]:
        all_pairs = [pair for output in map_outputs for pair in output]
        if job.reducer is None:
            return all_pairs, [], []
        stats.shuffle_bytes = sizeof_pairs(all_pairs)
        num_reducers = max(1, job.num_reducers)
        stats.n_reduce_tasks = num_reducers
        partitions = _partition_pairs(all_pairs, num_reducers)
        if self.executor.serial:
            output: list[Pair] = []
            reduce_times: list[float] = []
            reduce_retries: list[int] = []
            for task_id, partition in enumerate(partitions):
                pairs, seconds, retries = self._attempt_task(
                    stats,
                    lambda: self._run_reduce_like(job.reducer, job, partition, task_id),
                    kind="reduce", task_id=task_id,
                )
                reduce_times.append(seconds)
                reduce_retries.append(retries)
                output.extend(pairs)
            return output, reduce_times, reduce_retries
        outputs, reduce_times, reduce_retries = self._run_phase_concurrent(
            job, "reduce", job.reducer, partitions, stats
        )
        output = [pair for pairs in outputs for pair in pairs]
        return output, reduce_times, reduce_retries

    # -- concurrent stage execution ---------------------------------------

    def _run_phase_concurrent(
        self, job, kind: str, template, datas, stats: JobStats,
        payload_datas=None,
    ) -> tuple[list[list[Pair]], list[float], list[int]]:
        """Run one stage's independent tasks on the executor.

        Fault-injection decisions are precomputed per task (in ascending
        task-index order, matching the serial loop's draw order), the pure
        task bodies run in parallel, and every side effect -- counters,
        fault accounting, trace events, the job-fatal raise -- is committed
        from the returned outcomes in task-index order.

        *payload_datas*, when given, is what actually ships to the executor
        in place of ``datas`` (worker-resident refs standing in for pinned
        splits); task count and index order still follow ``datas``.
        """
        plans = [
            self.faults.plan_task(
                FaultSite("mapreduce", job.name, kind, task_id, 0),
                self.max_task_attempts,
            )
            for task_id in range(len(datas))
        ]
        config = dict(job.config)
        shipped = payload_datas if payload_datas is not None else datas
        payloads = [
            (kind, template, config, job.name, task_id, shipped[task_id],
             self.enable_batch, plans[task_id])
            for task_id in range(len(datas))
        ]
        outcomes = self.executor.run_tasks(
            _execute_stage_task, payloads, label=f"{job.name}/{kind}"
        )
        outputs: list[list[Pair]] = []
        times: list[float] = []
        retries_out: list[int] = []
        tracer = get_tracer()
        scale = self.cost_model.compute_scale
        for task_id, outcome in enumerate(outcomes):
            failed_index = 0
            for event in outcome.fault_events:
                if "factor" in event:  # straggler: attempt output still commits
                    stats.count_fault("straggler")
                else:
                    stats.task_retries += 1
                    stats.count_fault(event["fault"])
                    stats.recovery_sim_seconds += (
                        outcome.failed_seconds[failed_index] * scale
                    )
                    failed_index += 1
                if tracer.enabled:
                    tracer.event("fault_injected", **event)
            if not outcome.ok:
                raise JobFailedError(
                    f"job {stats.name!r}: {kind} task {task_id} failed "
                    f"{self.max_task_attempts} times"
                )
            for counter, amount in outcome.counters.items():
                stats.counters[counter] = stats.counters.get(counter, 0) + amount
            outputs.append(outcome.pairs)
            times.append(outcome.seconds)
            retries_out.append(outcome.retries)
        return outputs, times, retries_out

    # -- task execution --------------------------------------------------

    def _attempt_task(
        self, stats: JobStats, thunk, *, kind: str, task_id: int
    ) -> tuple[list[Pair], float, int]:
        total_seconds = 0.0
        for attempt in range(1, self.max_task_attempts + 1):
            started = time.perf_counter()
            result, ctx = thunk()
            elapsed = time.perf_counter() - started
            site = FaultSite("mapreduce", stats.name, kind, task_id, attempt)
            factor = self.faults.time_factor(site)
            if factor != 1.0:
                # A straggler stretches the attempt's simulated compute time
                # without touching its output; speculative execution's
                # 3x-median cap in the timeline handles the rest.
                elapsed *= factor
                stats.count_fault("straggler")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "fault_injected", fault="straggler", job=stats.name,
                        kind=kind, task=task_id, attempt=attempt, factor=factor,
                    )
            total_seconds += elapsed
            label = self.faults.fail(site)
            if label is None:
                # Counters commit only for the successful attempt -- a failed
                # attempt's side effects are discarded, exactly as Hadoop
                # discards the output of a killed task attempt.
                self._merge_counters(ctx, stats)
                return result, total_seconds, attempt - 1
            stats.task_retries += 1
            stats.count_fault(label)
            stats.recovery_sim_seconds += elapsed * self.cost_model.compute_scale
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "fault_injected", fault=label, job=stats.name,
                    kind=kind, task=task_id, attempt=attempt,
                )
        raise JobFailedError(
            f"job {stats.name!r}: {kind} task {task_id} failed "
            f"{self.max_task_attempts} times"
        )

    def _run_map_task(
        self, job: MapReduceJob, split, task_id: int
    ) -> tuple[list[Pair], TaskContext]:
        return _run_map_once(
            job.mapper, job.config, job.name, split, task_id, self.enable_batch
        )

    def _run_reduce_like(
        self, template, job, pairs, task_id: int
    ) -> tuple[list[Pair], TaskContext]:
        return _run_reduce_once(
            template, job.config, job.name, pairs, task_id, self.enable_batch
        )

    def _merge_counters(self, ctx: TaskContext, stats: JobStats) -> None:
        for counter, amount in ctx.counters.items():
            stats.counters[counter] = stats.counters.get(counter, 0) + amount

    # -- simulated timeline ----------------------------------------------

    def _simulate_timeline(
        self, stats, map_times, reduce_times, map_retries=(), reduce_retries=()
    ) -> float:
        cost = self.cost_model
        cores = self.cluster.total_cores
        capped_map = apply_speculative_execution(map_times)
        capped_reduce = apply_speculative_execution(reduce_times)
        map_tasks = [
            t * cost.compute_scale + cost.per_task_overhead_s for t in capped_map
        ]
        reduce_tasks = [
            t * cost.compute_scale + cost.per_task_overhead_s for t in capped_reduce
        ]
        map_schedule = schedule_tasks(map_tasks, cores)
        reduce_schedule = schedule_tasks(reduce_tasks, cores)
        map_makespan = max((p.end for p in map_schedule), default=0.0)
        reduce_makespan = max((p.end for p in reduce_schedule), default=0.0)

        seconds = cost.per_job_overhead_s
        read_start = seconds
        seconds += cost.disk_seconds(stats.hdfs_read_bytes)
        map_start = seconds
        seconds += map_makespan
        spill_start = seconds
        # Raw map output spills to local disk before combining (this is what
        # punishes jobs whose mappers emit a partial per record); the
        # combined output is fetched over the network and written once more
        # on the reduce side before reducing.
        seconds += cost.disk_seconds(stats.map_output_bytes)
        shuffle_start = seconds
        seconds += cost.disk_seconds(stats.shuffle_bytes)
        seconds += cost.network_seconds(stats.shuffle_bytes)
        reduce_start = seconds
        seconds += reduce_makespan
        write_start = seconds
        seconds += cost.disk_seconds(stats.hdfs_write_bytes)

        tracer = get_tracer()
        if tracer.enabled:
            stats.sim_seconds = seconds
            self._record_trace(
                stats,
                read_start=read_start, map_start=map_start,
                spill_start=spill_start, shuffle_start=shuffle_start,
                reduce_start=reduce_start, write_start=write_start,
                total=seconds,
                map_schedule=map_schedule, reduce_schedule=reduce_schedule,
                map_caps=(map_times, capped_map, map_retries),
                reduce_caps=(reduce_times, capped_reduce, reduce_retries),
            )
        return seconds

    def _record_trace(
        self, stats, *, read_start, map_start, spill_start, shuffle_start,
        reduce_start, write_start, total, map_schedule, reduce_schedule,
        map_caps, reduce_caps,
    ) -> None:
        """Hand the finished job's reconstructed timeline to the tracer."""

        def tasks_for(schedule, caps):
            raw, capped, retries = caps
            return [
                TaskTrace(
                    task_id=p.task_id,
                    slot=p.slot,
                    start=p.start,
                    duration=p.duration,
                    retries=retries[p.task_id] if p.task_id < len(retries) else 0,
                    speculative_kill=capped[p.task_id] < raw[p.task_id],
                    wall_seconds=raw[p.task_id],
                )
                for p in schedule
            ]

        phases = [PhaseTrace("job init", 0.0, read_start)]
        if stats.hdfs_read_bytes:
            phases.append(
                PhaseTrace("hdfs read", read_start, map_start - read_start,
                           attrs={"bytes": stats.hdfs_read_bytes})
            )
        phases.append(
            PhaseTrace("map", map_start, spill_start - map_start,
                       tasks=tasks_for(map_schedule, map_caps))
        )
        if stats.map_output_bytes:
            phases.append(
                PhaseTrace("map spill", spill_start, shuffle_start - spill_start,
                           attrs={"bytes": stats.map_output_bytes})
            )
        if stats.shuffle_bytes:
            phases.append(
                PhaseTrace("shuffle", shuffle_start, reduce_start - shuffle_start,
                           attrs={"bytes": stats.shuffle_bytes})
            )
        if reduce_schedule:
            phases.append(
                PhaseTrace("reduce", reduce_start, write_start - reduce_start,
                           tasks=tasks_for(reduce_schedule, reduce_caps))
            )
        if stats.hdfs_write_bytes:
            phases.append(
                PhaseTrace("hdfs write", write_start, total - write_start,
                           attrs={"bytes": stats.hdfs_write_bytes})
            )
        events = []
        if stats.hdfs_read_bytes:
            events.append(
                EventTrace("hdfs_read", read_start, {"bytes": stats.hdfs_read_bytes})
            )
        if stats.shuffle_bytes:
            events.append(
                EventTrace("shuffle", shuffle_start, {"bytes": stats.shuffle_bytes})
            )
        if stats.hdfs_write_bytes:
            events.append(
                EventTrace("hdfs_write", write_start, {"bytes": stats.hdfs_write_bytes})
            )
        get_tracer().record_job(JobTrace.from_stats(stats, phases=phases, events=events))
