"""Column statistics and row sampling helpers."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.lint.contracts import contract


@contract(matrix="matrix (b, D)", ret="dense (D,)")
def column_sums(matrix: Matrix) -> np.ndarray:
    """Column sums of a sparse or dense matrix as a dense float vector."""
    sums = matrix.sum(axis=0)
    return np.asarray(sums, dtype=np.float64).ravel()


@contract(matrix="matrix (b, D)", ret="dense (D,)")
def column_means(matrix: Matrix) -> np.ndarray:
    """Column means ``Ym`` of the input matrix.

    This is the quantity the paper's ``meanJob`` computes once before the EM
    loop starts (Algorithm 4, line 3).
    """
    n_rows = matrix.shape[0]
    if n_rows == 0:
        raise ShapeError("cannot take column means of a matrix with zero rows")
    return column_sums(matrix) / n_rows


@contract(matrix="matrix (b, D)", fraction="scalar", ret="matrix")
def sample_rows(matrix: Matrix, fraction: float, rng: np.random.Generator) -> Matrix:
    """Select a uniform random subset of rows (without replacement).

    Used both by the reconstruction-error estimator (Section 5, which samples
    rows to avoid iterating the full dense reconstruction) and by the
    smart-guess initializer (sPCA-SG, Section 5.2).

    Args:
        matrix: the input matrix.
        fraction: fraction of rows to keep, in (0, 1]; at least one row is
            always returned.
        rng: NumPy random generator (callers own seeding for determinism).
    """
    if not 0.0 < fraction <= 1.0:
        raise ShapeError(f"fraction must be in (0, 1], got {fraction}")
    n_rows = matrix.shape[0]
    count = max(1, int(round(n_rows * fraction)))
    index = rng.choice(n_rows, size=min(count, n_rows), replace=False)
    index.sort()
    if sp.issparse(matrix):
        return matrix.tocsr()[index]
    return np.asarray(matrix)[index]
