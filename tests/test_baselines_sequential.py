"""Sequential baseline algorithms: SSVD, SVD-Bidiag, Lanczos."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import bidiagonalize, lanczos_svd, stochastic_svd, svd_bidiag
from repro.errors import ShapeError
from repro.metrics import subspace_angle_degrees


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def lowrank(n, d_cols, rank, noise, rng):
    return rng.normal(size=(n, rank)) @ rng.normal(size=(rank, d_cols)) + noise * rng.normal(
        size=(n, d_cols)
    )


class TestStochasticSVD:
    def test_matches_exact_svd(self, rng):
        data = lowrank(200, 30, 5, 0.01, rng)
        u, s, vt = stochastic_svd(data, rank=5, power_iterations=2, seed=1)
        _, s_exact, vt_exact = np.linalg.svd(data, full_matrices=False)
        np.testing.assert_allclose(s, s_exact[:5], rtol=1e-3)
        assert subspace_angle_degrees(vt.T, vt_exact[:5].T) < 1.0

    def test_orthonormal_factors(self, rng):
        data = rng.normal(size=(100, 20))
        u, s, vt = stochastic_svd(data, rank=4, seed=2)
        np.testing.assert_allclose(u.T @ u, np.eye(4), atol=1e-10)
        np.testing.assert_allclose(vt @ vt.T, np.eye(4), atol=1e-10)
        assert np.all(np.diff(s) <= 1e-12)

    def test_power_iterations_improve_accuracy(self, rng):
        # Slowly decaying spectrum: the regime where power iterations matter.
        data = rng.normal(size=(300, 100))
        _, _, vt_exact = np.linalg.svd(data, full_matrices=False)
        angle_q0 = subspace_angle_degrees(
            stochastic_svd(data, 5, oversampling=2, power_iterations=0, seed=3)[2].T,
            vt_exact[:5].T,
        )
        angle_q4 = subspace_angle_degrees(
            stochastic_svd(data, 5, oversampling=2, power_iterations=4, seed=3)[2].T,
            vt_exact[:5].T,
        )
        assert angle_q4 < angle_q0

    def test_mean_propagation_equals_explicit_centering(self, rng):
        matrix = sp.random(150, 40, density=0.2, random_state=7, format="csr")
        mean = np.asarray(matrix.mean(axis=0)).ravel()
        _, s_prop, vt_prop = stochastic_svd(
            matrix, 4, power_iterations=3, seed=4, mean=mean
        )
        centered = np.asarray(matrix.todense()) - mean
        _, s_exact, vt_exact = np.linalg.svd(centered, full_matrices=False)
        np.testing.assert_allclose(s_prop, s_exact[:4], rtol=1e-2)
        # Random sparse noise has almost no spectral gaps, so the largest
        # principal angle converges slowly; 15 degrees distinguishes a
        # correct randomized method from a wrong subspace (~90 degrees).
        assert subspace_angle_degrees(vt_prop.T, vt_exact[:4].T) < 15.0

    def test_validation(self, rng):
        data = rng.normal(size=(10, 5))
        with pytest.raises(ShapeError):
            stochastic_svd(data, rank=0)
        with pytest.raises(ShapeError):
            stochastic_svd(data, rank=6, oversampling=0)
        with pytest.raises(ShapeError):
            stochastic_svd(data, rank=2, mean=np.zeros(3))


class TestBidiagonalize:
    def test_reconstruction(self, rng):
        matrix = rng.normal(size=(12, 8))
        u, bidiag, v = bidiagonalize(matrix)
        np.testing.assert_allclose(u @ bidiag @ v.T, matrix, atol=1e-10)

    def test_factors_orthonormal(self, rng):
        matrix = rng.normal(size=(15, 6))
        u, _, v = bidiagonalize(matrix)
        np.testing.assert_allclose(u.T @ u, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(v.T @ v, np.eye(6), atol=1e-10)

    def test_result_is_upper_bidiagonal(self, rng):
        matrix = rng.normal(size=(10, 10))
        _, bidiag, _ = bidiagonalize(matrix)
        mask = np.triu(np.tril(np.ones_like(bidiag), 1))
        np.testing.assert_allclose(bidiag * (1 - mask), 0.0, atol=1e-10)

    def test_wide_matrix_rejected(self, rng):
        with pytest.raises(ShapeError):
            bidiagonalize(rng.normal(size=(3, 5)))

    def test_rank_deficient(self, rng):
        column = rng.normal(size=(10, 1))
        matrix = column @ np.ones((1, 4))
        u, bidiag, v = bidiagonalize(matrix)
        np.testing.assert_allclose(u @ bidiag @ v.T, matrix, atol=1e-10)


class TestSVDBidiag:
    def test_matches_numpy_svd(self, rng):
        data = rng.normal(size=(40, 12))
        u, s, vt, _ = svd_bidiag(data)
        _, s_exact, vt_exact = np.linalg.svd(data, full_matrices=False)
        np.testing.assert_allclose(s, s_exact, atol=1e-8)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, data, atol=1e-8)

    def test_truncation(self, rng):
        data = rng.normal(size=(30, 10))
        u, s, vt, _ = svd_bidiag(data, n_components=3)
        assert u.shape == (30, 3)
        assert s.shape == (3,)
        assert vt.shape == (3, 10)

    def test_sparse_input_densified(self, rng):
        matrix = sp.random(25, 8, density=0.4, random_state=2, format="csr")
        _, s, _, _ = svd_bidiag(matrix)
        s_exact = np.linalg.svd(np.asarray(matrix.todense()), compute_uv=False)
        np.testing.assert_allclose(s, s_exact, atol=1e-8)

    def test_wide_rejected(self, rng):
        with pytest.raises(ShapeError):
            svd_bidiag(rng.normal(size=(5, 9)))

    def test_stats_reflect_table1_communication(self, rng):
        n, d_cols = 100, 20
        _, _, _, stats = svd_bidiag(rng.normal(size=(n, d_cols)))
        # QR intermediate dominates for tall matrices (the (N+D)d term).
        assert stats.qr_elements >= n * d_cols
        assert stats.max_elements == stats.qr_elements


class TestLanczos:
    def test_matches_exact_svd(self, rng):
        data = lowrank(120, 30, 6, 0.01, rng)
        _, s, vt = lanczos_svd(data, 4, seed=1)
        _, s_exact, vt_exact = np.linalg.svd(data, full_matrices=False)
        np.testing.assert_allclose(s, s_exact[:4], rtol=1e-4)
        assert subspace_angle_degrees(vt.T, vt_exact[:4].T) < 1.0

    def test_sparse_input(self, rng):
        matrix = sp.random(200, 50, density=0.1, random_state=9, format="csr")
        _, s, _ = lanczos_svd(matrix, 3, seed=2)
        s_exact = np.linalg.svd(np.asarray(matrix.todense()), compute_uv=False)
        np.testing.assert_allclose(s, s_exact[:3], rtol=1e-3)

    def test_centering_modes_agree(self, rng):
        matrix = sp.random(100, 25, density=0.25, random_state=4, format="csr")
        _, s_prop, vt_prop = lanczos_svd(matrix, 3, center="propagate", seed=3)
        _, s_dense, vt_dense = lanczos_svd(matrix, 3, center="densify", seed=3)
        np.testing.assert_allclose(s_prop, s_dense, rtol=1e-6)
        assert subspace_angle_degrees(vt_prop.T, vt_dense.T) < 0.5

    def test_centered_equals_svd_of_centered(self, rng):
        matrix = sp.random(80, 20, density=0.3, random_state=5, format="csr")
        _, s, _ = lanczos_svd(matrix, 3, center="propagate", seed=4)
        centered = np.asarray(matrix.todense())
        centered = centered - centered.mean(axis=0)
        s_exact = np.linalg.svd(centered, compute_uv=False)
        np.testing.assert_allclose(s, s_exact[:3], rtol=1e-4)

    def test_validation(self, rng):
        data = rng.normal(size=(10, 5))
        with pytest.raises(ShapeError):
            lanczos_svd(data, 0)
        with pytest.raises(ShapeError):
            lanczos_svd(data, 6)
        with pytest.raises(ShapeError):
            lanczos_svd(data, 2, center="bogus")
        with pytest.raises(ShapeError):
            lanczos_svd(data, 4, n_iterations=2)
