"""Shared fixtures for the reproduction benchmarks."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(request):
    """Write benchmark tables both to the terminal and to benchmarks/results/.

    The terminal reporter bypasses pytest's output capture, so the paper
    tables appear in ``pytest benchmarks/`` output (and in bench_output.txt)
    even for passing tests; the results directory keeps a durable copy per
    experiment for EXPERIMENTS.md.
    """
    terminal = request.config.pluginmanager.get_plugin("terminalreporter")
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = request.node.name.replace("/", "_")
    path = RESULTS_DIR / f"{stem}.txt"
    lines: list[str] = []

    def write(text: str = "") -> None:
        for line in str(text).split("\n"):
            lines.append(line)
            if terminal is not None:
                terminal.write_line(line)

    yield write
    path.write_text("\n".join(lines) + "\n")
