"""Efficient matrix multiplication patterns (paper Section 3.3).

Three patterns appear throughout sPCA:

1. **Broadcast multiply** (:func:`broadcast_times`): ``A * B`` where ``A`` is
   distributed row-wise and the small ``B`` fits in every worker's memory.
   Each worker computes ``A_i * B`` for its rows -- no transpose, no shuffle.

2. **Row-wise transpose-product accumulation**
   (:func:`transpose_times_accumulate`): ``A' * B = sum_r A_r' * B_r``
   (Equation 2).  Each worker accumulates a partial ``D x d`` sum over its
   rows; partials are combined with addition, which maps directly onto
   MapReduce combiners and Spark accumulators.

3. **Associativity trick** (:func:`xcy_associative`): the ss3 term needs
   ``X_i * C' * Y_i'`` per row (Equation 3).  Computing ``(X_i * C')`` first
   costs O(D*d) per row and wastes work on the zero entries of the sparse
   ``Y_i``; computing ``X_i * (C' * Y_i')`` instead costs O(z*d) where z is
   the number of non-zeros.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.lint.contracts import contract


@contract(block="matrix (b, D)", small="dense (D, d)", ret="dense (b, d)")
def broadcast_times(block: Matrix, small: np.ndarray) -> np.ndarray:
    """Multiply a distributed row block by a broadcast in-memory matrix.

    Args:
        block: rows of the distributed matrix ``A``, shape ``(n, D)``.
        small: the broadcast matrix ``B``, shape ``(D, d)``.

    Returns:
        Dense ``(n, d)`` product.
    """
    small = np.asarray(small, dtype=np.float64)
    if block.shape[1] != small.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: block is {block.shape}, small is {small.shape}"
        )
    return np.asarray(block @ small)


def transpose_times_accumulate(blocks, right_blocks) -> np.ndarray:
    """Compute ``A' * B`` as a sum of per-block partial products (Eq. 2).

    Args:
        blocks: iterable of row blocks of ``A`` (sparse or dense), each
            shape ``(n_i, D)``.
        right_blocks: iterable of the matching dense blocks of ``B``, each
            shape ``(n_i, d)``.

    Returns:
        Dense ``(D, d)`` product.

    Raises:
        ShapeError: on mismatched block row counts or an empty input.
    """
    total = None
    for left, right in zip(blocks, right_blocks, strict=True):
        right = np.asarray(right, dtype=np.float64)
        if left.shape[0] != right.shape[0]:
            raise ShapeError(
                f"block row counts disagree: {left.shape[0]} vs {right.shape[0]}"
            )
        partial = np.asarray(left.T @ right)
        total = partial if total is None else total + partial
    if total is None:
        raise ShapeError("cannot multiply zero blocks")
    return total


@contract(components="dense (D, d)", ret="scalar")
def xcy_associative(x_row: np.ndarray, components: np.ndarray, y_row: Matrix) -> float:
    """Compute ``x * C' * y'`` exploiting associativity (Equation 3).

    Evaluates ``x . (C' y')``: first project the (sparse) data row through
    ``C'`` -- touching only its non-zeros -- then take a d-dimensional dot
    product.  The naive order ``(x C') . y`` would materialize a dense
    D-vector per row.

    Args:
        x_row: latent row ``X_i``, length d.
        components: the current components ``C``, shape ``(D, d)``.
        y_row: data row ``Y_i``, sparse ``(1, D)`` or dense length-D array.

    Returns:
        The scalar ``X_i * C' * Y_i'``.
    """
    x_row = np.asarray(x_row, dtype=np.float64).ravel()
    components = np.asarray(components, dtype=np.float64)
    if components.shape[1] != x_row.shape[0]:
        raise ShapeError(
            f"components have {components.shape[1]} columns but x has length {x_row.shape[0]}"
        )
    if sp.issparse(y_row):
        csr = y_row.tocsr()
        if csr.shape[1] != components.shape[0]:
            raise ShapeError(
                f"y has {csr.shape[1]} columns but components have {components.shape[0]} rows"
            )
        # C' * y' touching only the non-zeros of y.
        projected = components[csr.indices].T @ csr.data
    else:
        y_dense = np.asarray(y_row, dtype=np.float64).ravel()
        if y_dense.shape[0] != components.shape[0]:
            raise ShapeError(
                f"y has length {y_dense.shape[0]} but components have {components.shape[0]} rows"
            )
        projected = components.T @ y_dense
    return float(x_row @ projected)


@contract(
    x_block="dense (b, d)",
    components="dense (D, d)",
    y_block="matrix (b, D)",
    ret="scalar",
)
def xcy_block(x_block: np.ndarray, components: np.ndarray, y_block: Matrix) -> float:
    """Vectorized form of :func:`xcy_associative` over a whole row block.

    Returns ``sum_i X_i * C' * Y_i' = trace(C' * Y' * X) = sum((Y @ C) * X)``.
    The contraction order keeps the sparse block sparse: ``Y @ C`` is a
    sparse-times-dense product of cost O(nnz * d).
    """
    x_block = np.asarray(x_block, dtype=np.float64)
    projected = np.asarray(y_block @ components)
    if projected.shape != x_block.shape:
        raise ShapeError(
            f"projected block has shape {projected.shape}, latent block {x_block.shape}"
        )
    return float(np.sum(projected * x_block))
