"""Property: the batched pipeline is indistinguishable from per-record.

The batch protocol is an optimization, not a semantics change: for any job
and any split shape, running with ``enable_batch=True`` must produce the
same output records, the same JobStats byte fields, the same counters, and
the same trace events as the per-record baseline.  Byte accounting must be
*bit-identical* -- the obs reconciliation invariants depend on it.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce import MapReduceJob, MapReduceRuntime, Mapper, SumReducer
from repro.engine.spark.context import SparkContext
from repro.obs import tracing

BYTE_FIELDS = (
    "map_output_bytes",
    "shuffle_bytes",
    "output_bytes",
    "hdfs_read_bytes",
    "hdfs_write_bytes",
    "driver_result_bytes",
    "broadcast_bytes",
)

SMALL_CLUSTER = ClusterSpec(num_nodes=1, cores_per_node=4)


class EmitTwiceMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.increment("records")
        yield key, value
        yield (key, "sq"), value * value


class StatefulSumMapper(Mapper):
    def setup(self, ctx):
        self.total = 0

    def map(self, key, value, ctx):
        self.total += value
        return ()

    def cleanup(self, ctx):
        yield "sum", self.total


class VectorizedMapper(Mapper):
    """A genuine batch override whose semantics match the per-record hook."""

    def map(self, key, value, ctx):
        ctx.increment("records")
        yield key, value * 7

    def map_batch(self, records, ctx):
        ctx.increment("records", len(records))
        return [(key, value * 7) for key, value in records]


MAPPERS = {
    "identity": Mapper,
    "emit_twice": EmitTwiceMapper,
    "stateful": StatefulSumMapper,
    "vectorized": VectorizedMapper,
}


@st.composite
def job_inputs(draw):
    n_records = draw(st.integers(min_value=1, max_value=20))
    keys = draw(
        st.lists(
            st.sampled_from(["YtX", "XtX", "mean/sums", "k0", "k1"]),
            min_size=n_records,
            max_size=n_records,
        )
    )
    values = draw(
        st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=n_records,
            max_size=n_records,
        )
    )
    records = list(zip(keys, values))
    n_splits = draw(st.integers(min_value=1, max_value=4))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_records),
                min_size=n_splits - 1,
                max_size=n_splits - 1,
            )
        )
    )
    edges = [0, *boundaries, n_records]
    splits = [records[lo:hi] for lo, hi in zip(edges[:-1], edges[1:])]
    splits = [split for split in splits if split] or [records]
    mapper = draw(st.sampled_from(sorted(MAPPERS)))
    use_reducer = draw(st.booleans())
    use_combiner = use_reducer and draw(st.booleans())
    num_reducers = draw(st.integers(min_value=1, max_value=3))
    return splits, mapper, use_reducer, use_combiner, num_reducers


def run_traced(enable_batch, splits, mapper, use_reducer, use_combiner, num_reducers):
    runtime = MapReduceRuntime(cluster=SMALL_CLUSTER, enable_batch=enable_batch)
    job = MapReduceJob(
        name="property",
        mapper=MAPPERS[mapper](),
        reducer=SumReducer() if use_reducer else None,
        combiner=SumReducer() if use_combiner else None,
        num_reducers=num_reducers,
    )
    with tracing() as tracer:
        output = runtime.run(job, splits)
    return output, runtime.metrics.jobs[0], tracer


@settings(max_examples=60, deadline=None)
@given(params=job_inputs())
def test_batch_equals_per_record(params):
    out_batch, stats_batch, trace_batch = run_traced(True, *params)
    out_plain, stats_plain, trace_plain = run_traced(False, *params)
    assert out_batch == out_plain
    for field in BYTE_FIELDS:
        assert getattr(stats_batch, field) == getattr(stats_plain, field), field
    assert stats_batch.counters == stats_plain.counters
    assert stats_batch.n_map_tasks == stats_plain.n_map_tasks
    assert stats_batch.n_reduce_tasks == stats_plain.n_reduce_tasks
    # Trace events agree in kind and in every byte attribute.  Timing-derived
    # events (speculative kills fire off measured wall time, which a GC pause
    # in the *simulating* process can perturb) are the only exclusion.
    def data_events(tracer):
        return [
            (e.type, e.attrs)
            for e in tracer.events
            if e.type != "speculative_kill"
        ]

    assert data_events(trace_batch) == data_events(trace_plain)
    batch_spans = [(s.kind, s.name) for s in trace_batch.spans]
    plain_spans = [(s.kind, s.name) for s in trace_plain.spans]
    assert batch_spans == plain_spans


# -- the real sPCA jobs, at fine record granularity -----------------------


DATA = sp.random(240, 30, density=0.2, random_state=5, format="csr")

CONFIG = SPCAConfig(
    n_components=3, max_iterations=4, tolerance=0.0, seed=11,
    compute_error_every_iteration=False,
)


def fit_mapreduce(enable_batch):
    runtime = MapReduceRuntime(cluster=SMALL_CLUSTER, enable_batch=enable_batch)
    backend = MapReduceBackend(CONFIG, runtime=runtime, records_per_split=6)
    model, _ = SPCA(CONFIG, backend).fit(DATA)
    return model, runtime.metrics


def fit_spark(enable_batch):
    context = SparkContext(cluster=SMALL_CLUSTER, enable_batch=enable_batch)
    backend = SparkBackend(CONFIG, context=context, records_per_partition=6)
    model, _ = SPCA(CONFIG, backend).fit(DATA)
    return model, context.metrics


def test_spca_mapreduce_batch_accounting_is_bit_identical():
    model_batch, metrics_batch = fit_mapreduce(True)
    model_plain, metrics_plain = fit_mapreduce(False)
    # Stacked kernels re-associate float sums, so results agree to close
    # tolerance rather than bitwise...
    np.testing.assert_allclose(
        model_batch.components, model_plain.components, rtol=1e-8, atol=1e-10
    )
    # ...but every byte of accounting must be bit-identical: the stateful
    # mappers emit once per split from cleanup either way, and stacking never
    # changes the shape, dtype, or sparsity pattern of what goes on the wire.
    jobs_batch = metrics_batch.jobs
    jobs_plain = metrics_plain.jobs
    assert [job.name for job in jobs_batch] == [job.name for job in jobs_plain]
    for job_b, job_p in zip(jobs_batch, jobs_plain):
        for field in BYTE_FIELDS:
            assert getattr(job_b, field) == getattr(job_p, field), (
                f"{job_b.name}: {field}"
            )


def test_spca_spark_batch_accounting_identical_except_accumulator_economy():
    model_batch, metrics_batch = fit_spark(True)
    model_plain, metrics_plain = fit_spark(False)
    np.testing.assert_allclose(
        model_batch.components, model_plain.components, rtol=1e-8, atol=1e-10
    )
    jobs_batch = metrics_batch.jobs
    jobs_plain = metrics_plain.jobs
    assert [job.name for job in jobs_batch] == [job.name for job in jobs_plain]
    for job_b, job_p in zip(jobs_batch, jobs_plain):
        for field in BYTE_FIELDS:
            if field == "driver_result_bytes":
                # The batch path sends one accumulator update per partition
                # instead of one per record -- genuinely less driver traffic
                # (the combiner economy of Section 4.2), never more.
                assert getattr(job_b, field) <= getattr(job_p, field), job_b.name
            else:
                assert getattr(job_b, field) == getattr(job_p, field), (
                    f"{job_b.name}: {field}"
                )


def test_spca_spark_default_layout_accounting_is_bit_identical():
    # At the historical one-record-per-partition layout the batch path is
    # never taken, so *every* field -- accumulator traffic included -- must
    # be bit-identical to the per-record baseline.
    def fit(enable_batch):
        context = SparkContext(cluster=SMALL_CLUSTER, enable_batch=enable_batch)
        backend = SparkBackend(CONFIG, context=context)
        SPCA(CONFIG, backend).fit(DATA)
        return context.metrics

    jobs_batch = fit(True).jobs
    jobs_plain = fit(False).jobs
    assert [job.name for job in jobs_batch] == [job.name for job in jobs_plain]
    for job_b, job_p in zip(jobs_batch, jobs_plain):
        for field in BYTE_FIELDS:
            assert getattr(job_b, field) == getattr(job_p, field), (
                f"{job_b.name}: {field}"
            )


def test_spca_batch_matches_per_record_across_backends():
    model_mr, _ = fit_mapreduce(True)
    model_spark, _ = fit_spark(True)
    np.testing.assert_allclose(
        model_mr.components, model_spark.components, rtol=1e-8, atol=1e-10
    )
