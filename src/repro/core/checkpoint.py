"""EM checkpointing: periodic snapshots of the driver's model state.

A long EM run on a real cluster survives driver restarts by writing its
small state -- C (D x d), ss, Ym, the iteration counter and the stop
tracker's memory -- to the distributed filesystem every few iterations; on
restart it reloads the newest snapshot and continues as if never killed.
The state is tiny compared to the data (that is the point of sPCA), so the
snapshot cost is one small HDFS round trip.

Two stores are provided: :class:`HDFSCheckpointStore` keeps snapshots in a
simulated :class:`~repro.engine.mapreduce.hdfs.InMemoryHDFS` (what the
engines model), and :class:`DirectoryCheckpointStore` persists them as
``.npz`` archives in a real directory (what the CLI ``resume`` subcommand
reads back).  Resuming is *exact*: the EM rng's bit-generator state is part
of the snapshot, so a resumed run reproduces the uninterrupted run's
iterations bit for bit.
"""

from __future__ import annotations

import abc
import pathlib
import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.convergence import IterationStats
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - engine import kept out of core's runtime
    from repro.engine.mapreduce.hdfs import InMemoryHDFS

_ITER_PATH = re.compile(r"iter-(\d+)$")


@dataclass(frozen=True)
class EMCheckpoint:
    """Everything the EM loop needs to continue from iteration + 1.

    Attributes:
        iteration: the 1-based iteration this snapshot was taken *after*.
        components: C after the iteration (D x d).
        noise_variance: ss after the iteration.
        mean: the column means Ym (computed once, before the loop).
        ss1: the centered Frobenius norm (computed once, before the loop).
        previous_error: the convergence tracker's last seen error.
        rng_state: the EM rng's ``bit_generator.state`` dict, captured after
            the iteration's draws -- restoring it makes every later draw
            identical to the uninterrupted run's.
        history: the per-iteration stats recorded so far.
        config: ``dataclasses.asdict`` of the run's :class:`SPCAConfig`;
            resume refuses a store written under a different configuration.
        nbytes: serialized snapshot size (filled in by the store on load).
    """

    iteration: int
    components: np.ndarray
    noise_variance: float
    mean: np.ndarray
    ss1: float
    previous_error: float | None
    rng_state: dict
    history: tuple[IterationStats, ...]
    config: dict
    nbytes: int = 0


class CheckpointStore(abc.ABC):
    """Where snapshots live; one store backs one run (and its resume)."""

    @abc.abstractmethod
    def save(self, checkpoint: EMCheckpoint) -> int:
        """Persist *checkpoint*; returns the serialized size in bytes."""

    @abc.abstractmethod
    def load_latest(self) -> EMCheckpoint | None:
        """Return the newest snapshot, or None when the store is empty."""

    @abc.abstractmethod
    def iterations(self) -> list[int]:
        """Sorted iteration numbers of every stored snapshot."""


class HDFSCheckpointStore(CheckpointStore):
    """Snapshots as record datasets in the simulated distributed FS.

    Each snapshot is one dataset of ``(field_name, value)`` records under
    ``{base_path}/iter-NNNNNN``, so its write and read are charged by the
    filesystem's byte accounting like any other dataset.
    """

    def __init__(self, hdfs: "InMemoryHDFS", base_path: str = "checkpoints"):
        self.hdfs = hdfs
        self.base_path = base_path.rstrip("/")

    def _path(self, iteration: int) -> str:
        return f"{self.base_path}/iter-{iteration:06d}"

    def save(self, checkpoint: EMCheckpoint) -> int:
        records = [
            ("iteration", checkpoint.iteration),
            ("components", checkpoint.components.copy()),
            ("noise_variance", checkpoint.noise_variance),
            ("mean", np.asarray(checkpoint.mean).copy()),
            ("ss1", checkpoint.ss1),
            ("previous_error", checkpoint.previous_error),
            ("rng_state", checkpoint.rng_state),
            ("history", checkpoint.history),
            ("config", dict(checkpoint.config)),
        ]
        return self.hdfs.write(self._path(checkpoint.iteration), records)

    def iterations(self) -> list[int]:
        found = []
        prefix = self.base_path + "/"
        for path in self.hdfs.listing():
            if not path.startswith(prefix):
                continue
            match = _ITER_PATH.search(path)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def load_latest(self) -> EMCheckpoint | None:
        stored = self.iterations()
        if not stored:
            return None
        path = self._path(stored[-1])
        fields = dict(self.hdfs.read(path))
        try:
            return EMCheckpoint(
                iteration=int(fields["iteration"]),
                components=fields["components"],
                noise_variance=float(fields["noise_variance"]),
                mean=fields["mean"],
                ss1=float(fields["ss1"]),
                previous_error=fields["previous_error"],
                rng_state=fields["rng_state"],
                history=tuple(fields["history"]),
                config=fields["config"],
                nbytes=self.hdfs.size(path),
            )
        except KeyError as missing:
            raise CheckpointError(
                f"checkpoint {path!r} is missing field {missing}"
            ) from None


class DirectoryCheckpointStore(CheckpointStore):
    """Snapshots as ``iter-NNNNNN.npz`` archives in a real directory."""

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _file(self, iteration: int) -> pathlib.Path:
        return self.path / f"iter-{iteration:06d}.npz"

    def save(self, checkpoint: EMCheckpoint) -> int:
        from repro.core.persistence import save_checkpoint

        target = save_checkpoint(checkpoint, self._file(checkpoint.iteration))
        return target.stat().st_size

    def iterations(self) -> list[int]:
        found = []
        for file in self.path.glob("iter-*.npz"):
            match = _ITER_PATH.search(file.stem)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def load_latest(self) -> EMCheckpoint | None:
        from repro.core.persistence import load_checkpoint

        stored = self.iterations()
        if not stored:
            return None
        file = self._file(stored[-1])
        checkpoint = load_checkpoint(file)
        return replace(checkpoint, nbytes=file.stat().st_size)


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where the EM loop snapshots its state.

    Attributes:
        store: destination for the snapshots.
        every: snapshot after every N-th iteration (1 = every iteration).
    """

    store: CheckpointStore
    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {self.every}"
            )

    def due(self, iteration: int) -> bool:
        return iteration % self.every == 0
