"""Property: the streaming pipeline equals the sequential reference, bitwise.

The acceptance contract of ``repro.stream``: for any arrival chunking of
the same row order, any window shape, either distributed engine, and any
executor, the streamed model is *bit-identical* to
``IncrementalPPCA.partial_fit_stream`` fed the slicing-oracle windows.
Nothing in the pipeline -- windower re-slicing, engine-side statistics
jobs, executor scheduling -- is allowed to re-associate a single float.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.generators import lowrank_dense
from repro.engine.cluster import ClusterSpec
from repro.engine.exec import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor
from repro.extensions.incremental import IncrementalPPCA
from repro.stream import (
    IterableSource,
    MatrixSource,
    StreamConfig,
    StreamingPCA,
    reference_windows,
)

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)
N_COLS = 10
DATA = lowrank_dense(180, N_COLS, 3, noise=0.1, seed=7)
SEED = 9

# Pools are expensive to spin up, so the whole module shares one of each.
THREADS = ThreadPoolTaskExecutor(workers=2)
PROCESSES = ProcessPoolTaskExecutor(workers=2)


@pytest.fixture(scope="module", autouse=True)
def _shared_pools():
    yield
    THREADS.shutdown()
    PROCESSES.shutdown()
    assert PROCESSES.registry.active_segments() == []


def stream_config(window, step=None, rows_per_task=16):
    return StreamConfig(
        n_components=3,
        window=window,
        step=step,
        seed=SEED,
        rows_per_task=rows_per_task,
    )


def reference_model(data, window, step=None):
    """The sequential oracle: slicing-oracle windows through the shared
    sEM step, no windower / engine / executor in the path."""
    windows = reference_windows(data, stream_config(window, step).spec())
    return IncrementalPPCA(3, seed=SEED).partial_fit_stream(
        (w.rows for w in windows), n_cols=data.shape[1]
    )


def assert_models_bitwise(model, oracle, context=""):
    assert np.array_equal(model.components, oracle.components), context
    assert np.array_equal(model.mean, oracle.mean), context
    assert model.noise_variance == oracle.noise_variance, context
    assert model.n_samples == oracle.n_samples, context


def cut_chunks(sizes, total_rows):
    out, left = [], total_rows
    for size in sizes:
        take = min(size, left)
        if take:
            out.append(take)
        left -= take
    if left:
        out.append(left)
    return out


@st.composite
def stream_cases(draw):
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=90), min_size=1, max_size=8)
    )
    window = draw(st.integers(min_value=20, max_value=60))
    sliding = draw(st.booleans())
    step = max(1, window // 2) if sliding else None
    return cut_chunks(sizes, DATA.shape[0]), window, step


@pytest.mark.parametrize("engine", ["mapreduce", "spark"])
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(case=stream_cases())
def test_property_any_chunking_any_window_matches_reference(engine, case):
    chunk_sizes, window, step = case
    pieces, start = [], 0
    for size in chunk_sizes:
        pieces.append(DATA[start : start + size])
        start += size
    result = StreamingPCA(stream_config(window, step), engine, cluster=CLUSTER).run(
        IterableSource(pieces, n_cols=N_COLS)
    )
    assert_models_bitwise(
        result.model,
        reference_model(DATA, window, step),
        f"{engine} window={window} step={step} chunks={chunk_sizes}",
    )


@pytest.mark.parametrize("engine", ["sequential", "mapreduce", "spark"])
@pytest.mark.parametrize("executor_name", ["serial", "threads", "processes"])
def test_engine_executor_matrix_is_bitwise(engine, executor_name):
    executor = {"serial": None, "threads": THREADS, "processes": PROCESSES}[
        executor_name
    ]
    result = StreamingPCA(
        stream_config(window=45), engine, executor=executor, cluster=CLUSTER
    ).run(MatrixSource(DATA, chunk_rows=37))
    assert_models_bitwise(
        result.model,
        reference_model(DATA, window=45),
        f"{engine}/{executor_name}",
    )


@pytest.mark.parametrize("engine", ["mapreduce", "spark"])
def test_sliding_windows_match_reference_across_engines(engine):
    result = StreamingPCA(
        stream_config(window=40, step=15), engine, cluster=CLUSTER
    ).run(MatrixSource(DATA, chunk_rows=52))
    assert_models_bitwise(
        result.model, reference_model(DATA, window=40, step=15), engine
    )


@pytest.mark.parametrize("engine", ["sequential", "mapreduce"])
def test_sparse_csr_stream_matches_reference(engine):
    rng = np.random.default_rng(13)
    dense = rng.normal(size=(150, 12)) * (rng.random(size=(150, 12)) < 0.3)
    matrix = sp.csr_matrix(dense)
    windows = reference_windows(matrix, StreamConfig(
        n_components=2, window=40, seed=SEED
    ).spec())
    oracle = IncrementalPPCA(2, seed=SEED).partial_fit_stream(
        (w.rows for w in windows), n_cols=12
    )
    result = StreamingPCA(
        StreamConfig(n_components=2, window=40, seed=SEED, rows_per_task=16),
        engine,
        cluster=CLUSTER,
    ).run(MatrixSource(matrix, chunk_rows=33))
    assert_models_bitwise(result.model, oracle, engine)


def test_engines_account_the_shipped_rows():
    # The distributed run is not free: every window's rows flow through the
    # engine's byte accounting, one job per window (two narrow stages on
    # Spark), dispatched like any batch job.
    result_mr = StreamingPCA(
        stream_config(window=45), "mapreduce", cluster=CLUSTER
    )
    run = result_mr.run(MatrixSource(DATA, chunk_rows=45))
    metrics = result_mr.engine.metrics
    assert run.windows == 4
    assert [job.name for job in metrics.jobs] == ["streamWindowJob"] * 4
    assert all(job.map_output_bytes > 0 for job in metrics.jobs)
    assert run.sim_seconds > 0
