"""``repro-lint``: the static-analysis command line.

Examples::

    repro-lint src/repro                 # whole tree, all rules
    repro-lint --select DF001,DF004 src  # only some rules
    repro-lint --list-rules              # what each code means
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.analyzer import lint_paths
from repro.lint.findings import (
    format_findings,
    format_findings_github,
    format_findings_json,
)
from repro.lint.rules import RULES

_FORMATTERS = {
    "text": format_findings,
    "json": format_findings_json,
    "github": format_findings_github,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Distributed-dataflow static analysis for the sPCA engines: "
            "flags closure-captured arrays, non-monoid combiners, driver-state "
            "mutation, per-record emission, and uncached iterative RDDs."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and exit",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_FORMATTERS),
        default="text",
        help=(
            "report format: text (default), json (machine-readable), or "
            "github (Actions ::error annotations)"
        ),
    )
    parser.add_argument(
        "--racecheck",
        action="store_true",
        help=(
            "also run the dynamic race detector: a small sPCA fit per engine "
            "under an instrumented shadow executor, reporting cross-task "
            "conflicts not ordered by a commit"
        ),
    )
    parser.add_argument(
        "--racecheck-executor",
        choices=["threads", "processes"],
        default="threads",
        help="executor backend the racecheck harness shadows (default: threads)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def _list_rules() -> int:
    for rule in RULES.values():
        print(f"{rule.code} ({rule.name}): {rule.summary}")
        print(f"    paper: {rule.paper_ref}")
        print(f"    why:   {rule.rationale}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = select - set(RULES) - {"E999"}
        if unknown:
            print(
                f"error: unknown rule code(s) {sorted(unknown)}; "
                f"known: {', '.join(sorted(RULES))}",
                file=sys.stderr,
            )
            return 2
    try:
        findings = lint_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    races = 0
    if args.racecheck:
        from repro.lint.racecheck import run_spca_racecheck

        reports = run_spca_racecheck(executor_name=args.racecheck_executor)
        for report in reports:
            for conflict in report.conflicts:
                races += 1
                print(conflict.render())
        if not args.quiet:
            noun = "conflict" if races == 1 else "conflicts"
            print(
                f"repro-lint racecheck[{args.racecheck_executor}]: "
                f"{races} {noun} across {len(reports)} runs"
            )
    if args.format == "json":
        print(format_findings_json(findings))
    else:
        if findings:
            print(_FORMATTERS[args.format](findings))
        if not args.quiet and args.format == "text":
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"repro-lint: {len(findings)} {noun}")
    return 1 if (findings or races) else 0


if __name__ == "__main__":
    raise SystemExit(main())
