"""PCA-as-a-service: model registry + request layer + async micro-batching.

Fitting produces a :class:`~repro.core.model.PCAModel`; this package is
what happens to it next.  :class:`ModelRegistry` persists versioned models
(atomic npz + manifest, content-hash integrity, LRU load cache),
:class:`PCAService` serves ``transform``/``project``/``reconstruct``/
``score`` against ``name@version``, and :class:`MicroBatcher` coalesces
concurrent requests into batches computed through the row-stable kernels
and the executor layer -- bit-identical to serving each request alone.
"""

from repro.serve.api import PCAService
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.kernels import OPS, reference_rows, row_stable_matmul, run_batch
from repro.serve.registry import LATEST, ModelRecord, ModelRegistry, parse_version

__all__ = [
    "LATEST",
    "OPS",
    "BatchPolicy",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "PCAService",
    "parse_version",
    "reference_rows",
    "row_stable_matmul",
    "run_batch",
]
