"""repro.obs: span tracing, timeline export, and convergence telemetry.

A zero-dependency tracing layer for the simulated distributed engines.
Spans form a ``run -> iteration -> job -> phase -> task`` hierarchy, typed
events capture data movement (shuffle, HDFS, broadcast, driver collect) and
scheduling incidents (retries, speculative kills, cache hits/evictions),
and everything is stamped with both the wall clock and the simulated
cluster clock.  See ``docs/observability.md``.

Typical use::

    from repro.obs import tracing
    from repro.obs.export import write_trace

    with tracing() as tracer:
        model, history = SPCA(config, backend).fit(data)
    write_trace(tracer, "fit.trace.json")   # open in https://ui.perfetto.dev
"""

from repro.obs.export import TraceData, load_trace, write_trace
from repro.obs.tracer import (
    EVENT_TYPES,
    SPAN_KINDS,
    EventRecord,
    EventTrace,
    JobTrace,
    PhaseTrace,
    SpanRecord,
    TaskTrace,
    Tracer,
    get_tracer,
    record_job_stats,
    set_tracer,
    tracing,
)

__all__ = [
    "EVENT_TYPES",
    "SPAN_KINDS",
    "EventRecord",
    "EventTrace",
    "JobTrace",
    "PhaseTrace",
    "SpanRecord",
    "TaskTrace",
    "TraceData",
    "Tracer",
    "get_tracer",
    "load_trace",
    "record_job_stats",
    "set_tracer",
    "tracing",
    "write_trace",
]
