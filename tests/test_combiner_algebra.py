"""Dynamic verification that every registered combiner is a commutative monoid.

Hypothesis generates the operand triples; the checks mirror what the
platforms assume when they merge partials in scheduling order (Section 4.1).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import CombinerAlgebraError
from repro.lint.algebra import (
    CombinerSpec,
    check_associative,
    check_commutative,
    register_combiner,
    registered_combiners,
    verify_combiner,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
matrices = arrays(np.float64, (3, 2), elements=finite)


def test_builtin_combiners_registered():
    registry = registered_combiners()
    assert {"sum", "add-maybe-sparse", "counter-merge"} <= set(registry)


@settings(max_examples=25, deadline=None)
@given(a=matrices, b=matrices, c=matrices)
def test_sum_combiner_is_a_commutative_monoid(a, b, c):
    spec = registered_combiners()["sum"]
    assert verify_combiner(spec, [(a, b, c)], rtol=1e-6, atol=1e-6) == 1


@settings(max_examples=25, deadline=None)
@given(a=matrices, b=matrices, c=matrices)
def test_add_maybe_sparse_mixes_dense_and_sparse(a, b, c):
    spec = registered_combiners()["add-maybe-sparse"]
    triples = [
        (a, sp.csr_matrix(b), sp.csr_matrix(c)),
        (a, b, sp.csr_matrix(c)),
        (a, b, c),
    ]
    assert verify_combiner(spec, triples, rtol=1e-6, atol=1e-6) == 3


@settings(max_examples=25, deadline=None)
@given(
    a=st.dictionaries(st.sampled_from("abc"), st.integers(0, 100)),
    b=st.dictionaries(st.sampled_from("abc"), st.integers(0, 100)),
    c=st.dictionaries(st.sampled_from("abc"), st.integers(0, 100)),
)
def test_counter_merge_is_a_commutative_monoid(a, b, c):
    from collections import Counter

    spec = registered_combiners()["counter-merge"]
    assert verify_combiner(spec, [(Counter(a), Counter(b), Counter(c))]) == 1


def test_subtraction_fails_commutativity():
    with pytest.raises(CombinerAlgebraError, match="not commutative"):
        check_commutative(lambda a, b: a - b, 3.0, 1.0)


def test_mean_pairing_fails_associativity():
    average = lambda a, b: (a + b) / 2.0  # noqa: E731
    check_commutative(average, 1.0, 3.0)  # commutative...
    with pytest.raises(CombinerAlgebraError, match="not associative"):
        check_associative(average, 1.0, 3.0, 5.0)  # ...but not associative


def test_verify_combiner_tags_the_failure_with_its_name():
    spec = CombinerSpec("diff", lambda a, b: a - b)
    with pytest.raises(CombinerAlgebraError, match="'diff'"):
        verify_combiner(spec, [(1.0, 2.0, 3.0)])


def test_register_combiner_round_trips():
    spec = register_combiner("test-max", max, "maximum (idempotent monoid)")
    assert registered_combiners()["test-max"] is spec
    assert verify_combiner(spec, [(1.0, 5.0, 3.0)]) == 1


@settings(max_examples=50, deadline=None)
@given(a=finite, b=finite, c=finite)
def test_float_addition_within_tolerance(a, b, c):
    # The tolerance models exactly what the paper's partial-sum algebra
    # assumes: float addition is associative only up to rounding.
    check_associative(lambda x, y: x + y, a, b, c, rtol=1e-9, atol=1e-6)
