"""Unit suite for the streaming pipeline's building blocks.

Covers the windower (tumbling/sliding emission, arrival-chunking
invariance as a hypothesis property against the slicing oracle), the row
sources (epoch replay, mid-stream resume, per-row determinism of the
synthetic stream, drift ground truth), the stream checkpoint format
(bit-exact roundtrips through both stores, kind/config refusal), the
stream configuration validation, and a sequential runner smoke that pins
the telemetry surface (tracer spans/events, metrics counters and gauges).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointPolicy,
    DirectoryCheckpointStore,
    HDFSCheckpointStore,
)
from repro.data.generators import lowrank_dense
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.errors import CheckpointError, ShapeError
from repro.extensions.incremental import initial_sem_state, sem_step
from repro.obs import tracer as obs_tracer
from repro.obs.metrics import collecting
from repro.stream import (
    STREAM_CHECKPOINT_KIND,
    DriftSpec,
    IterableSource,
    MatrixSource,
    StreamConfig,
    StreamingPCA,
    SyntheticSource,
    Windower,
    WindowSpec,
    as_source,
    pack_stream_checkpoint,
    reference_windows,
    unpack_stream_checkpoint,
)
from repro.stream.window import window_values_equal


def chunkings(total_rows):
    """Random cut points of ``total_rows`` rows into arrival chunks."""
    return st.lists(
        st.integers(min_value=1, max_value=total_rows), min_size=1, max_size=12
    ).map(lambda sizes: _clip_sizes(sizes, total_rows))


def _clip_sizes(sizes, total_rows):
    out, left = [], total_rows
    for size in sizes:
        take = min(size, left)
        if take:
            out.append(take)
        left -= take
    if left:
        out.append(left)
    return out


class TestWindowSpec:
    def test_tumbling_defaults(self):
        spec = WindowSpec(10)
        assert spec.stride == 10
        assert spec.tumbling

    def test_sliding(self):
        spec = WindowSpec(10, 4)
        assert spec.stride == 4
        assert not spec.tumbling

    @pytest.mark.parametrize("size,step", [(0, None), (5, 0), (5, 6), (-1, None)])
    def test_rejects_bad_shapes(self, size, step):
        with pytest.raises(ShapeError):
            WindowSpec(size, step)


class TestWindower:
    def test_tumbling_emission_and_flush(self):
        data = np.arange(23 * 2, dtype=np.float64).reshape(23, 2)
        windower = Windower(WindowSpec(5), 2)
        emitted = []
        for start in range(0, 23, 4):
            emitted.extend(windower.push(data[start : start + 4]))
        assert [w.index for w in emitted] == [0, 1, 2, 3]
        assert all(w.complete and w.n_rows == 5 for w in emitted)
        assert windower.buffered_rows == 3
        tail = windower.flush()
        assert tail is not None and not tail.complete and tail.n_rows == 3
        assert windower.consumed_rows == 23

    def test_sliding_overlap_and_dropped_tail(self):
        data = np.arange(20 * 2, dtype=np.float64).reshape(20, 2)
        windower = Windower(WindowSpec(6, 2), 2)
        emitted = windower.push(data)
        # Windows start at 0, 2, 4, ..., 14 (the last full one).
        assert [w.start_row for w in emitted] == list(range(0, 15, 2))
        assert all(w.n_rows == 6 for w in emitted)
        assert windower.flush() is None  # sliding tails are dropped
        assert windower.buffered_rows == 0

    def test_rejects_wrong_width_chunk(self):
        windower = Windower(WindowSpec(4), 3)
        with pytest.raises(ShapeError):
            windower.push(np.zeros((2, 4)))

    def test_resume_offsets_absolute_position(self):
        data = np.arange(30 * 2, dtype=np.float64).reshape(30, 2)
        windower = Windower(WindowSpec(5), 2, start_row=10, start_index=2)
        emitted = windower.push(data[10:])
        assert [w.index for w in emitted] == [2, 3, 4, 5]
        assert [w.start_row for w in emitted] == [10, 15, 20, 25]

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=chunkings(37),
        window=st.integers(min_value=1, max_value=12),
        slide=st.booleans(),
        data=st.randoms(use_true_random=False),
    )
    def test_property_chunking_never_changes_the_windows(
        self, sizes, window, slide, data
    ):
        # However arrivals are cut, the emitted window sequence is the
        # slicing oracle's, value-bitwise.
        rng = np.random.default_rng(data.randint(0, 2**31))
        matrix = rng.normal(size=(37, 3))
        step = max(1, window // 2) if slide else None
        spec = WindowSpec(window, step)
        expected = reference_windows(matrix, spec)
        windower = Windower(spec, 3)
        emitted = []
        start = 0
        for size in sizes:
            emitted.extend(windower.push(matrix[start : start + size]))
            start += size
        tail = windower.flush()
        if tail is not None:
            emitted.append(tail)
        assert [(w.index, w.start_row, w.complete) for w in emitted] == [
            (w.index, w.start_row, w.complete) for w in expected
        ]
        for got, want in zip(emitted, expected):
            assert window_values_equal(got.rows, want.rows)


class TestSources:
    def test_matrix_source_epochs_wrap(self):
        data = np.arange(10 * 2, dtype=np.float64).reshape(10, 2)
        source = MatrixSource(data, chunk_rows=4, epochs=2)
        rows = np.concatenate(list(source.chunks()))
        assert rows.shape == (20, 2)
        assert np.array_equal(rows, np.concatenate([data, data]))

    def test_matrix_source_resume_is_the_suffix(self):
        data = np.arange(10 * 2, dtype=np.float64).reshape(10, 2)
        source = MatrixSource(data, chunk_rows=3, epochs=3)
        full = np.concatenate(list(source.chunks()))
        resumed = np.concatenate(list(source.chunks(start_row=13)))
        assert np.array_equal(resumed, full[13:])

    def test_iterable_source_skips_empty_and_resumes(self):
        data = np.arange(12 * 2, dtype=np.float64).reshape(12, 2)
        source = IterableSource([data[:5], data[5:5], data[5:]])
        assert np.array_equal(np.concatenate(list(source.chunks())), data)
        assert np.array_equal(
            np.concatenate(list(source.chunks(start_row=7))), data[7:]
        )

    def test_iterable_source_validates_columns(self):
        with pytest.raises(ShapeError):
            IterableSource([np.zeros((2, 3)), np.zeros((2, 4))])
        with pytest.raises(ShapeError):
            IterableSource([])

    def test_synthetic_rows_depend_only_on_absolute_index(self):
        source = SyntheticSource(8, 2, seed=3, block_rows=16, total_rows=100)
        whole = np.concatenate(list(source.chunks()))
        assert whole.shape == (100, 8)
        # Resume from arbitrary offsets reproduces the exact suffix.
        for start in (0, 1, 15, 16, 17, 99):
            suffix = np.concatenate(list(source.chunks(start_row=start)))
            assert np.array_equal(suffix, whole[start:])

    def test_synthetic_drift_changes_only_the_post_rows(self):
        kwargs = dict(n_cols=8, rank=2, seed=3, block_rows=16, total_rows=64)
        plain = np.concatenate(list(SyntheticSource(**kwargs).chunks()))
        drifted_source = SyntheticSource(
            **kwargs, drift=DriftSpec(at_row=40, angle_degrees=60.0)
        )
        drifted = np.concatenate(list(drifted_source.chunks()))
        assert np.array_equal(drifted[:40], plain[:40])
        assert not np.array_equal(drifted[40:], plain[40:])
        # Ground truth flips exactly at the change point.
        assert np.array_equal(drifted_source.basis(39), drifted_source.basis(0))
        assert not np.array_equal(drifted_source.basis(40), drifted_source.basis(0))

    def test_as_source_coercions(self):
        dense = np.zeros((4, 3))
        assert isinstance(as_source(dense), MatrixSource)
        assert isinstance(as_source(sp.csr_matrix(dense)), MatrixSource)
        assert isinstance(as_source([dense, dense]), IterableSource)
        source = MatrixSource(dense)
        assert as_source(source) is source

    def test_validation(self):
        with pytest.raises(ShapeError):
            SyntheticSource(4, 5)
        with pytest.raises(ShapeError):
            SyntheticSource(4, 2, block_rows=0)
        with pytest.raises(ShapeError):
            DriftSpec(at_row=-1)
        with pytest.raises(ShapeError):
            DriftSpec(at_row=0, angle_degrees=120.0)


def _checkpoint_fixture():
    data = lowrank_dense(80, 6, 2, seed=11)
    state = initial_sem_state(2, 6, seed=12)
    state = sem_step(state, data[:40], step_decay=0.7)
    state = sem_step(state, data[40:], step_decay=0.7)
    config = StreamConfig(n_components=2, window=40, seed=12).as_dict()
    detector_state = {"history": [state.components.tolist()], "observed": 2,
                      "consecutive": 0}
    checkpoint = pack_stream_checkpoint(
        window_index=1,
        rows_consumed=80,
        state=state,
        detector_state=detector_state,
        config=config,
    )
    return state, config, detector_state, checkpoint


class TestStreamCheckpoint:
    def test_pack_unpack_is_bit_exact(self):
        state, config, detector_state, checkpoint = _checkpoint_fixture()
        snapshot = unpack_stream_checkpoint(checkpoint, config)
        assert snapshot.next_window_index == 2
        assert snapshot.rows_consumed == 80
        assert snapshot.detector_state == detector_state
        restored = snapshot.state
        assert np.array_equal(restored.components, state.components)
        assert np.array_equal(restored.mean, state.mean)
        assert np.array_equal(restored.moment_yx, state.moment_yx)
        assert np.array_equal(restored.moment_xx, state.moment_xx)
        assert restored.noise_variance == state.noise_variance
        assert restored.step_index == state.step_index
        assert restored.rows_seen == state.rows_seen

    @pytest.mark.parametrize("store_kind", ["hdfs", "directory"])
    def test_roundtrip_through_both_stores(self, store_kind, tmp_path):
        state, config, _, checkpoint = _checkpoint_fixture()
        if store_kind == "hdfs":
            store = HDFSCheckpointStore(InMemoryHDFS())
        else:
            store = DirectoryCheckpointStore(tmp_path / "ckpt")
        store.save(checkpoint)
        loaded = store.load_latest()
        assert loaded is not None
        snapshot = unpack_stream_checkpoint(loaded, config)
        assert np.array_equal(snapshot.state.components, state.components)
        assert np.array_equal(snapshot.state.moment_xx, state.moment_xx)
        assert snapshot.state.noise_variance == state.noise_variance
        assert snapshot.rows_consumed == 80

    def test_refuses_non_stream_checkpoint(self):
        _, config, _, checkpoint = _checkpoint_fixture()
        from dataclasses import replace

        batch_like = replace(checkpoint, config={"n_components": 2})
        with pytest.raises(CheckpointError, match="not written by a streaming"):
            unpack_stream_checkpoint(batch_like, config)

    def test_refuses_different_stream_config(self):
        _, config, _, checkpoint = _checkpoint_fixture()
        other = dict(config)
        other["window"] = 99
        other["seed"] = 1
        with pytest.raises(CheckpointError) as excinfo:
            unpack_stream_checkpoint(checkpoint, other)
        assert "seed" in str(excinfo.value)
        assert "window" in str(excinfo.value)

    def test_kind_marker_constant(self):
        *_, checkpoint = _checkpoint_fixture()
        assert checkpoint.config["kind"] == STREAM_CHECKPOINT_KIND
        assert checkpoint.rng_state["kind"] == STREAM_CHECKPOINT_KIND


class TestStreamConfig:
    def test_defaults_round_trip(self):
        config = StreamConfig(n_components=3, window=50)
        assert config.spec() == WindowSpec(50, None)
        assert config.detector() is None
        assert config.as_dict()["window"] == 50

    def test_detector_built_from_fields(self):
        config = StreamConfig(
            n_components=2, window=10, drift_threshold_degrees=20.0,
            drift_lag=2, drift_warmup=5, drift_patience=3,
        )
        detector = config.detector()
        assert detector is not None
        assert detector.threshold_degrees == 20.0
        assert detector.lag == 2
        assert detector.warmup == 5
        assert detector.patience == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_components=0, window=10),
            dict(n_components=2, window=0),
            dict(n_components=2, window=10, step=11),
            dict(n_components=2, window=10, step_decay=0.5),
            dict(n_components=2, window=10, step_decay=1.5),
            dict(n_components=2, window=10, rows_per_task=0),
            dict(n_components=2, window=10, history_limit=-1),
            dict(n_components=2, window=10, drift_threshold_degrees=0.0),
            dict(n_components=2, window=10, drift_threshold_degrees=10.0,
                 drift_lag=0),
            dict(n_components=2, window=10, drift_threshold_degrees=10.0,
                 drift_warmup=1, drift_lag=3),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ShapeError):
            StreamConfig(**kwargs)


class TestRunnerSmoke:
    def test_sequential_run_reports_and_instruments(self):
        data = lowrank_dense(130, 8, 2, seed=21)
        config = StreamConfig(n_components=2, window=40, seed=22)
        with collecting() as registry, obs_tracer.tracing() as tracer:
            result = StreamingPCA(config).run(MatrixSource(data, chunk_rows=17))
        # 3 complete windows + the flushed 10-row tail.
        assert result.windows == 4
        assert result.rows == 130
        assert result.stop_reason == "exhausted"
        assert result.rows_consumed == 130
        assert result.next_window_index == 4
        assert [r.index for r in result.records] == [0, 1, 2, 3]
        assert result.records[-1].rows == 10
        assert result.model.n_samples == 130
        assert result.state.rows_seen == 130
        # Tracer: a run root, one iteration span and one stream_window
        # event per window.
        spans = [(s.kind, s.name) for s in tracer.spans]
        assert spans == [
            ("run", "stream[engine=sequential,d=2,w=40]")
        ] + [("iteration", f"window-{i}") for i in range(4)]
        run = tracer.spans[0]
        assert run.attrs["stop_reason"] == "exhausted"
        assert all(
            s.parent_id == run.span_id
            for s in tracer.spans
            if s.kind == "iteration"
        )
        window_events = [e for e in tracer.events if e.type == "stream_window"]
        assert [e.attrs["index"] for e in window_events] == [0, 1, 2, 3]
        assert window_events[-1].attrs["complete"] is False
        # Metrics: rows/window totals and the backpressure gauges.
        labels = {"engine": "sequential"}
        assert registry.counter("spca_stream_rows_total", **labels).value == 130
        assert registry.counter("spca_stream_windows_total", **labels).value == 4
        assert registry.gauge("spca_stream_queue_rows", **labels).value == 0
        assert registry.gauge("spca_stream_window_lag", **labels).value == 0
        assert (
            registry.histogram("spca_stream_window_wall_seconds", **labels).count
            == 4
        )

    def test_max_windows_and_max_rows_bounds(self):
        data = lowrank_dense(200, 6, 2, seed=23)
        config = StreamConfig(n_components=2, window=25, seed=24)
        bounded = StreamingPCA(config).run(
            MatrixSource(data, chunk_rows=50), max_windows=3
        )
        assert bounded.windows == 3
        assert bounded.stop_reason == "max_windows"
        assert bounded.rows_consumed == 75
        by_rows = StreamingPCA(config).run(
            MatrixSource(data, chunk_rows=50), max_rows=120
        )
        assert by_rows.stop_reason == "max_rows"
        assert by_rows.rows >= 120

    def test_empty_stream_is_rejected(self):
        config = StreamConfig(n_components=2, window=10, seed=0)
        source = SyntheticSource(6, 2, total_rows=4, seed=0)
        # 4 rows never complete a 10-row window, but the tumbling flush
        # still fits them; a truly empty source must raise.
        result = StreamingPCA(config).run(source)
        assert result.rows == 4
        empty = IterableSource([np.zeros((0, 6))], n_cols=6)
        with pytest.raises(ShapeError, match="no rows"):
            StreamingPCA(config).run(empty)

    def test_history_limit_caps_checkpoint_history(self, tmp_path):
        data = lowrank_dense(120, 6, 2, seed=25)
        config = StreamConfig(
            n_components=2, window=10, seed=26, history_limit=3
        )
        store = DirectoryCheckpointStore(tmp_path / "ckpt")
        StreamingPCA(config).run(
            MatrixSource(data, chunk_rows=30),
            checkpoint=CheckpointPolicy(store, every=4),
        )
        loaded = store.load_latest()
        assert loaded is not None
        assert len(loaded.history) == 3
