"""Extensions the paper credits to the probabilistic formulation (S2.4).

"PPCA offers two desirable properties.  First, large datasets often have
missing values ... the projections of principal components can be obtained
even when some data values are missing.  Second, multiple PPCA models can
be combined as a probabilistic mixture for better accuracy and to express
complex models."

- :mod:`repro.extensions.missing` -- EM for PPCA over incomplete matrices
  (NaN entries), with model-based imputation.
- :mod:`repro.extensions.mixture` -- mixtures of PPCA (Tipping & Bishop
  1999) with Woodbury-based likelihood evaluation.
- :mod:`repro.extensions.incremental` -- mini-batch / streaming PPCA, the
  natural extension of sPCA's N-independent state.
"""

from repro.extensions.incremental import IncrementalPPCA
from repro.extensions.missing import MissingValuePPCA
from repro.extensions.mixture import MixtureOfPPCA

__all__ = ["IncrementalPPCA", "MissingValuePPCA", "MixtureOfPPCA"]
