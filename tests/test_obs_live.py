"""The live dashboard listener, streaming writer, and lenient loading."""

import io
import json

import numpy as np
import pytest

from repro.backends import MapReduceBackend, SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.obs import (
    JsonlTraceWriter,
    load_trace,
    load_trace_lenient,
    tracing,
    write_trace,
)
from repro.obs.export import TraceData
from repro.obs.live import LiveDashboard, _fmt, _fmt_bytes
from repro.obs.metrics import MetricsRegistry, collecting


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    return rng.normal(size=(60, 12)) @ rng.normal(size=(12, 12))


class TestLiveDashboard:
    def fit_with_dashboard(self, data, stream, plain=None, registry=None):
        config = SPCAConfig(n_components=2, max_iterations=3, seed=0)
        backend = MapReduceBackend(config)
        dashboard = LiveDashboard(stream=stream, plain=plain,
                                  registry=registry)
        with tracing() as tracer:
            tracer.add_listener(dashboard)
            SPCA(config, backend).fit(data)
        dashboard.close()
        return dashboard

    def test_plain_mode_writes_one_line_per_iteration(self, data):
        stream = io.StringIO()
        dashboard = self.fit_with_dashboard(data, stream, plain=True)
        lines = [li for li in stream.getvalue().splitlines()
                 if li.startswith("[live]")]
        assert len(lines) == 3 == dashboard.frames
        assert "iter=1" in lines[0]
        assert "iter=3" in lines[-1]
        assert "jobs=" in lines[-1]
        # No escape codes in plain mode.
        assert "\x1b[" not in stream.getvalue()

    def test_non_tty_stream_autodetects_plain(self, data):
        dashboard = LiveDashboard(stream=io.StringIO())
        assert dashboard.plain

    def test_ansi_mode_redraws_in_place(self, data):
        stream = io.StringIO()
        self.fit_with_dashboard(data, stream, plain=False)
        output = stream.getvalue()
        assert "\x1b[1A" in output  # cursor-up redraws after frame 1
        assert "objective" in output
        assert "phases:" in output

    def test_dashboard_accumulates_job_and_phase_state(self, data):
        dashboard = self.fit_with_dashboard(data, io.StringIO(), plain=True)
        assert dashboard.run_name.startswith("spca.fit[")
        assert dashboard.n_jobs > 0
        assert dashboard.sim_seconds > 0
        assert dashboard.iteration == 3
        assert dashboard.objective is not None
        assert "map" in dashboard.phase_seconds

    def test_registry_sample_feeds_occupancy_and_cache(self, data):
        stream = io.StringIO()
        config = SPCAConfig(n_components=2, max_iterations=2, seed=0)
        with collecting() as registry:
            backend = SparkBackend(config)
            dashboard = LiveDashboard(stream=stream, plain=True,
                                      registry=registry)
            with tracing() as tracer:
                tracer.add_listener(dashboard)
                SPCA(config, backend).fit(data)
        output = stream.getvalue()
        assert "cache=" in output  # the cached RDD produces hits
        assert "retries" not in output  # zero retries are suppressed

    def test_disabled_registry_renders_without_metrics(self, data):
        dashboard = LiveDashboard(stream=io.StringIO(), plain=True,
                                  registry=MetricsRegistry(enabled=False))
        sample = dashboard._sample_registry()
        assert sample == {"retries": None, "faults": None,
                          "occupancy": None, "cache": None}

    def test_new_run_resets_state(self, data):
        stream = io.StringIO()
        dashboard = self.fit_with_dashboard(data, stream, plain=True)
        jobs_first = dashboard.n_jobs
        config = SPCAConfig(n_components=2, max_iterations=3, seed=0)
        with tracing() as tracer:
            tracer.add_listener(dashboard)
            SPCA(config, MapReduceBackend(config)).fit(data)
        assert dashboard.n_jobs == jobs_first  # reset, not doubled

    def test_formatters(self):
        assert _fmt(None) == "-"
        assert _fmt(0.123456, ".3g") == "0.123"
        assert _fmt_bytes(512) == "512 B"
        assert _fmt_bytes(2048) == "2.0 KiB"
        assert _fmt_bytes(3 * 1024**3) == "3.0 GiB"


class TestStreamingWriter:
    def fit_streamed(self, data, tmp_path, retain=True):
        """One traced fit with the streaming writer attached.

        With ``retain=True`` the tracer also buffers the run, so the
        streamed file can be compared record-for-record against the
        buffer from the *same* run (span ids jitter between runs when
        speculative execution triggers differently).
        """
        config = SPCAConfig(n_components=2, max_iterations=2, seed=0)
        streamed = tmp_path / "streamed.jsonl"
        with tracing(retain=retain) as tracer:
            writer = JsonlTraceWriter(streamed)
            tracer.add_listener(writer)
            SPCA(config, MapReduceBackend(config)).fit(data)
            writer.close()
        return streamed, TraceData.from_tracer(tracer)

    def test_streamed_file_equals_the_buffered_trace(self, data, tmp_path):
        streamed, buffered = self.fit_streamed(data, tmp_path)
        loaded = load_trace(streamed)
        assert loaded.spans == buffered.spans
        assert loaded.events == buffered.events

    def test_retain_false_streams_without_buffering(self, data, tmp_path):
        config = SPCAConfig(n_components=2, max_iterations=2, seed=0)
        streamed = tmp_path / "unbuffered.jsonl"
        with tracing(retain=False) as tracer:
            writer = JsonlTraceWriter(streamed)
            tracer.add_listener(writer)
            SPCA(config, MapReduceBackend(config)).fit(data)
            assert tracer.spans == []  # nothing held on the driver
            writer.close()
        trace = load_trace(streamed)
        assert any(s.kind == "run" for s in trace.spans)
        assert any(s.kind == "task" for s in trace.spans)

    def test_footer_counts_are_authoritative(self, data, tmp_path):
        streamed, _ = self.fit_streamed(data, tmp_path)
        lines = streamed.read_text().splitlines()
        header, footer = json.loads(lines[0]), json.loads(lines[-1])
        assert header == {"rec": "header", "schema": "repro.obs/1",
                          "streaming": True}
        trace = load_trace(streamed)
        assert footer == {"rec": "footer", "spans": len(trace.spans),
                          "events": len(trace.events)}

    def test_killed_run_leaves_a_loadable_prefix(self, data, tmp_path):
        streamed, _ = self.fit_streamed(data, tmp_path)
        lines = streamed.read_text().splitlines()
        # Drop the footer and the last two records, cut one line in half.
        partial = lines[:-3] + [lines[-3][: len(lines[-3]) // 2]]
        cut = tmp_path / "killed.jsonl"
        cut.write_text("\n".join(partial))
        trace, warnings = load_trace_lenient(cut)
        assert trace.spans
        assert any("malformed JSONL" in w for w in warnings)


class TestLenientLoading:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        trace, warnings = load_trace_lenient(path)
        assert trace.spans == [] and trace.events == []
        assert any("empty" in w for w in warnings)

    def test_intact_file_has_no_warnings(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        trace = TraceData(spans=[], events=[])
        with tracing() as tracer:
            with tracer.span("run", "tiny"):
                tracer.event("ping")
        write_trace(TraceData.from_tracer(tracer), path)
        loaded, warnings = load_trace_lenient(path)
        assert warnings == []
        assert len(loaded.spans) == 1

    def test_truncated_chrome_json_salvages_spans(self, tmp_path):
        with tracing() as tracer:
            with tracer.span("run", "tiny"):
                with tracer.span("job", "j1"):
                    pass
                with tracer.span("job", "j2"):
                    pass
        path = tmp_path / "full.trace.json"
        write_trace(TraceData.from_tracer(tracer), path)
        text = path.read_text()
        cut = tmp_path / "cut.trace.json"
        cut.write_text(text[: int(len(text) * 0.5)])
        trace, warnings = load_trace_lenient(cut)
        assert any("salvaged" in w for w in warnings)
        assert len(trace.spans) >= 1

    def test_missing_run_root_warns(self, tmp_path):
        with tracing() as tracer:
            with tracer.span("job", "j1"):
                pass
        path = tmp_path / "no_root.jsonl"
        write_trace(TraceData.from_tracer(tracer), path)
        _, warnings = load_trace_lenient(path)
        assert any("no complete 'run' root span" in w for w in warnings)
