"""Walk through the four sPCA optimizations, toggling one at a time.

Every Section 3 optimization is a switch on :class:`SPCAConfig`.  This
example fits the same sparse matrix with each optimization disabled in
turn and reports what that costs on the simulated Spark platform -- a
miniature of the paper's Table 3 -- while asserting the results stay
identical (the optimizations never change the math).

Run with:  python examples/optimization_ablation.py
"""

import numpy as np

from repro.backends import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.core.config import OPTIMIZATION_FLAGS
from repro.data import bag_of_words
from repro.engine.spark import SparkContext


def fit_with(config):
    backend = SparkBackend(config, SparkContext())
    model, _ = SPCA(config, backend).fit(DATA)
    return model, backend


DATA = bag_of_words(8_000, 2_000, words_per_doc=8.0, seed=31)


def main() -> None:
    base = SPCAConfig(n_components=10, max_iterations=4, tolerance=0.0, seed=3,
                      compute_error_every_iteration=False)
    reference_model, reference_backend = fit_with(base)
    print(f"{'configuration':<34}{'sim time (s)':>13}{'intermediate':>15}")
    print(f"{'all optimizations on':<34}{reference_backend.simulated_seconds:>13.2f}"
          f"{reference_backend.intermediate_bytes:>15,}")

    for flag in OPTIMIZATION_FLAGS:
        config = base.with_options(**{flag: False})
        model, backend = fit_with(config)
        drift = float(np.abs(model.components - reference_model.components).max())
        label = f"without {flag.removeprefix('use_')}"
        print(f"{label:<34}{backend.simulated_seconds:>13.2f}"
              f"{backend.intermediate_bytes:>15,}   (|dC| = {drift:.1e})")

    print()
    print("every ablation returns the identical model -- the optimizations")
    print("only change what the platform has to move and recompute.")


if __name__ == "__main__":
    main()
