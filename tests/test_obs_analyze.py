"""Critical-path extraction, straggler attribution, trace diff."""

import pytest

from repro.obs.analyze import (
    critical_path,
    diff_traces,
    format_critical_path,
    format_diff,
    format_stragglers,
    iteration_critical_paths,
    straggler_report,
)
from repro.obs.export import TraceData
from repro.obs.tracer import SpanRecord


def span(span_id, parent_id, kind, name, t0, dur, track=None, **attrs):
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, kind=kind, name=name,
        t0=t0, dur=dur, wall_t0=0.0, wall_dur=0.0, track=track, attrs=attrs,
    )


def single_task_trace():
    """run(0..10) > job(1..9) > phase(1..9) > task(2..8)."""
    return TraceData(spans=[
        span(1, None, "run", "fit", 0.0, 10.0),
        span(2, 1, "job", "meanJob", 1.0, 8.0),
        span(3, 2, "phase", "map", 1.0, 8.0),
        span(4, 3, "task", "map[0]", 2.0, 6.0, track=0),
    ])


def parallel_trace():
    """Three tasks starting together; the longest alone bounds the phase."""
    return TraceData(spans=[
        span(1, None, "run", "fit", 0.0, 10.0),
        span(2, 1, "job", "YtXJob", 0.0, 10.0),
        span(3, 2, "phase", "map", 0.0, 10.0),
        span(4, 3, "task", "map[0]", 0.0, 10.0, track=0),
        span(5, 3, "task", "map[1]", 0.0, 4.0, track=1),
        span(6, 3, "task", "map[2]", 0.0, 6.0, track=2),
    ])


class TestCriticalPath:
    def test_empty_trace_has_no_path(self):
        assert critical_path(TraceData()) is None
        assert format_critical_path(None) == "(no spans in trace)"

    def test_single_task_tree_attributes_gaps_as_self_time(self):
        path = critical_path(single_task_trace())
        assert path.root_name == "fit"
        assert path.total == 10.0
        # Chronological, gap-free cover of the root's interval.
        assert [(s.start, s.end) for s in path.segments] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 8.0), (8.0, 9.0), (9.0, 10.0),
        ]
        assert sum(s.duration for s in path.segments) == path.total
        kinds = [(s.kind, s.self_time) for s in path.segments]
        assert kinds == [
            ("run", True), ("phase", True), ("task", False),
            ("phase", True), ("run", True),
        ]

    def test_single_task_by_kind_aggregation(self):
        path = critical_path(single_task_trace())
        by_kind = path.by_kind()
        assert by_kind["task"] == 6.0
        assert by_kind["phase (self)"] == 2.0
        assert by_kind["run (self)"] == 2.0
        # Sorted by descending contribution.
        assert list(by_kind)[0] == "task"

    def test_fully_parallel_phase_keeps_only_the_longest_task(self):
        path = critical_path(parallel_trace())
        tasks = [s for s in path.segments if s.kind == "task"]
        assert [t.name for t in tasks] == ["map[0]"]
        assert tasks[0].duration == 10.0
        assert not tasks[0].self_time
        assert sum(s.duration for s in path.segments) == 10.0

    def test_explicit_root_id_scopes_the_walk(self):
        path = critical_path(single_task_trace(), root_id=3)
        assert path.root_name == "map"
        assert path.total == 8.0
        assert [(s.start, s.end) for s in path.segments] == [
            (1.0, 2.0), (2.0, 8.0), (8.0, 9.0),
        ]

    def test_unknown_root_id_is_none(self):
        assert critical_path(single_task_trace(), root_id=99) is None

    def test_prefers_run_root_over_longer_non_run_root(self):
        trace = TraceData(spans=[
            span(1, None, "job", "orphan", 0.0, 50.0),
            span(2, None, "run", "fit", 0.0, 10.0),
        ])
        assert critical_path(trace).root_name == "fit"

    def test_iteration_critical_paths_keyed_by_index(self):
        trace = TraceData(spans=[
            span(1, None, "run", "fit", 0.0, 10.0),
            span(2, 1, "iteration", "iteration[1]", 0.0, 4.0, index=1),
            span(3, 1, "iteration", "iteration[2]", 4.0, 6.0, index=2),
            span(4, 2, "job", "meanJob", 0.0, 4.0),
            span(5, 3, "job", "YtXJob", 4.0, 6.0),
        ])
        paths = iteration_critical_paths(trace)
        assert list(paths) == [1, 2]
        assert paths[1].total == 4.0
        assert paths[2].total == 6.0

    def test_format_renders_chain_and_aggregations(self):
        text = format_critical_path(critical_path(single_task_trace()))
        assert "critical path of fit" in text
        assert "(self)" in text
        assert "by kind:" in text
        assert "top contributors:" in text


class TestStragglers:
    def trace_with_skew(self):
        return TraceData(spans=[
            span(1, None, "run", "fit", 0.0, 10.0),
            span(2, 1, "job", "YtXJob", 0.0, 10.0),
            span(3, 2, "phase", "map", 0.0, 10.0),
            span(4, 3, "task", "map[0]", 0.0, 1.0, track=0),
            span(5, 3, "task", "map[1]", 0.0, 1.0, track=1),
            span(6, 3, "task", "map[2]", 0.0, 1.0, track=2),
            span(7, 3, "task", "map[3]", 0.0, 5.0, track=3),
        ])

    def test_skew_metrics_and_straggler_identification(self):
        report = straggler_report(self.trace_with_skew())
        assert len(report) == 1
        skew = report[0]
        assert skew.phase_name == "map"
        assert skew.job_name == "YtXJob"
        assert skew.n_tasks == 4
        assert skew.max_s == 5.0
        assert skew.median_s == 1.0
        assert skew.mean_s == 2.0
        assert skew.skew == 5.0
        assert skew.imbalance == 2.5
        assert skew.stragglers == [("map[3]", 5.0, 3)]

    def test_threshold_controls_who_counts(self):
        report = straggler_report(self.trace_with_skew(), threshold=6.0)
        assert report[0].stragglers == []

    def test_phases_below_min_tasks_are_skipped(self):
        report = straggler_report(single_task_trace())
        assert report == []
        assert format_stragglers(report) == "(no phases with enough task spans)"

    def test_worst_imbalance_first(self):
        trace = self.trace_with_skew()
        trace.spans += [
            span(8, 2, "phase", "reduce", 0.0, 10.0),
            span(9, 8, "task", "reduce[0]", 0.0, 1.0, track=0),
            span(10, 8, "task", "reduce[1]", 0.0, 1.1, track=1),
        ]
        report = straggler_report(trace)
        assert [item.phase_name for item in report] == ["map", "reduce"]

    def test_format_lists_stragglers_with_slots(self):
        text = format_stragglers(straggler_report(self.trace_with_skew()))
        assert "straggler: map[3]" in text
        assert "slot 3" in text


def job_trace(named_durations, phase_seconds=None, retries=0):
    spans = [span(1, None, "run", "fit", 0.0, 100.0)]
    sid = 2
    for name, dur in named_durations:
        spans.append(span(sid, 1, "job", name, 0.0, dur,
                          shuffle_bytes=100, task_retries=retries))
        sid += 1
    for name, dur in (phase_seconds or []):
        spans.append(span(sid, 2, "phase", name, 0.0, dur))
        sid += 1
    return TraceData(spans=spans)


class TestDiff:
    def test_identical_traces_diff_to_unit_ratios(self):
        base = job_trace([("meanJob", 2.0), ("YtXJob", 5.0)])
        diff = diff_traces(base, job_trace([("meanJob", 2.0), ("YtXJob", 5.0)]))
        assert diff.regressions() == []
        for row in diff.jobs:
            assert row.ratio == 1.0
            assert row.delta == 0.0

    def test_regression_flagged_past_threshold(self):
        base = job_trace([("YtXJob", 5.0)])
        current = job_trace([("YtXJob", 6.0)])  # +20%
        diff = diff_traces(base, current)
        flagged = diff.regressions(threshold=0.10)
        assert any(row.name == "job:YtXJob" for row in flagged)
        assert diff.regressions(threshold=0.50) == []

    def test_new_quantity_counts_as_regression(self):
        base = job_trace([("meanJob", 2.0)])
        current = job_trace([("meanJob", 2.0), ("newJob", 1.0)])
        diff = diff_traces(base, current)
        row = next(r for r in diff.jobs if r.name == "job:newJob")
        assert row.ratio is None
        assert row in diff.regressions()

    def test_improvement_is_not_a_regression(self):
        base = job_trace([("YtXJob", 10.0)])
        current = job_trace([("YtXJob", 5.0)])
        assert diff_traces(base, current).regressions() == []

    def test_totals_cover_bytes_jobs_and_retries(self):
        base = job_trace([("a", 1.0)], retries=0)
        current = job_trace([("a", 1.0), ("b", 2.0)], retries=1)
        diff = diff_traces(base, current)
        totals = {row.name: row for row in diff.totals}
        assert totals["total:jobs"].current == 2
        assert totals["total:task_retries"].current == 2
        assert totals["total:shuffle_bytes"].baseline == 100
        assert totals["total:shuffle_bytes"].current == 200

    def test_phase_rows_compared_by_name(self):
        base = job_trace([("a", 1.0)], phase_seconds=[("map", 0.5)])
        current = job_trace([("a", 1.0)], phase_seconds=[("map", 1.5)])
        diff = diff_traces(base, current)
        row = next(r for r in diff.phases if r.name == "phase:map")
        assert row.ratio == pytest.approx(3.0)

    def test_format_marks_flagged_rows(self):
        base = job_trace([("YtXJob", 5.0)])
        current = job_trace([("YtXJob", 20.0)])
        text = format_diff(diff_traces(base, current), threshold=0.10)
        assert "! job:YtXJob" in text
        assert "4.000" in text

    def test_format_renders_new_and_absent(self):
        base = TraceData()
        current = job_trace([("YtXJob", 5.0)])
        text = format_diff(diff_traces(base, current))
        assert "new" in text
        # 0 -> 0 rows render "-" (e.g. retries when neither trace has any).
        same = format_diff(diff_traces(job_trace([("a", 1.0)]),
                                       job_trace([("a", 1.0)])))
        assert "-" in same.split("total:task_retries")[1].splitlines()[0]
