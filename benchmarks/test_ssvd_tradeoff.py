"""SSVD's accuracy/cost trade-off (Section 2.3).

"Accuracy can be improved through running the randomization step multiple
times.  Therefore, SSVD has the flexibility of trading off the accuracy of
the results with the required computational resources."  This bench sweeps
the power-iteration count of the Mahout-PCA analog and shows accuracy
rising with (and running time proportional to) the invested passes --
context for why Mahout's accuracy curves climb so slowly in Figures 4-5.
"""

import pytest

from harness import dataset_ideal_accuracy, run_mahout
from repro.data.generators import bag_of_words

POWER_SWEEP = (0, 1, 2, 4)


@pytest.mark.benchmark(group="ssvd-tradeoff")
def test_ssvd_accuracy_cost_tradeoff(benchmark, report):
    data = bag_of_words(10_000, 1_500, words_per_doc=8.0, seed=99)
    ideal = dataset_ideal_accuracy(data)
    results = {}

    def run_all():
        for q in POWER_SWEEP:
            results[q] = run_mahout(data, ideal=ideal, power_iterations=q)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"SSVD accuracy/cost trade-off (ideal accuracy {ideal:.4f})")
    report(f"{'power its':>10}{'time (sim s)':>14}{'final accuracy':>16}")
    for q, outcome in results.items():
        report(f"{q:>10}{outcome.seconds:>14.1f}{outcome.final_accuracy:>16.4f}")

    # More passes cost more time (endpoints compared; intermediate points
    # can be perturbed by single-process timing noise feeding the simulated
    # clock)...
    assert results[POWER_SWEEP[-1]].seconds > results[0].seconds
    # ...and buy accuracy (from the cheapest to the most expensive setting).
    assert results[POWER_SWEEP[-1]].final_accuracy > results[0].final_accuracy
    # The expensive setting approaches the ideal.
    assert results[POWER_SWEEP[-1]].final_accuracy > 0.9 * ideal
