"""Packing stream state into the EM checkpoint format.

A streaming run snapshots at window boundaries only: the
:class:`~repro.extensions.incremental.SEMState` (small, ``O(D d)``), the
replay point (rows consumed into emitted windows), and the drift
detector's memory.  Everything rides in the existing
:class:`~repro.core.checkpoint.EMCheckpoint` container so both checkpoint
stores (simulated-HDFS and directory ``.npz``) work unchanged:

- ``components`` / ``noise_variance`` / ``mean`` map directly;
- ``iteration`` is the count of windows completed (1-based, like EM
  iterations), so store paths sort correctly;
- the running moments, step counter, replay point, and detector state are
  packed into the ``rng_state`` dict -- the stores JSON-round-trip it, and
  JSON floats restore exactly (shortest-repr), so a resumed stream
  continues bit-identically;
- ``config`` carries the stream configuration plus a ``kind`` marker, so
  resuming refuses a batch-EM checkpoint or a stream checkpointed under a
  different configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.checkpoint import EMCheckpoint
from repro.core.convergence import IterationStats
from repro.errors import CheckpointError
from repro.extensions.incremental import SEMState

STREAM_CHECKPOINT_KIND = "stream-sem"


def _pack_array(array: np.ndarray | None) -> list | None:
    return None if array is None else np.asarray(array, dtype=np.float64).tolist()


def _unpack_array(packed: list | None) -> np.ndarray | None:
    return None if packed is None else np.array(packed, dtype=np.float64)


@dataclass(frozen=True)
class StreamSnapshot:
    """A decoded stream checkpoint, ready to resume from.

    Attributes:
        next_window_index: index of the first window still to process.
        rows_consumed: absolute row index to replay the source from.
        state: the carried sEM state, bit-exact.
        detector_state: drift-detector memory (None when no detector ran).
        history: per-window stats recorded up to the snapshot.
    """

    next_window_index: int
    rows_consumed: int
    state: SEMState
    detector_state: dict | None
    history: tuple[IterationStats, ...]


def pack_stream_checkpoint(
    *,
    window_index: int,
    rows_consumed: int,
    state: SEMState,
    detector_state: dict | None,
    config: dict,
    history: tuple[IterationStats, ...] = (),
) -> EMCheckpoint:
    """Build the checkpoint written after window *window_index*."""
    extra = {
        "kind": STREAM_CHECKPOINT_KIND,
        "moment_yx": _pack_array(state.moment_yx),
        "moment_xx": _pack_array(state.moment_xx),
        "step_index": state.step_index,
        "rows_seen": state.rows_seen,
        "rows_consumed": rows_consumed,
        "detector": detector_state,
    }
    return EMCheckpoint(
        iteration=window_index + 1,
        components=np.array(state.components, copy=True),
        noise_variance=float(state.noise_variance),
        mean=np.array(state.mean, copy=True),
        ss1=0.0,
        previous_error=None,
        rng_state=extra,
        history=history,
        config={"kind": STREAM_CHECKPOINT_KIND, **config},
    )


def unpack_stream_checkpoint(
    checkpoint: EMCheckpoint, config: dict
) -> StreamSnapshot:
    """Decode *checkpoint*, verifying it matches the resuming *config*."""
    stored = dict(checkpoint.config)
    if stored.get("kind") != STREAM_CHECKPOINT_KIND:
        raise CheckpointError(
            "checkpoint was not written by a streaming run "
            f"(kind={stored.get('kind')!r})"
        )
    expected = {"kind": STREAM_CHECKPOINT_KIND, **config}
    if stored != expected:
        differing = sorted(
            key
            for key in set(stored) | set(expected)
            if stored.get(key) != expected.get(key)
        )
        raise CheckpointError(
            "checkpoint was written under a different stream configuration; "
            f"differing keys: {differing}"
        )
    extra = checkpoint.rng_state
    if extra.get("kind") != STREAM_CHECKPOINT_KIND:
        raise CheckpointError("checkpoint payload is not stream state")
    state = SEMState(
        components=np.asarray(checkpoint.components, dtype=np.float64),
        noise_variance=float(checkpoint.noise_variance),
        mean=np.asarray(checkpoint.mean, dtype=np.float64),
        moment_yx=_unpack_array(extra["moment_yx"]),
        moment_xx=_unpack_array(extra["moment_xx"]),
        step_index=int(extra["step_index"]),
        rows_seen=int(extra["rows_seen"]),
    )
    return StreamSnapshot(
        next_window_index=int(checkpoint.iteration),
        rows_consumed=int(extra["rows_consumed"]),
        state=state,
        detector_state=extra.get("detector"),
        history=checkpoint.history,
    )
