"""Unit tests for the sPCA and SSVD MapReduce mappers, run standalone."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine.mapreduce.api import TaskContext
from repro.jobs import mapreduce_jobs as mr
from repro.jobs import ssvd_jobs


@pytest.fixture
def block():
    return sp.random(30, 20, density=0.25, random_state=3, format="csr")


@pytest.fixture
def dense_block(block):
    return np.asarray(block.todense())


def run_mapper(mapper, records, config):
    ctx = TaskContext("test", 0, dict(config))
    mapper.setup(ctx)
    out = []
    for key, value in records:
        out.extend(mapper.map(key, value, ctx))
    out.extend(mapper.cleanup(ctx))
    return dict(out), ctx


class TestMeanMapper:
    def test_emits_sums_and_count_once(self, block):
        out, _ = run_mapper(mr.MeanMapper(), [(0, block), (30, block)], {})
        np.testing.assert_allclose(
            out[mr.KEY_SUMS], 2 * np.asarray(block.sum(axis=0)).ravel()
        )
        assert out[mr.KEY_COUNT] == 60

    def test_empty_input_emits_nothing(self):
        out, _ = run_mapper(mr.MeanMapper(), [], {})
        assert out == {}


class TestFnormMapper:
    def test_accumulates_across_records(self, block):
        mean = np.asarray(block.mean(axis=0)).ravel()
        out, _ = run_mapper(
            mr.FnormMapper(), [(0, block)], {"mean": mean, "efficient": True}
        )
        from repro.linalg import frobenius_centered_dense

        assert out[mr.KEY_FNORM] == pytest.approx(frobenius_centered_dense(block, mean))


class TestYtXMapper:
    def make_config(self, block, mean_prop):
        rng = np.random.default_rng(5)
        mean = np.asarray(block.mean(axis=0)).ravel()
        projector = rng.normal(size=(block.shape[1], 3))
        return {
            "mean": mean,
            "projector": projector,
            "latent_mean": mean @ projector,
            "mean_propagation": mean_prop,
        }

    def test_sparse_protocol_emits_data_and_xsum(self, block):
        config = self.make_config(block, True)
        out, ctx = run_mapper(mr.YtXMapper(), [(0, block)], config)
        assert mr.KEY_XTX in out
        assert mr.KEY_YTX_DATA in out or mr.KEY_YTX in out
        assert ctx.counters["ytx/rows"] == 30
        if mr.KEY_YTX_DATA in out:
            data_product = out[mr.KEY_YTX_DATA]
            if sp.issparse(data_product):
                data_product = np.asarray(data_product.todense())
            xsum = np.asarray(out[mr.KEY_XSUM]).ravel()
            reconstructed = np.asarray(data_product) - np.outer(config["mean"], xsum)
            centered = np.asarray(block.todense()) - config["mean"]
            latent = centered @ config["projector"]
            np.testing.assert_allclose(reconstructed, centered.T @ latent, atol=1e-9)

    def test_dense_input_uses_corrected_protocol(self, dense_block):
        config = self.make_config(sp.csr_matrix(dense_block), True)
        out, _ = run_mapper(mr.YtXMapper(), [(0, dense_block)], config)
        assert mr.KEY_YTX in out
        centered = dense_block - config["mean"]
        latent = centered @ config["projector"]
        np.testing.assert_allclose(out[mr.KEY_YTX], centered.T @ latent, atol=1e-9)

    def test_naive_mapper_emits_per_record(self, block):
        config = self.make_config(block, True)
        ctx = TaskContext("test", 0, dict(config))
        mapper = mr.NaiveYtXMapper()
        mapper.setup(ctx)
        emitted = list(mapper.map(0, block, ctx)) + list(mapper.map(30, block, ctx))
        keys = [key for key, _ in emitted]
        assert keys.count(mr.KEY_YTX) == 2
        assert keys.count(mr.KEY_XTX) == 2
        assert list(mapper.cleanup(ctx)) == []


class TestXMaterializeMapper:
    def test_emits_latent_block_under_same_key(self, block):
        rng = np.random.default_rng(6)
        mean = np.asarray(block.mean(axis=0)).ravel()
        projector = rng.normal(size=(20, 3))
        config = {
            "mean": mean,
            "projector": projector,
            "latent_mean": mean @ projector,
            "mean_propagation": True,
        }
        out, _ = run_mapper(mr.XMaterializeMapper(), [(7, block)], config)
        assert out[7].shape == (30, 3)


class TestSSVDMappers:
    def test_sketch_mapper_centers_via_mean(self, block):
        rng = np.random.default_rng(7)
        test_matrix = rng.normal(size=(20, 5))
        mean = np.asarray(block.mean(axis=0)).ravel()
        out, _ = run_mapper(
            ssvd_jobs.SketchMapper(), [(0, block)],
            {"test_matrix": test_matrix, "mean": mean},
        )
        expected = (np.asarray(block.todense()) - mean) @ test_matrix
        np.testing.assert_allclose(out[0], expected, atol=1e-10)

    def test_bt_mapper_partials_sum_to_projection(self, block):
        rng = np.random.default_rng(8)
        q_block = rng.normal(size=(30, 4))
        mean = np.asarray(block.mean(axis=0)).ravel()
        ctx = TaskContext("bt", 0, {"mean": mean})
        mapper = ssvd_jobs.BtMapper()
        mapper.setup(ctx)
        partials = list(mapper.map(0, (q_block, block), ctx))
        partials.extend(mapper.cleanup(ctx))
        total = None
        for _, partial in partials:
            dense = np.asarray(partial.todense()) if sp.issparse(partial) else partial
            total = dense if total is None else total + dense
        centered = np.asarray(block.todense()) - mean
        np.testing.assert_allclose(total, q_block.T @ centered, atol=1e-9)
        # One partial per row plus the mean-correction record.
        assert len(partials) == 31

    def test_bt_mapper_dense_rows(self, dense_block):
        rng = np.random.default_rng(9)
        q_block = rng.normal(size=(30, 4))
        ctx = TaskContext("bt", 0, {"mean": None})
        mapper = ssvd_jobs.BtMapper()
        mapper.setup(ctx)
        partials = list(mapper.map(0, (q_block, dense_block), ctx))
        total = sum(p for _, p in partials)
        np.testing.assert_allclose(total, q_block.T @ dense_block, atol=1e-9)

    def test_project_mapper(self, block):
        rng = np.random.default_rng(10)
        bt = rng.normal(size=(20, 4))
        mean = np.asarray(block.mean(axis=0)).ravel()
        out, _ = run_mapper(
            ssvd_jobs.ProjectMapper(), [(0, block)], {"bt": bt, "mean": mean}
        )
        expected = (np.asarray(block.todense()) - mean) @ bt
        np.testing.assert_allclose(out[0], expected, atol=1e-10)
