"""Shared-memory ndarray transport for the process-pool executor.

Dense blocks dominate the bytes a task payload carries.  Pickling them into
a ``ProcessPoolExecutor`` pipe copies every buffer twice (serialize +
deserialize); instead, the registry copies each distinct array **once** into
a ``multiprocessing.shared_memory`` segment and ships a tiny name+shape+dtype
reference.  Workers attach the segment and build a zero-copy ndarray view
over it.  Sparse matrices ship as references to their three index/data
arrays, rebuilt without copying on the worker side.

Lifecycle (leak-proofing)
-------------------------

Segments are owned by the *creating* process through a
:class:`ShmBlockRegistry`:

- the registry memoizes segments by source-array identity (weakref
  validated, like the ``sizeof`` cache), so the same input block shipped on
  every job of an iterative fit is copied into shared memory exactly once;
- a ``weakref.finalize`` on the source array unlinks the segment as soon as
  the array is garbage collected;
- :meth:`ShmBlockRegistry.unlink_all` (called from executor ``shutdown()``)
  and an ``atexit`` hook unlink whatever remains;
- finalizers inherited by forked workers are pid-guarded: only the process
  that created a segment may unlink it;
- workers unregister attached segments from ``resource_tracker`` so a
  worker's exit neither warns about nor destroys segments it merely mapped.

``active_segments()`` exposes the registry's live set, which the leak tests
assert is empty after executor shutdown.

The decoded views are shared pages: tasks must treat payload arrays as
immutable, which is already the engines' record contract (see
``repro.engine.serde``).
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np
import scipy.sparse as sp

# Arrays smaller than this ride the ordinary pickle path: a shared-memory
# segment costs a file descriptor and a page-granular allocation, which only
# pays off for real data blocks.
DEFAULT_SHM_THRESHOLD = 32 * 1024

_SPARSE_FORMATS = ("csr", "csc")


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable reference to one ndarray living in a shm segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmSparseRef:
    """A picklable reference to a CSR/CSC matrix (three array parts)."""

    format: str
    shape: tuple[int, ...]
    data: "ShmArrayRef | np.ndarray"
    indices: "ShmArrayRef | np.ndarray"
    indptr: "ShmArrayRef | np.ndarray"


class ShmBlockRegistry:
    """Tracks the shared-memory segments one executor has created.

    Thread-safe; every mutation is pid-guarded so a forked worker that
    inherited the registry object can never unlink the parent's segments.
    """

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._lock = threading.Lock()
        # segment name -> SharedMemory handle (kept open so views stay valid)
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        # id(source array) -> (weakref, segment name): one copy per distinct
        # live array, exactly the identity-memoization scheme of sizeof().
        self._by_array: dict[int, tuple[weakref.ref, str]] = {}
        # Names of raw pinned-blob segments (worker-resident payloads).
        # They live in _segments like array segments, but have no source
        # array whose finalizer could reclaim them, so unpin must be explicit.
        self._pinned: set[str] = set()
        # Monotonic count of share_array calls; the process executor compares
        # it across a batch to learn whether any payload rode shared memory
        # (and therefore whether the sizeof memo must be cleared at commit).
        self.requests = 0
        atexit.register(self.unlink_all)

    # -- sharing ---------------------------------------------------------

    def share_array(self, array: np.ndarray) -> ShmArrayRef:
        """Copy *array* into shared memory (memoized) and return its ref."""
        key = id(array)
        with self._lock:
            self.requests += 1
            entry = self._by_array.get(key)
            if entry is not None and entry[0]() is array:
                name = entry[1]
                return ShmArrayRef(name, array.shape, array.dtype.str)
        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes))
        try:
            view = np.ndarray(
                contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
            )
            view[...] = contiguous
            with self._lock:
                self._segments[segment.name] = segment
                try:
                    ref = weakref.ref(array)
                    weakref.finalize(array, self._unlink_named, segment.name)
                    self._by_array[key] = (ref, segment.name)
                except TypeError:  # pragma: no cover - ndarrays are weakref-able
                    pass
        except BaseException:
            # The fill or registration failed: the segment would otherwise
            # outlive this call unreferenced and leak /dev/shm pages.
            with self._lock:
                self._segments.pop(segment.name, None)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        return ShmArrayRef(segment.name, array.shape, array.dtype.str)

    # -- pinned blobs (worker-resident payloads) -------------------------

    def pin_segment(self, blob: bytes) -> str:
        """Copy a pickled payload blob into a segment pinned until unpinned.

        Unlike :meth:`share_array` segments, a pinned segment's lifetime is
        managed explicitly (``unpin_segment`` / ``unlink_all``): it backs a
        worker-resident payload whose driver-side anchor is the executor's
        pin table, not a garbage-collectable array.
        """
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
        try:
            segment.buf[: len(blob)] = blob
            with self._lock:
                self._segments[segment.name] = segment
                self._pinned.add(segment.name)
        except BaseException:
            with self._lock:
                self._segments.pop(segment.name, None)
                self._pinned.discard(segment.name)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        return segment.name

    def unpin_segment(self, name: str) -> None:
        """Unlink one pinned-blob segment (idempotent, owner-only)."""
        with self._lock:
            self._pinned.discard(name)
        self._unlink_named(name)

    def pinned_segments(self) -> list[str]:
        """Names of live pinned-blob segments (leak check)."""
        with self._lock:
            return sorted(self._pinned)

    # -- lifecycle -------------------------------------------------------

    def _unlink_named(self, name: str) -> None:
        if os.getpid() != self._pid:
            return  # a forked worker inherited this finalizer: not the owner
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def unlink_all(self) -> None:
        """Unlink every live segment this registry still owns."""
        if os.getpid() != self._pid:
            return
        with self._lock:
            names = list(self._segments)
        for name in names:
            self._unlink_named(name)
        with self._lock:
            self._by_array.clear()
            self._pinned.clear()

    def active_segments(self) -> list[str]:
        """Names of segments created and not yet unlinked (leak check)."""
        with self._lock:
            return sorted(self._segments)


# -- payload encoding --------------------------------------------------------


def encode_payload(
    obj: Any, registry: ShmBlockRegistry, threshold: int = DEFAULT_SHM_THRESHOLD
) -> Any:
    """Replace large arrays inside *obj* with shared-memory references.

    Walks lists, tuples, and dicts; dense ndarrays and CSR/CSC matrices at
    or above *threshold* bytes become refs, everything else is returned
    unchanged (and travels by pickle).  The returned structure is what a
    worker hands to :func:`decode_payload`.
    """

    def encode(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            if value.nbytes >= threshold and value.dtype != object:
                return registry.share_array(value)
            return value
        if sp.issparse(value) and getattr(value, "format", None) in _SPARSE_FORMATS:
            parts = (value.data, value.indices, value.indptr)
            if any(part.nbytes >= threshold for part in parts):
                return ShmSparseRef(
                    value.format,
                    tuple(value.shape),
                    *(encode(part) for part in parts),
                )
            return value
        if isinstance(value, tuple):
            return tuple(encode(item) for item in value)
        if isinstance(value, list):
            return [encode(item) for item in value]
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        return value

    return encode(obj)


# Worker-side cache of attached segments.  Attachments persist for the
# worker's lifetime: the parent may have unlinked a segment (unlink does not
# unmap), and the same named segment is re-used across every stage that
# ships the same source array, so the map stays small and hot.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(name)
        if segment is not None:
            return segment
        segment = shared_memory.SharedMemory(name=name)
        # Attaching registered the segment with this process's resource
        # tracker, which would unlink it when *this* process exits -- but the
        # creating process owns the segment.  Undo the registration.
        try:  # pragma: no cover - depends on resource_tracker internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        _ATTACHED[name] = segment
        return segment


def decode_payload(obj: Any) -> Any:
    """Rebuild a payload: refs become zero-copy views over shared memory."""

    def decode(value: Any) -> Any:
        if isinstance(value, ShmArrayRef):
            segment = _attach(value.name)
            return np.ndarray(value.shape, dtype=np.dtype(value.dtype), buffer=segment.buf)
        if isinstance(value, ShmSparseRef):
            parts = (decode(value.data), decode(value.indices), decode(value.indptr))
            cls = sp.csr_matrix if value.format == "csr" else sp.csc_matrix
            return cls(parts, shape=value.shape, copy=False)
        if isinstance(value, tuple):
            return tuple(decode(item) for item in value)
        if isinstance(value, list):
            return [decode(item) for item in value]
        if isinstance(value, dict):
            return {key: decode(item) for key, item in value.items()}
        return value

    return decode(obj)
