"""repro: a full Python reproduction of sPCA (SIGMOD 2015).

sPCA is a scalable Principal Component Analysis for big data on distributed
platforms (Elgamal, Yabandeh, Aboulnaga, Mustafa, Hefeeda; SIGMOD 2015).
This package reimplements the whole system from scratch:

- :mod:`repro.core` -- the PPCA EM algorithm and the sPCA driver;
- :mod:`repro.linalg` -- the mean-propagated matrix primitives of Section 3;
- :mod:`repro.engine` -- simulated MapReduce and Spark platforms with
  byte-accurate dataflow accounting;
- :mod:`repro.backends` -- sPCA on each platform;
- :mod:`repro.baselines` -- Mahout-PCA (stochastic SVD), MLlib-PCA
  (covariance eigendecomposition), SVD-Bidiag, and Lanczos SVD;
- :mod:`repro.analysis` -- the Table 1 cost model;
- :mod:`repro.data` -- synthetic analogs of the paper's four datasets;
- :mod:`repro.metrics` -- the paper's accuracy metric and subspace checks;
- :mod:`repro.extensions` -- PPCA with missing values and mixtures of PPCA.

Quickstart::

    from repro import SPCA, SPCAConfig
    model, history = SPCA(SPCAConfig(n_components=10)).fit(matrix)
"""

from repro.core import SPCA, PCAModel, SPCAConfig, TrainingHistory, fit_ppca
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "PCAModel",
    "ReproError",
    "SPCA",
    "SPCAConfig",
    "TrainingHistory",
    "fit_ppca",
]
