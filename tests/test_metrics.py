"""Accuracy and subspace metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.metrics import (
    accuracy_from_error,
    ideal_accuracy,
    percent_of_ideal,
    reconstruction_error,
    subspace_angle_degrees,
)
from repro.metrics.subspace import explained_variance_ratio


@pytest.fixture
def rng():
    return np.random.default_rng(31)


def test_perfect_components_give_zero_error(rng):
    # Rank-2 data reconstructed with its own top-2 basis has ~zero error.
    factors = rng.normal(size=(100, 2))
    loadings = rng.normal(size=(2, 10))
    data = factors @ loadings
    centered = data - data.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    error = reconstruction_error(data, vt[:2].T)
    assert error < 1e-8


def test_error_is_scale_invariant(rng):
    data = rng.normal(size=(50, 8)) + 3.0
    components = rng.normal(size=(8, 2))
    assert reconstruction_error(data * 7.0, components) == pytest.approx(
        reconstruction_error(data, components), rel=1e-9
    )


def test_error_sampling_requires_rng(rng):
    data = rng.normal(size=(20, 5))
    with pytest.raises(ShapeError):
        reconstruction_error(data, rng.normal(size=(5, 2)), sample_fraction=0.5)


def test_error_component_shape_check(rng):
    with pytest.raises(ShapeError):
        reconstruction_error(rng.normal(size=(10, 5)), rng.normal(size=(4, 2)))


def test_ideal_accuracy_beats_random_components(rng):
    data = rng.normal(size=(200, 12)) @ rng.normal(size=(12, 12))
    ideal = ideal_accuracy(data, 3)
    random_accuracy = accuracy_from_error(
        reconstruction_error(data, rng.normal(size=(12, 3)))
    )
    assert ideal > random_accuracy


def test_ideal_accuracy_sparse(rng):
    # Unstructured sparse noise has no good rank-5 approximation, so the
    # ideal accuracy is low -- but it must still beat random components.
    matrix = sp.random(150, 40, density=0.2, random_state=3, format="csr")
    ideal = ideal_accuracy(matrix, 5)
    assert ideal <= 1.0
    random_accuracy = accuracy_from_error(
        reconstruction_error(matrix, rng.normal(size=(40, 5)))
    )
    assert ideal > random_accuracy


def test_ideal_accuracy_component_budget(rng):
    with pytest.raises(ShapeError):
        ideal_accuracy(rng.normal(size=(4, 10)), 4)


def test_percent_of_ideal():
    assert percent_of_ideal(0.45, 0.5) == pytest.approx(90.0)
    with pytest.raises(ShapeError):
        percent_of_ideal(0.5, 0.0)


def test_subspace_angle_identical_is_zero(rng):
    basis = np.linalg.qr(rng.normal(size=(10, 3)))[0]
    assert subspace_angle_degrees(basis, basis) == pytest.approx(0.0, abs=1e-6)


def test_subspace_angle_orthogonal_is_ninety():
    a = np.eye(6)[:, :2]
    b = np.eye(6)[:, 2:4]
    assert subspace_angle_degrees(a, b) == pytest.approx(90.0)


def test_subspace_angle_rotation_invariant(rng):
    basis = rng.normal(size=(12, 4))
    rotation = np.linalg.qr(rng.normal(size=(4, 4)))[0]
    assert subspace_angle_degrees(basis, basis @ rotation) == pytest.approx(0.0, abs=1e-4)


def test_subspace_angle_dimension_mismatch(rng):
    with pytest.raises(ShapeError):
        subspace_angle_degrees(rng.normal(size=(5, 2)), rng.normal(size=(6, 2)))


def test_explained_variance_ratio():
    ratios = explained_variance_ratio(10.0, np.array([5.0, 3.0]))
    np.testing.assert_allclose(ratios, [0.5, 0.3])
    with pytest.raises(ShapeError):
        explained_variance_ratio(0.0, np.array([1.0]))


class TestInducedNormProperties:
    def test_error_dominated_by_heaviest_column(self, rng):
        # Construct data where one column carries almost all the mass; the
        # induced 1-norm error is governed by that column's reconstruction.
        data = rng.normal(size=(100, 6)) * 0.01
        data[:, 2] += 10.0
        components = np.zeros((6, 2))
        components[2, 0] = 1.0  # reconstructs the heavy column exactly
        components[0, 1] = 1.0
        error = reconstruction_error(data, components)
        assert error < 0.05

    def test_projection_is_scale_invariant_in_components(self, rng):
        # The least-squares projection depends only on span(C), so scaling
        # C leaves the error unchanged.
        data = rng.normal(size=(60, 8))
        components = rng.normal(size=(8, 3))
        assert reconstruction_error(data, components) == pytest.approx(
            reconstruction_error(data, 1e-6 * components), rel=1e-9
        )
