"""Chaos suite for the streaming pipeline.

Two contracts, mirroring ``tests/test_chaos_recovery.py``:

1. Any *survivable* fault plan (every event leaves at least one retry in
   the ``max_task_attempts`` budget) changes nothing but time: the streamed
   model and the per-job byte accounting are identical to a fault-free run.
2. A *fatal* plan kills the stream mid-flight with ``JobFailedError`` --
   and resuming from the last periodic checkpoint, even on the *other*
   engine, reaches the bit-identical model the uninterrupted run reaches.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointPolicy,
    DirectoryCheckpointStore,
    HDFSCheckpointStore,
)
from repro.data.generators import lowrank_dense
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.errors import JobFailedError
from repro.faults import (
    ExecutorLoss,
    FaultPlan,
    FetchFailure,
    KillTask,
    PlannedFaults,
    Straggler,
)
from repro.stream import (
    STREAM_STATS_JOB,
    STREAM_WINDOW_JOB,
    MatrixSource,
    StreamConfig,
    StreamingPCA,
)

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)
MAX_TASK_ATTEMPTS = 4
JOB_NAMES = (STREAM_WINDOW_JOB, STREAM_STATS_JOB)

N_ROWS = 160
DATA = lowrank_dense(N_ROWS, 8, 2, noise=0.1, seed=17)
CONFIG = StreamConfig(n_components=2, window=25, seed=18, rows_per_task=8)
# 160 rows / 25-row tumbling windows: 6 complete + a 10-row flushed tail.
TOTAL_WINDOWS = 7


def source():
    # chunk_rows=30 > window=25 means some pushes complete two windows at
    # once, exercising the emitted-ahead-of-processed replay-point logic.
    return MatrixSource(DATA, chunk_rows=30)


def run_stream(engine_name, plan=None, checkpoint=None):
    faults = PlannedFaults(plan) if plan is not None else None
    pca = StreamingPCA(
        CONFIG,
        engine_name,
        cluster=CLUSTER,
        faults=faults,
        max_task_attempts=MAX_TASK_ATTEMPTS,
    )
    result = pca.run(source(), checkpoint=checkpoint)
    return result, pca.engine.metrics


def job_signature(metrics):
    """The deterministic accounting columns of every submitted job."""
    return [
        (job.name, job.n_map_tasks, job.map_output_bytes, job.shuffle_bytes,
         job.hdfs_read_bytes, job.hdfs_write_bytes, job.driver_result_bytes,
         job.broadcast_bytes, job.intermediate_bytes)
        for job in metrics.jobs
    ]


_BASELINES = {}


@pytest.fixture(scope="module", autouse=True)
def _clear_baselines():
    _BASELINES.clear()
    yield
    _BASELINES.clear()


def baseline(engine_name):
    if engine_name not in _BASELINES:
        result, metrics = run_stream(engine_name)
        _BASELINES[engine_name] = (result, job_signature(metrics))
    return _BASELINES[engine_name]


def survivable_events():
    job = st.sampled_from(JOB_NAMES)
    occurrence = st.one_of(st.none(), st.integers(min_value=0, max_value=6))
    kills = st.builds(
        KillTask,
        job=job,
        task=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        attempts=st.integers(min_value=1, max_value=MAX_TASK_ATTEMPTS - 1),
        occurrence=occurrence,
    )
    fetches = st.builds(
        FetchFailure,
        job=job,
        attempts=st.integers(min_value=1, max_value=MAX_TASK_ATTEMPTS - 1),
        occurrence=occurrence,
    )
    stragglers = st.builds(
        Straggler,
        job=job,
        factor=st.floats(min_value=1.5, max_value=20.0),
        occurrence=occurrence,
    )
    losses = st.builds(
        ExecutorLoss,
        job=job,
        executor=st.integers(min_value=0, max_value=CLUSTER.num_nodes - 1),
        occurrence=occurrence,
    )
    return st.one_of(kills, fetches, stragglers, losses)


def survivable_plans():
    return st.lists(survivable_events(), min_size=1, max_size=4).map(
        lambda events: FaultPlan(events=tuple(events))
    )


@pytest.mark.parametrize("engine_name", ["mapreduce", "spark"])
@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(plan=survivable_plans())
def test_property_survivable_plans_change_nothing_but_time(engine_name, plan):
    assert plan.check_recoverable(MAX_TASK_ATTEMPTS)
    clean, clean_signature = baseline(engine_name)
    chaos, chaos_metrics = run_stream(engine_name, plan)
    assert np.array_equal(chaos.model.components, clean.model.components)
    assert np.array_equal(chaos.model.mean, clean.model.mean)
    assert chaos.model.noise_variance == clean.model.noise_variance
    assert chaos.windows == clean.windows
    assert job_signature(chaos_metrics) == clean_signature


@pytest.mark.parametrize("engine_name", ["mapreduce", "spark"])
def test_fault_free_plan_equals_no_injector(engine_name):
    clean, clean_signature = baseline(engine_name)
    result, metrics = run_stream(engine_name, FaultPlan())
    assert np.array_equal(result.model.components, clean.model.components)
    assert job_signature(metrics) == clean_signature
    assert all(job.faults == {} for job in metrics.jobs)
    assert all(job.task_retries == 0 for job in metrics.jobs)


def fatal_plan(engine_name):
    """Kill every retry of the 5th window's job (window index 4)."""
    job = STREAM_WINDOW_JOB if engine_name == "mapreduce" else STREAM_STATS_JOB
    return FaultPlan(
        events=(
            KillTask(job=job, attempts=MAX_TASK_ATTEMPTS, occurrence=4),
        )
    )


@pytest.mark.parametrize(
    "engine_name,store_kind",
    [("mapreduce", "hdfs"), ("spark", "directory")],
)
def test_fatal_kill_then_resume_is_bit_identical(
    engine_name, store_kind, tmp_path
):
    plan = fatal_plan(engine_name)
    assert not plan.check_recoverable(MAX_TASK_ATTEMPTS)
    if store_kind == "hdfs":
        store = HDFSCheckpointStore(InMemoryHDFS())
    else:
        store = DirectoryCheckpointStore(tmp_path / "ckpt")
    policy = CheckpointPolicy(store, every=2)
    with pytest.raises(JobFailedError):
        run_stream(engine_name, plan, checkpoint=policy)
    # The crash left the periodic snapshots behind (after windows 2 and 4).
    assert store.iterations() == [2, 4]
    resumed = StreamingPCA(
        CONFIG, engine_name, cluster=CLUSTER, max_task_attempts=MAX_TASK_ATTEMPTS
    ).resume(source(), policy)
    clean, _ = baseline(engine_name)
    # Resume replays from window index 4 and finishes the stream.
    assert resumed.windows == TOTAL_WINDOWS - 4
    assert resumed.next_window_index == TOTAL_WINDOWS
    assert resumed.rows_consumed == clean.rows_consumed == N_ROWS
    assert np.array_equal(resumed.model.components, clean.model.components)
    assert np.array_equal(resumed.model.mean, clean.model.mean)
    assert resumed.model.noise_variance == clean.model.noise_variance
    assert resumed.model.n_samples == clean.model.n_samples


def test_resume_on_the_other_engine_is_bit_identical(tmp_path):
    # The checkpoint is engine-agnostic driver state: crash on MapReduce,
    # resume on Spark, same bits.
    store = DirectoryCheckpointStore(tmp_path / "ckpt")
    policy = CheckpointPolicy(store, every=3)
    with pytest.raises(JobFailedError):
        run_stream("mapreduce", fatal_plan("mapreduce"), checkpoint=policy)
    assert store.iterations() == [3]
    resumed = StreamingPCA(CONFIG, "spark", cluster=CLUSTER).resume(
        source(), policy
    )
    clean, _ = baseline("spark")
    assert resumed.windows == TOTAL_WINDOWS - 3
    assert np.array_equal(resumed.model.components, clean.model.components)
    assert resumed.model.noise_variance == clean.model.noise_variance


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(
    every=st.integers(min_value=1, max_value=3),
    kill_occurrence=st.integers(min_value=1, max_value=5),
)
def test_property_any_crash_point_resumes_bit_identically(
    every, kill_occurrence, tmp_path_factory
):
    # Crash the stream at any window, checkpointing at any cadence that
    # leaves at least one snapshot behind; the resumed model must always
    # equal the uninterrupted one bitwise.
    if kill_occurrence < every:
        return  # no snapshot exists before the crash; nothing to resume
    store = DirectoryCheckpointStore(
        tmp_path_factory.mktemp("stream-chaos") / "ckpt"
    )
    policy = CheckpointPolicy(store, every=every)
    plan = FaultPlan(
        events=(
            KillTask(
                job=STREAM_WINDOW_JOB,
                attempts=MAX_TASK_ATTEMPTS,
                occurrence=kill_occurrence,
            ),
        )
    )
    with pytest.raises(JobFailedError):
        run_stream("mapreduce", plan, checkpoint=policy)
    resumed = StreamingPCA(CONFIG, "mapreduce", cluster=CLUSTER).resume(
        source(), policy
    )
    clean, _ = baseline("mapreduce")
    assert np.array_equal(resumed.model.components, clean.model.components)
    assert np.array_equal(resumed.model.mean, clean.model.mean)
    assert resumed.model.noise_variance == clean.model.noise_variance
