"""The distributed execution cost model of Section 2 (Table 1).

For each PCA method the paper derives two worst-case quantities for an
``N x D`` input and ``d`` principal components:

=============================  =====================  ==========================
Method                         Time complexity        Communication complexity
=============================  =====================  ==========================
Eigen decomp. of covariance    O(N*D*min(N, D))       O(D^2)
SVD-Bidiag                     O(N*D^2 + D^3)         O(max((N+D)*d, D^2))
Stochastic SVD (SSVD)          O(N*D*d)               O(max(N*d, d^2))
Probabilistic PCA (sPCA)       O(N*D*d)               O(D*d)
=============================  =====================  ==========================

The numeric evaluators below return the dominant term's value (unit
operations / unit elements), which is what the empirical-scaling benchmark
checks the engines against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError

COVARIANCE = "covariance-eigen"
SVD_BIDIAG = "svd-bidiag"
SSVD = "ssvd"
PPCA = "ppca"

METHODS: tuple[str, ...] = (COVARIANCE, SVD_BIDIAG, SSVD, PPCA)

_LIBRARIES = {
    COVARIANCE: "MLlib-PCA (Spark), RScaLAPACK",
    SVD_BIDIAG: "RScaLAPACK",
    SSVD: "Mahout-PCA (MapReduce)",
    PPCA: "sPCA (our algorithm)",
}

_TIME_FORMULAS = {
    COVARIANCE: "O(ND * min(N, D))",
    SVD_BIDIAG: "O(ND^2 + D^3)",
    SSVD: "O(NDd)",
    PPCA: "O(NDd)",
}

_COMM_FORMULAS = {
    COVARIANCE: "O(D^2)",
    SVD_BIDIAG: "O(max((N + D)d, D^2))",
    SSVD: "O(max(Nd, d^2))",
    PPCA: "O(Dd)",
}


@dataclass(frozen=True)
class MethodCosts:
    """One row of Table 1, symbolic and numeric."""

    method: str
    time_formula: str
    communication_formula: str
    example_libraries: str
    time_ops: float
    communication_elements: float


def _validate(n: int, d_cols: int, d: int) -> None:
    if n < 1 or d_cols < 1 or d < 1:
        raise ShapeError(f"N, D, d must be positive, got {(n, d_cols, d)}")
    if d > d_cols:
        raise ShapeError(f"d={d} cannot exceed D={d_cols}")


def time_complexity(method: str, n: int, d_cols: int, d: int) -> float:
    """Dominant-term operation count for *method* on an N x D, d-component run."""
    _validate(n, d_cols, d)
    if method == COVARIANCE:
        return float(n) * d_cols * min(n, d_cols)
    if method == SVD_BIDIAG:
        return float(n) * d_cols**2 + float(d_cols) ** 3
    if method in (SSVD, PPCA):
        return float(n) * d_cols * d
    raise ShapeError(f"unknown method: {method!r}")


def communication_complexity(method: str, n: int, d_cols: int, d: int) -> float:
    """Dominant-term intermediate-data element count for *method*."""
    _validate(n, d_cols, d)
    if method == COVARIANCE:
        return float(d_cols) ** 2
    if method == SVD_BIDIAG:
        return float(max((n + d_cols) * d, d_cols**2))
    if method == SSVD:
        return float(max(n * d, d**2))
    if method == PPCA:
        return float(d_cols) * d
    raise ShapeError(f"unknown method: {method!r}")


def method_costs(method: str, n: int, d_cols: int, d: int) -> MethodCosts:
    """The full Table 1 row for one method at concrete sizes."""
    return MethodCosts(
        method=method,
        time_formula=_TIME_FORMULAS[method],
        communication_formula=_COMM_FORMULAS[method],
        example_libraries=_LIBRARIES[method],
        time_ops=time_complexity(method, n, d_cols, d),
        communication_elements=communication_complexity(method, n, d_cols, d),
    )


def table1(n: int, d_cols: int, d: int) -> list[MethodCosts]:
    """All four rows of Table 1 evaluated at concrete sizes."""
    return [method_costs(method, n, d_cols, d) for method in METHODS]
