"""Paper-scaled dataset specifications.

The experiments in Section 5 use four datasets at several sizes.  We scale
uniformly: columns by ~1/10, rows to laptop scale, and d = 10 principal
components standing in for the paper's 50.  The MLlib failure threshold is
scaled by the same factor: the paper's driver fails above D = 6,000 on a
32 GB machine, so the scaled cluster gives the driver 4 MB, which holds a
600^2 covariance (2.9 MB) but not a 1,000^2 one (8 MB) -- the failure
boundary falls at the same *relative* column count.

==========  =============================  =========================
Dataset     Paper size                      Scaled size here
==========  =============================  =========================
Tweets      1.26B x {2K, 6K, 71.5K}        20,000 x {200, 600, 7150}
Bio-Text    8.2M  x {2K, 10K, 14K}         8,000  x {200, 1000, 1400}
Diabetes    353   x {2K, 10K, 65.7K}       353    x {200, 1000, 6567}
Images      160M  x 128                    20,000 x 128
==========  =============================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.generators import bag_of_words, nmr_spectra, sift_features
from repro.engine.cluster import ClusterSpec

SCALED_COMPONENTS = 10
SCALED_DRIVER_MEMORY_MB = 4.0


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset at one size, plus how to generate it."""

    name: str
    n_rows: int
    n_cols: int
    sparse: bool
    paper_size: str
    generate: Callable[[], object]

    @property
    def label(self) -> str:
        return f"{self.name} {self.n_rows}x{self.n_cols}"


def scaled_cluster(num_nodes: int = 8) -> ClusterSpec:
    """The paper's 8x8-core cluster with memory scaled like the data."""
    return ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=8,
        memory_per_node_mb=64.0,
        driver_memory_mb=SCALED_DRIVER_MEMORY_MB,
    )


def _tweets(n_rows: int, n_cols: int, paper_size: str) -> DatasetSpec:
    return DatasetSpec(
        name="tweets",
        n_rows=n_rows,
        n_cols=n_cols,
        sparse=True,
        paper_size=paper_size,
        generate=lambda: bag_of_words(
            n_rows, n_cols, words_per_doc=8.0, topic_rank=16, seed=101
        ),
    )


def _biotext(n_rows: int, n_cols: int, paper_size: str) -> DatasetSpec:
    return DatasetSpec(
        name="biotext",
        n_rows=n_rows,
        n_cols=n_cols,
        sparse=True,
        paper_size=paper_size,
        generate=lambda: bag_of_words(
            n_rows, n_cols, words_per_doc=40.0, topic_rank=24, seed=202
        ),
    )


def _diabetes(n_rows: int, n_cols: int, paper_size: str) -> DatasetSpec:
    return DatasetSpec(
        name="diabetes",
        n_rows=n_rows,
        n_cols=n_cols,
        sparse=False,
        paper_size=paper_size,
        generate=lambda: nmr_spectra(n_rows, n_cols, seed=303),
    )


def _images(n_rows: int, n_cols: int, paper_size: str) -> DatasetSpec:
    return DatasetSpec(
        name="images",
        n_rows=n_rows,
        n_cols=n_cols,
        sparse=False,
        paper_size=paper_size,
        generate=lambda: sift_features(n_rows, n_cols, seed=404),
    )


def tweets_series(n_rows: int = 20_000) -> list[DatasetSpec]:
    """The three Tweets sizes of Table 2 (columns 2K / 6K / 71.5K scaled)."""
    return [
        _tweets(n_rows, 200, "1.26B x 2K"),
        _tweets(n_rows, 600, "1.26B x 6K"),
        _tweets(n_rows, 7150, "1.26B x 71.5K"),
    ]


def biotext_series(n_rows: int = 8_000) -> list[DatasetSpec]:
    """The three Bio-Text sizes of Table 2."""
    return [
        _biotext(n_rows, 200, "8.2M x 2K"),
        _biotext(n_rows, 1000, "8.2M x 10K"),
        _biotext(n_rows, 1400, "8.2M x 14K"),
    ]


def diabetes_series(n_rows: int = 353) -> list[DatasetSpec]:
    """The three Diabetes sizes of Table 2 (rows unscaled: 353 patients)."""
    return [
        _diabetes(n_rows, 200, "353 x 2K"),
        _diabetes(n_rows, 1000, "353 x 10K"),
        _diabetes(n_rows, 6567, "353 x 65.7K"),
    ]


def images_series(n_rows: int = 20_000) -> list[DatasetSpec]:
    """The single Images size of Table 2 (128 SIFT dimensions, unscaled)."""
    return [_images(n_rows, 128, "160M x 128")]


PAPER_DATASETS: dict[str, Callable[[], list[DatasetSpec]]] = {
    "tweets": tweets_series,
    "biotext": biotext_series,
    "diabetes": diabetes_series,
    "images": images_series,
}


def make_dataset(spec: DatasetSpec):
    """Generate the matrix for *spec* (convenience wrapper)."""
    return spec.generate()
