"""The MapReduce engine: classic jobs, stateful combiners, failure injection."""

import numpy as np
import pytest

from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce import (
    InMemoryHDFS,
    MapReduceJob,
    MapReduceRuntime,
    Mapper,
    Reducer,
    SumReducer,
)
from repro.errors import FileSystemError, InvalidPlanError, JobFailedError


class WordCountMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.increment("words")
            yield word, 1


class StatefulSumMapper(Mapper):
    """The stateful-combiner pattern of Section 4.1: accumulate in the
    mapper, emit once from cleanup."""

    def setup(self, ctx):
        self.total = 0

    def map(self, key, value, ctx):
        self.total += value
        return ()

    def cleanup(self, ctx):
        yield "sum", self.total


def splits_of(records, n):
    boundaries = np.linspace(0, len(records), n + 1, dtype=int)
    return [records[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:])]


@pytest.fixture
def runtime():
    return MapReduceRuntime(cluster=ClusterSpec(num_nodes=2, cores_per_node=2))


def word_count_job(**kwargs):
    return MapReduceJob(
        name="wordcount", mapper=WordCountMapper(), reducer=SumReducer(), **kwargs
    )


DOCS = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the fox"),
]


def test_word_count(runtime):
    output = dict(runtime.run(word_count_job(), splits_of(DOCS, 2)))
    assert output == {"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}


def test_word_count_with_combiner_same_result(runtime):
    job = word_count_job(combiner=SumReducer())
    output = dict(runtime.run(job, splits_of(DOCS, 2)))
    assert output["the"] == 3 and output["fox"] == 2


def test_combiner_reduces_shuffle_bytes():
    rt_plain = MapReduceRuntime()
    rt_comb = MapReduceRuntime()
    records = [(i, "alpha beta gamma alpha") for i in range(50)]
    rt_plain.run(word_count_job(), splits_of(records, 4))
    rt_comb.run(word_count_job(combiner=SumReducer()), splits_of(records, 4))
    assert rt_comb.metrics.jobs[0].shuffle_bytes < rt_plain.metrics.jobs[0].shuffle_bytes


def test_counters_aggregate_across_tasks(runtime):
    runtime.run(word_count_job(), splits_of(DOCS, 3))
    assert runtime.metrics.jobs[0].counters["words"] == 9


def test_stateful_mapper_cleanup_emission(runtime):
    records = [(i, i) for i in range(10)]
    output = runtime.run(
        MapReduceJob(name="sum", mapper=StatefulSumMapper(), reducer=SumReducer()),
        splits_of(records, 3),
    )
    assert dict(output) == {"sum": 45}
    # One cleanup record per map task, not per input record.
    assert runtime.metrics.jobs[0].n_map_tasks == 3


def test_map_only_job(runtime):
    records = [(i, i * 2) for i in range(5)]
    output = runtime.run(
        MapReduceJob(name="identity", mapper=Mapper()), splits_of(records, 2)
    )
    assert sorted(output) == records
    assert runtime.metrics.jobs[0].shuffle_bytes == 0


def test_multiple_reducers_partition_keys(runtime):
    job = word_count_job(num_reducers=4)
    output = dict(runtime.run(job, splits_of(DOCS, 2)))
    assert output["the"] == 3
    assert runtime.metrics.jobs[0].n_reduce_tasks == 4


def test_hdfs_input_and_output(runtime):
    runtime.hdfs.write("input/docs", DOCS)
    job = word_count_job(output_path="output/counts")
    runtime.run(job, "input/docs")
    stored = dict(runtime.hdfs.read("output/counts"))
    assert stored["the"] == 3
    stats = runtime.metrics.jobs[0]
    assert stats.hdfs_read_bytes > 0
    assert stats.hdfs_write_bytes > 0


def test_empty_splits_rejected(runtime):
    with pytest.raises(InvalidPlanError):
        runtime.run(word_count_job(), [])


def test_failure_injection_preserves_results():
    flaky = MapReduceRuntime(failure_rate=0.3, seed=7)
    reliable = MapReduceRuntime()
    records = [(i, "x y z") for i in range(20)]
    out_flaky = dict(flaky.run(word_count_job(), splits_of(records, 5)))
    out_reliable = dict(reliable.run(word_count_job(), splits_of(records, 5)))
    assert out_flaky == out_reliable
    assert flaky.metrics.jobs[0].task_retries > 0


def test_failed_attempts_do_not_double_count_counters():
    # Every map attempt increments the "words" counter; only the successful
    # attempt's increments may reach JobStats, or retries inflate counters.
    flaky = MapReduceRuntime(failure_rate=0.5, seed=42)
    records = [(i, "alpha beta") for i in range(12)]
    flaky.run(word_count_job(), splits_of(records, 6))
    stats = flaky.metrics.jobs[0]
    assert stats.task_retries > 0  # the seed must actually exercise retries
    assert stats.counters["words"] == 24


def test_pathological_failure_rate_aborts_job():
    doomed = MapReduceRuntime(failure_rate=0.99, max_task_attempts=3, seed=1)
    with pytest.raises(JobFailedError):
        doomed.run(word_count_job(), splits_of(DOCS, 1))


def test_invalid_failure_rate():
    with pytest.raises(InvalidPlanError):
        MapReduceRuntime(failure_rate=1.5)


def test_sim_time_includes_job_overhead(runtime):
    runtime.run(word_count_job(), splits_of(DOCS, 1))
    assert runtime.metrics.jobs[0].sim_seconds >= runtime.cost_model.per_job_overhead_s


def test_sim_time_decreases_with_more_cores():
    # A compute-heavy job should get faster on a bigger cluster.
    class Spinner(Mapper):
        def map(self, key, value, ctx):
            total = sum(range(20000))
            yield key, total

    records = [(i, i) for i in range(32)]
    small = MapReduceRuntime(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
    big = MapReduceRuntime(cluster=ClusterSpec(num_nodes=8, cores_per_node=8))
    small.run(MapReduceJob(name="spin", mapper=Spinner()), splits_of(records, 32))
    big.run(MapReduceJob(name="spin", mapper=Spinner()), splits_of(records, 32))
    small_compute = small.metrics.jobs[0].sim_seconds - small.cost_model.per_job_overhead_s
    big_compute = big.metrics.jobs[0].sim_seconds - big.cost_model.per_job_overhead_s
    assert big_compute < small_compute


class TestHDFS:
    def test_write_read_round_trip(self):
        fs = InMemoryHDFS()
        fs.write("a", [(1, "x")])
        assert fs.read("a") == [(1, "x")]

    def test_read_charges_bytes(self):
        fs = InMemoryHDFS()
        nbytes = fs.write("a", [(1, np.zeros(100))])
        fs.read("a")
        assert fs.bytes_read == nbytes
        assert fs.bytes_written == nbytes

    def test_replication_multiplies_write_bytes(self):
        fs = InMemoryHDFS(replication=3)
        nbytes = fs.write("a", [(1, np.zeros(10))])
        assert fs.bytes_written == 3 * nbytes

    def test_missing_path(self):
        fs = InMemoryHDFS()
        with pytest.raises(FileSystemError):
            fs.read("missing")
        with pytest.raises(FileSystemError):
            fs.size("missing")
        with pytest.raises(FileSystemError):
            fs.delete("missing")

    def test_no_overwrite_flag(self):
        fs = InMemoryHDFS()
        fs.write("a", [(1, 2)])
        with pytest.raises(FileSystemError):
            fs.write("a", [(3, 4)], overwrite=False)

    def test_delete_and_listing(self):
        fs = InMemoryHDFS()
        fs.write("a", [(1, 2)])
        fs.write("b", [(3, 4)])
        assert set(fs.listing()) == {"a", "b"}
        fs.delete("a")
        assert not fs.exists("a")
        assert fs.total_stored_bytes == fs.size("b")

    def test_invalid_replication(self):
        with pytest.raises(FileSystemError):
            InMemoryHDFS(replication=0)
