"""The paper's primary contribution: PPCA and its scalable variant sPCA.

- :mod:`repro.core.config` -- :class:`SPCAConfig`, including the on/off
  switches for every optimization of Section 3 (used by the Table 3
  ablations).
- :mod:`repro.core.ppca` -- the textbook sequential PPCA EM (Algorithm 1),
  used as a correctness reference.
- :mod:`repro.core.spca` -- the sPCA driver (Algorithm 4): local control flow
  plus a small number of distributed jobs dispatched through a
  :class:`repro.backends.base.Backend`.
- :mod:`repro.core.initialization` -- random and smart-guess (sPCA-SG)
  initialization.
- :mod:`repro.core.convergence` -- stop conditions.
- :mod:`repro.core.model` -- the fitted :class:`PCAModel`.
- :mod:`repro.core.checkpoint` -- EM state snapshots (periodic checkpoints
  the driver can resume from bit-identically after being killed).
"""

from repro.core.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    DirectoryCheckpointStore,
    EMCheckpoint,
    HDFSCheckpointStore,
)
from repro.core.config import SPCAConfig
from repro.core.convergence import ConvergenceTracker, IterationStats, TrainingHistory
from repro.core.initialization import random_initialization, smart_guess_initialization
from repro.core.model import PCAModel
from repro.core.persistence import (
    load_checkpoint,
    load_model,
    save_checkpoint,
    save_model,
)
from repro.core.ppca import fit_ppca
from repro.core.selection import choose_n_components, score_candidates
from repro.core.spca import SPCA

__all__ = [
    "CheckpointPolicy",
    "CheckpointStore",
    "ConvergenceTracker",
    "DirectoryCheckpointStore",
    "EMCheckpoint",
    "HDFSCheckpointStore",
    "IterationStats",
    "PCAModel",
    "SPCA",
    "SPCAConfig",
    "TrainingHistory",
    "choose_n_components",
    "fit_ppca",
    "load_checkpoint",
    "load_model",
    "random_initialization",
    "save_checkpoint",
    "save_model",
    "score_candidates",
    "smart_guess_initialization",
]
