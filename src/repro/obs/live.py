"""Live in-terminal run dashboard, fed by tracer listener hooks.

``repro-spca fit --live`` attaches a :class:`LiveDashboard` to the active
tracer.  The dashboard accumulates job/phase state from ``on_job``
notifications and repaints once per closed EM-iteration span -- the
natural frame rate of Algorithm 4, where each iteration is a fixed small
number of distributed jobs.

Two rendering modes:

- **ANSI** (interactive terminal): the block is redrawn in place with
  cursor-up escapes, giving a flicker-free ticking view.
- **plain** (pipes, CI logs, tests): one summary line per iteration, no
  escape codes.

The dashboard reads the process metrics registry *at render time* for the
quantities the trace does not carry per-iteration (executor occupancy,
cache hit ratio, fault/retry totals), so ``--live`` implies metrics
collection in the CLI.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Any, TextIO

from repro.obs.metrics import MetricsRegistry, cache_hit_ratio, get_registry
from repro.obs.tracer import TraceListener

_CURSOR_UP = "\x1b[1A"
_CLEAR_LINE = "\x1b[2K"


def _fmt(value: Any, spec: str = ".4g") -> str:
    if value is None:
        return "-"
    try:
        return format(float(value), spec)
    except (TypeError, ValueError):
        return str(value)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GiB"


class LiveDashboard(TraceListener):
    """Tracer listener that paints run progress to *stream*.

    Args:
        stream: destination (default ``sys.stderr`` so stdout stays clean
            for machine-readable fit output).
        registry: metrics registry to sample at render time; defaults to
            the process registry.
        plain: force one-line-per-iteration mode.  Auto-detected from
            ``stream.isatty()`` when None.
        max_phases: cap on phase rows in the ANSI block.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        registry: MetricsRegistry | None = None,
        plain: bool | None = None,
        max_phases: int = 8,
    ) -> None:
        self.stream: TextIO = stream if stream is not None else sys.stderr
        self._registry = registry
        if plain is None:
            isatty = getattr(self.stream, "isatty", None)
            plain = not (callable(isatty) and isatty())
        self.plain = plain
        self.max_phases = max_phases
        self._painted_lines = 0
        self.frames = 0
        self._reset()

    def _reset(self) -> None:
        self.run_name: str | None = None
        self.n_jobs = 0
        self.sim_seconds = 0.0
        self.shuffle_bytes = 0
        self.phase_seconds: OrderedDict[str, float] = OrderedDict()
        self.iteration: int | None = None
        self.objective: float | None = None
        self.convergence_delta: float | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- TraceListener hooks --------------------------------------------

    def on_span_start(self, span: Any) -> None:
        if span.kind == "run":
            self._reset()
            self.run_name = span.name

    def on_job(self, spans: list[Any], events: list[Any]) -> None:
        job = spans[0]
        self.n_jobs += 1
        self.sim_seconds = max(self.sim_seconds, job.t0 + job.dur)
        self.shuffle_bytes += int(job.attrs.get("shuffle_bytes", 0))
        for span in spans:
            if span.kind == "phase":
                self.phase_seconds[span.name] = (
                    self.phase_seconds.get(span.name, 0.0) + span.dur
                )

    def on_span_end(self, span: Any) -> None:
        if span.kind != "iteration":
            return
        self.iteration = int(span.attrs.get("index", -1))
        objective = span.attrs.get("objective")
        self.objective = float(objective) if objective is not None else None
        delta = span.attrs.get("convergence_delta")
        self.convergence_delta = float(delta) if delta is not None else None
        self.render()

    # -- rendering ------------------------------------------------------

    def _sample_registry(self) -> dict[str, Any]:
        registry = self.registry
        sample: dict[str, Any] = {
            "retries": None, "faults": None, "occupancy": None, "cache": None,
        }
        if not registry.enabled:
            return sample
        sample["retries"] = int(registry.counter_total("spca_task_retries_total"))
        sample["faults"] = int(registry.counter_total("spca_faults_total"))
        occupancies = [
            g.value
            for g in registry.gauge_values("spca_executor_occupancy")
            if g.value is not None
        ]
        sample["occupancy"] = occupancies[-1] if occupancies else None
        sample["cache"] = cache_hit_ratio(registry)
        return sample

    def render(self) -> None:
        self.frames += 1
        if self.plain:
            self._render_plain()
        else:
            self._render_ansi()

    def _render_plain(self) -> None:
        sample = self._sample_registry()
        parts = [
            f"[live] {self.run_name or 'run'}",
            f"iter={self.iteration if self.iteration is not None else '-'}",
            f"sim={self.sim_seconds:.3f}s",
            f"jobs={self.n_jobs}",
            f"obj={_fmt(self.objective, '.6g')}",
            f"delta={_fmt(self.convergence_delta, '.3g')}",
        ]
        if sample["occupancy"] is not None:
            parts.append(f"occ={sample['occupancy']:.0%}")
        if sample["cache"] is not None:
            parts.append(f"cache={sample['cache']:.0%}")
        if sample["retries"]:
            parts.append(f"retries={sample['retries']}")
        if sample["faults"]:
            parts.append(f"faults={sample['faults']}")
        self.stream.write(" ".join(parts) + "\n")
        self.stream.flush()

    def _render_ansi(self) -> None:
        lines = self._block_lines()
        out = self.stream
        if self._painted_lines:
            out.write((_CURSOR_UP + _CLEAR_LINE) * self._painted_lines)
        out.write("\n".join(lines) + "\n")
        out.flush()
        self._painted_lines = len(lines)

    def _block_lines(self) -> list[str]:
        sample = self._sample_registry()
        lines = [
            f"== {self.run_name or 'run'} "
            f"-- iteration {self.iteration if self.iteration is not None else '-'}",
            f"   sim time {self.sim_seconds:>10.3f}s   jobs {self.n_jobs:>5}   "
            f"shuffle {_fmt_bytes(self.shuffle_bytes)}",
            f"   objective {_fmt(self.objective, '.8g'):>14}   "
            f"conv delta {_fmt(self.convergence_delta, '.4g'):>10}",
        ]
        status: list[str] = []
        if sample["occupancy"] is not None:
            status.append(f"occupancy {sample['occupancy']:.0%}")
        if sample["cache"] is not None:
            status.append(f"cache hits {sample['cache']:.0%}")
        if sample["retries"] is not None:
            status.append(f"retries {sample['retries']}")
        if sample["faults"] is not None:
            status.append(f"faults {sample['faults']}")
        if status:
            lines.append("   " + "   ".join(status))
        if self.phase_seconds:
            total = sum(self.phase_seconds.values())
            lines.append("   phases:")
            ranked = sorted(self.phase_seconds.items(), key=lambda kv: -kv[1])
            for name, seconds in ranked[: self.max_phases]:
                share = seconds / total if total else 0.0
                bar = "#" * max(1, round(share * 24))
                lines.append(f"     {name:<20}{seconds:>10.3f}s {bar}")
        return lines

    def close(self) -> None:
        """Finish the dashboard (ANSI mode leaves the final frame up)."""
        if not self.plain and self._painted_lines:
            self.stream.flush()
