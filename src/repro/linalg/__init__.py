"""Matrix substrate for sPCA: sparse blocks, mean propagation, norms.

The modules in this package implement the primitive matrix operations that
Section 3 of the paper optimizes:

- :mod:`repro.linalg.blocks` -- row-partitioned matrix blocks, the unit of
  distribution for both simulated engines.
- :mod:`repro.linalg.centered` -- mean-propagated operations that compute on
  the *centered* matrix ``Yc = Y - Ym`` without ever materializing it
  (Section 3.1).
- :mod:`repro.linalg.multiply` -- the efficient multiplication patterns of
  Section 3.3 (broadcast in-memory multiply, row-wise ``A' * B``
  accumulation, and the associativity trick of Equation 3).
- :mod:`repro.linalg.frobenius` -- Algorithms 2 and 3 for the Frobenius norm
  of the centered matrix (Section 3.4).
- :mod:`repro.linalg.stats` -- column means/sums and row sampling.
"""

from repro.linalg.blocks import RowBlock, block_nbytes, iter_blocks, partition_rows, stack_blocks
from repro.linalg.centered import (
    centered_gram,
    centered_row,
    centered_times,
    centered_transpose_times,
)
from repro.linalg.frobenius import (
    frobenius_centered_dense,
    frobenius_simple,
    frobenius_sparse,
)
from repro.linalg.operators import CenteredOperator
from repro.linalg.multiply import (
    broadcast_times,
    transpose_times_accumulate,
    xcy_associative,
)
from repro.linalg.stats import column_means, column_sums, sample_rows

__all__ = [
    "CenteredOperator",
    "RowBlock",
    "block_nbytes",
    "broadcast_times",
    "centered_gram",
    "centered_row",
    "centered_times",
    "centered_transpose_times",
    "column_means",
    "column_sums",
    "frobenius_centered_dense",
    "frobenius_simple",
    "frobenius_sparse",
    "iter_blocks",
    "partition_rows",
    "sample_rows",
    "stack_blocks",
    "transpose_times_accumulate",
    "xcy_associative",
]
