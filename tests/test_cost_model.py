"""Table 1 cost model: formulas, orderings, and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    METHODS,
    communication_complexity,
    method_costs,
    table1,
    time_complexity,
)
from repro.analysis.cost_model import COVARIANCE, PPCA, SSVD, SVD_BIDIAG
from repro.errors import ShapeError


def test_table1_has_four_rows():
    rows = table1(n=1_000_000, d_cols=70_000, d=50)
    assert [row.method for row in rows] == list(METHODS)
    assert all(row.time_formula and row.communication_formula for row in rows)


def test_ppca_has_lowest_communication_for_big_n():
    # At Tweets-like sizes PPCA's O(Dd) is the smallest entry of Table 1 by
    # orders of magnitude.
    n, d_cols, d = 1_264_812_931, 71_503, 50
    comm = {m: communication_complexity(m, n, d_cols, d) for m in METHODS}
    assert comm[PPCA] == min(comm.values())
    assert all(comm[m] > 100 * comm[PPCA] for m in METHODS if m != PPCA)


def test_ssvd_and_ppca_share_time_complexity():
    assert time_complexity(SSVD, 1000, 100, 5) == time_complexity(PPCA, 1000, 100, 5)


def test_covariance_time_dominates_for_high_d():
    n, d_cols, d = 10_000, 5_000, 50
    assert time_complexity(COVARIANCE, n, d_cols, d) > time_complexity(PPCA, n, d_cols, d)
    assert time_complexity(SVD_BIDIAG, n, d_cols, d) > time_complexity(PPCA, n, d_cols, d)


def test_covariance_communication_independent_of_n():
    assert communication_complexity(COVARIANCE, 100, 50, 5) == communication_complexity(
        COVARIANCE, 100_000, 50, 5
    )


def test_ssvd_communication_scales_with_n():
    small = communication_complexity(SSVD, 1_000, 100, 10)
    large = communication_complexity(SSVD, 100_000, 100, 10)
    assert large == 100 * small


def test_method_costs_carries_libraries():
    row = method_costs(PPCA, 100, 50, 5)
    assert "sPCA" in row.example_libraries


def test_unknown_method_rejected():
    with pytest.raises(ShapeError):
        time_complexity("qr-magic", 10, 10, 2)
    with pytest.raises(ShapeError):
        communication_complexity("qr-magic", 10, 10, 2)


def test_invalid_sizes_rejected():
    with pytest.raises(ShapeError):
        time_complexity(PPCA, 0, 10, 2)
    with pytest.raises(ShapeError):
        time_complexity(PPCA, 10, 10, 11)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10**9),
    d_cols=st.integers(min_value=1, max_value=10**6),
    d=st.integers(min_value=1, max_value=100),
)
def test_property_all_costs_positive_and_monotone_in_n(n, d_cols, d):
    d = min(d, d_cols)
    for method in METHODS:
        cost = time_complexity(method, n, d_cols, d)
        assert cost > 0
        assert time_complexity(method, n + 1, d_cols, d) >= cost
