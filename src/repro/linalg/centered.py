"""Mean-propagated operations on the centered matrix (paper Section 3.1).

PPCA operates on the mean-centered matrix ``Yc = Y - 1 * Ym'``.  Subtracting a
non-zero mean from a sparse matrix destroys its sparsity, so sPCA never forms
``Yc``.  Instead the mean vector ``Ym`` is *propagated* through every algebraic
operation.  The identities implemented here:

- ``Yc * C      = Y * C - 1 * (Ym' * C)``           (:func:`centered_times`)
- ``Yc' * X     = Y' * X - Ym * colsum(X)``          (:func:`centered_transpose_times`)
- ``Yc' * Yc    = Y'Y - N * Ym Ym'``                 (:func:`centered_gram`)

All functions accept either sparse or dense ``Y`` and return dense results of
small dimension (``N x d``, ``D x d`` or ``D x D``); the large input matrix is
only ever read.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.lint.contracts import contract


def _check_mean(matrix: Matrix, mean: np.ndarray) -> np.ndarray:
    mean = np.asarray(mean, dtype=np.float64).ravel()
    if mean.shape[0] != matrix.shape[1]:
        raise ShapeError(
            f"mean vector has length {mean.shape[0]} but the matrix has "
            f"{matrix.shape[1]} columns"
        )
    return mean


def centered_row(row: Matrix, mean: np.ndarray) -> np.ndarray:
    """Densify one row of ``Yc`` (used only by the unoptimized ablation)."""
    mean = _check_mean(row.reshape(1, -1) if row.ndim == 1 else row, mean)
    dense = np.asarray(row.todense()).ravel() if sp.issparse(row) else np.asarray(row).ravel()
    return dense - mean


@contract(matrix="matrix (b, D)", mean="dense (D,)", right="dense (D, d)", ret="dense (b, d)")
def centered_times(matrix: Matrix, mean: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Compute ``(Y - 1*Ym') * right`` without densifying Y.

    Args:
        matrix: the (possibly sparse) input block ``Y``, shape ``(n, D)``.
        mean: the column-mean vector ``Ym``, length D.
        right: a small dense matrix, shape ``(D, d)``.

    Returns:
        Dense ``(n, d)`` array.
    """
    mean = _check_mean(matrix, mean)
    right = np.asarray(right, dtype=np.float64)
    if right.shape[0] != matrix.shape[1]:
        raise ShapeError(
            f"right operand has {right.shape[0]} rows but the matrix has "
            f"{matrix.shape[1]} columns"
        )
    product = matrix @ right
    product = np.asarray(product)
    correction = mean @ right
    return product - correction


@contract(matrix="matrix (b, D)", mean="dense (D,)", right="dense (b, d)", ret="dense (D, d)")
def centered_transpose_times(
    matrix: Matrix, mean: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Compute ``(Y - 1*Ym')' * right`` without densifying Y.

    Expanding the product: ``Yc' * X = Y' * X - Ym * (1' * X)`` where
    ``1' * X`` is the vector of column sums of ``X``.

    Args:
        matrix: input block ``Y``, shape ``(n, D)``.
        mean: column-mean vector ``Ym``, length D.
        right: dense matrix ``X``, shape ``(n, d)``.

    Returns:
        Dense ``(D, d)`` array.
    """
    mean = _check_mean(matrix, mean)
    right = np.asarray(right, dtype=np.float64)
    if right.shape[0] != matrix.shape[0]:
        raise ShapeError(
            f"right operand has {right.shape[0]} rows but the matrix has "
            f"{matrix.shape[0]} rows"
        )
    product = matrix.T @ right
    product = np.asarray(product)
    return product - np.outer(mean, right.sum(axis=0))


@contract(matrix="matrix (b, D)", mean="dense (D,)", ret="dense (D, D)")
def centered_gram(matrix: Matrix, mean: np.ndarray) -> np.ndarray:
    """Compute the Gramian ``Yc' * Yc`` of the centered matrix.

    Uses ``Yc'Yc = Y'Y - N * Ym Ym'`` which holds when ``Ym`` is the exact
    column mean of ``Y``.  This is the quantity MLlib-PCA needs (divided by N
    it is the sample covariance); the result is a dense ``D x D`` matrix,
    which is exactly the scalability problem Section 2.1 describes.
    """
    mean = _check_mean(matrix, mean)
    n_rows = matrix.shape[0]
    gram = matrix.T @ matrix
    if sp.issparse(gram):
        gram = np.asarray(gram.todense())
    else:
        gram = np.asarray(gram, dtype=np.float64)
    return gram - n_rows * np.outer(mean, mean)
