"""Table 2: running time of the four algorithms on the four datasets.

Paper shape to reproduce (scaled):
- sPCA-Spark is fastest on every sparse/high-dimensional dataset;
- sPCA beats its same-platform counterpart by a wide margin;
- MLlib-PCA fails beyond the (scaled) 6,000-column boundary;
- MLlib-PCA *wins* on the low-dimensional dense Images dataset.
"""

import pytest

from harness import dataset_ideal_accuracy, run_mahout, run_mllib, run_spca
from repro.data.paper import PAPER_DATASETS


def _table2_grid():
    rows = []
    for name, series_fn in PAPER_DATASETS.items():
        for spec in series_fn():
            rows.append((name, spec))
    return rows


def _run_row(spec):
    data = spec.generate()
    ideal = dataset_ideal_accuracy(data)
    spark = run_spca(data, "spark", ideal=ideal)
    mllib = run_mllib(data)
    mapreduce = run_spca(data, "mapreduce", ideal=ideal)
    mahout = run_mahout(data, ideal=ideal)
    return data, ideal, spark, mllib, mapreduce, mahout


@pytest.mark.benchmark(group="table2")
def test_table2_running_times(benchmark, report):
    results = {}

    def run_all():
        for name, spec in _table2_grid():
            results[(name, spec.paper_size)] = (spec, *_run_row(spec))
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("Table 2: running time (simulated sec) to reach 95% of ideal accuracy")
    report(
        f"{'Dataset':<10}{'Size (paper)':<16}{'sPCA-Spark':>12}{'MLlib-PCA':>12}"
        f"{'sPCA-MR':>12}{'Mahout-PCA':>12}"
    )
    for (name, size), (spec, data, ideal, spark, mllib, mapreduce, mahout) in results.items():
        report(
            f"{name:<10}{size:<16}{spark.cell():>12}{mllib.cell():>12}"
            f"{mapreduce.cell():>12}{mahout.cell():>12}"
        )

    # -- paper-shape assertions -----------------------------------------
    def outcome(name, size_index, which):
        key = [k for k in results if k[0] == name][size_index]
        # results tuple: (spec, data, ideal, spark, mllib, mapreduce, mahout)
        return results[key][3 + which]  # which: 0=spark, 1=mllib, 2=mr, 3=mahout

    # MLlib fails above the scaled 6,000-column boundary, succeeds below.
    assert outcome("tweets", 0, 1).failed is False     # 2K columns
    assert outcome("tweets", 1, 1).failed is False     # 6K columns
    assert outcome("tweets", 2, 1).failed is True      # 71.5K columns
    assert outcome("biotext", 1, 1).failed is True     # 10K columns
    assert outcome("biotext", 2, 1).failed is True     # 14K columns
    assert outcome("diabetes", 1, 1).failed is True    # 10K columns
    assert outcome("images", 0, 1).failed is False     # 128 columns

    # sPCA vs its same-platform counterpart on the sparse datasets.  At the
    # largest sizes (where the paper's margins are widest and fixed job
    # overheads matter least) sPCA-MR must beat Mahout outright; at smaller
    # sizes the paper itself observes the gap closes ("running times for
    # both algorithms are close for small datasets"), so allow slack there.
    for name in ("tweets", "biotext"):
        for size_index in range(3):
            mapreduce = outcome(name, size_index, 2)
            mahout = outcome(name, size_index, 3)
            if size_index == 2 and name == "tweets":
                assert mapreduce.effective_time < 0.6 * mahout.effective_time
            else:
                assert mapreduce.effective_time < 1.5 * mahout.effective_time, (
                    name, size_index,
                )
    # sPCA-Spark vs MLlib: strictly faster from the paper's 6K-column point
    # on, where MLlib's quadratic covariance work kicks in (the paper sees a
    # ~2x gap at 6K).  At the 2K point the paper's margin is only 1.16x and
    # at this simulation scale fixed overheads dominate, so no ordering is
    # asserted there (EXPERIMENTS.md records the deviation).
    mid_spark = outcome("tweets", 1, 0)
    mid_mllib = outcome("tweets", 1, 1)
    assert mid_spark.effective_time < mid_mllib.effective_time

    # Spark implementation beats the MapReduce one (memory vs disk platform).
    for name, size in results:
        spec, data, ideal, spark, mllib, mapreduce, mahout = results[(name, size)]
        assert spark.effective_time < mapreduce.effective_time, (name, size)

    # MLlib wins the low-dimensional dense case (Images), as in the paper.
    images_mllib = outcome("images", 0, 1)
    images_spark = outcome("images", 0, 0)
    assert images_mllib.effective_time < images_spark.effective_time
