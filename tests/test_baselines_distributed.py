"""Distributed baselines: MLlib-style covariance PCA and Mahout-style SSVD-PCA."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import MapReduceBackend
from repro.baselines import CovariancePCA, SSVDPCAMapReduce
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.errors import DriverOutOfMemoryError, ShapeError
from repro.metrics import subspace_angle_degrees

SMALL_CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)


@pytest.fixture(scope="module")
def sparse_data():
    return sp.random(240, 30, density=0.2, random_state=13, format="csr")


@pytest.fixture(scope="module")
def structured_data():
    """Sparse data with genuine low-rank structure (clear spectral gaps).

    Randomized methods converge to the dominant subspace quickly only when
    the spectrum has gaps, so subspace-recovery assertions use this dataset
    while byte-accounting assertions use unstructured noise.
    """
    rng = np.random.default_rng(77)
    factors = rng.normal(size=(240, 3)) * np.array([12.0, 7.0, 4.0])
    loadings = rng.normal(size=(3, 30))
    dense = factors @ loadings + 0.05 * rng.normal(size=(240, 30))
    mask = rng.random((240, 30)) < 0.3
    return sp.csr_matrix(dense * mask)


def top_basis(matrix, k):
    dense = np.asarray(matrix.todense())
    centered = dense - dense.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:k].T


@pytest.fixture(scope="module")
def exact_basis(structured_data):
    return top_basis(structured_data, 3)


class TestCovariancePCA:
    def test_recovers_exact_subspace(self, structured_data, exact_basis):
        result = CovariancePCA(3, SparkContext(cluster=SMALL_CLUSTER)).fit(structured_data)
        assert subspace_angle_degrees(result.model.components, exact_basis) < 0.1

    def test_components_orthonormal(self, sparse_data):
        result = CovariancePCA(3, SparkContext(cluster=SMALL_CLUSTER)).fit(sparse_data)
        gram = result.model.components.T @ result.model.components
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_fails_when_covariance_exceeds_driver_memory(self):
        # D = 500 doubles -> 2 MB covariance; give the driver 1 MB.
        data = sp.random(100, 500, density=0.02, random_state=3, format="csr")
        tiny_driver = ClusterSpec(num_nodes=2, cores_per_node=2, driver_memory_mb=1.0)
        with pytest.raises(DriverOutOfMemoryError):
            CovariancePCA(3, SparkContext(cluster=tiny_driver)).fit(data)

    def test_peak_driver_memory_scales_with_d_squared(self):
        peaks = []
        for d_cols in (50, 100):
            data = sp.random(80, d_cols, density=0.1, random_state=1, format="csr")
            context = SparkContext(cluster=SMALL_CLUSTER)
            result = CovariancePCA(3, context).fit(data)
            peaks.append(result.peak_driver_bytes)
        assert peaks[1] >= 3.5 * peaks[0]  # ~4x from doubling D

    def test_intermediate_bytes_quadratic_in_d(self):
        volumes = []
        for d_cols in (40, 80):
            data = sp.random(60, d_cols, density=0.1, random_state=2, format="csr")
            result = CovariancePCA(2, SparkContext(cluster=SMALL_CLUSTER)).fit(data)
            volumes.append(result.intermediate_bytes)
        assert volumes[1] >= 3.0 * volumes[0]

    def test_validation(self, sparse_data):
        with pytest.raises(ShapeError):
            CovariancePCA(0)
        with pytest.raises(ShapeError):
            CovariancePCA(64, SparkContext(cluster=SMALL_CLUSTER)).fit(
                sp.random(8, 8, density=0.5, random_state=0, format="csr")
            )

    def test_noise_variance_is_mean_discarded_eigenvalue(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(500, 10)) * np.sqrt(np.arange(10, 0, -1))
        result = CovariancePCA(4, SparkContext(cluster=SMALL_CLUSTER)).fit(data)
        centered = data - data.mean(axis=0)
        eigenvalues = np.sort(np.linalg.eigvalsh(centered.T @ centered / 500))[::-1]
        assert result.model.noise_variance == pytest.approx(
            eigenvalues[4:].mean(), rel=0.05
        )


class TestSSVDPCAMapReduce:
    def test_recovers_exact_subspace(self, structured_data, exact_basis):
        algorithm = SSVDPCAMapReduce(
            3, power_iterations=3, runtime=MapReduceRuntime(cluster=SMALL_CLUSTER)
        )
        result = algorithm.fit(structured_data)
        assert subspace_angle_degrees(result.model.components, exact_basis) < 2.0

    def test_matches_sequential_ssvd_subspace(self, sparse_data):
        from repro.baselines import stochastic_svd

        mean = np.asarray(sparse_data.mean(axis=0)).ravel()
        _, _, vt = stochastic_svd(
            sparse_data, 3, oversampling=10, power_iterations=3, seed=0, mean=mean
        )
        algorithm = SSVDPCAMapReduce(
            3, power_iterations=3, runtime=MapReduceRuntime(cluster=SMALL_CLUSTER), seed=0
        )
        result = algorithm.fit(sparse_data, compute_accuracy=False)
        assert subspace_angle_degrees(result.model.components, vt.T) < 2.0

    def test_accuracy_timeline_grows(self, sparse_data):
        algorithm = SSVDPCAMapReduce(
            3, power_iterations=2, runtime=MapReduceRuntime(cluster=SMALL_CLUSTER)
        )
        result = algorithm.fit(sparse_data)
        assert len(result.accuracy_timeline) == 3  # initial pass + 2 power its
        times = [t for t, _ in result.accuracy_timeline]
        assert times == sorted(times)
        assert result.accuracy_timeline[-1][1] >= result.accuracy_timeline[0][1] - 0.02

    def test_materializes_q_as_intermediate_data(self, sparse_data):
        runtime = MapReduceRuntime(cluster=SMALL_CLUSTER)
        algorithm = SSVDPCAMapReduce(3, power_iterations=1, runtime=runtime)
        algorithm.fit(sparse_data, compute_accuracy=False)
        q_jobs = runtime.metrics.by_name("QJob")
        assert q_jobs and all(job.intermediate_bytes > 0 for job in q_jobs)

    def test_intermediate_data_exceeds_spca(self, sparse_data):
        """The paper's headline: Mahout-PCA >> sPCA in intermediate data."""
        mahout_runtime = MapReduceRuntime(cluster=SMALL_CLUSTER)
        SSVDPCAMapReduce(3, power_iterations=1, runtime=mahout_runtime).fit(
            sparse_data, compute_accuracy=False
        )
        mahout_bytes = sum(
            j.intermediate_bytes for j in mahout_runtime.metrics.jobs if j.name != "errorJob"
        )
        config = SPCAConfig(
            n_components=3, max_iterations=3, tolerance=0.0, seed=0,
            compute_error_every_iteration=False,
        )
        backend = MapReduceBackend(config, MapReduceRuntime(cluster=SMALL_CLUSTER))
        SPCA(config, backend).fit(sparse_data)
        assert mahout_bytes > backend.intermediate_bytes

    def test_time_to_accuracy_helper(self, sparse_data):
        algorithm = SSVDPCAMapReduce(
            3, power_iterations=1, runtime=MapReduceRuntime(cluster=SMALL_CLUSTER)
        )
        result = algorithm.fit(sparse_data)
        final_accuracy = result.accuracy_timeline[-1][1]
        assert result.time_to_accuracy(final_accuracy - 0.01) is not None
        assert result.time_to_accuracy(2.0) is None

    def test_dense_centering_variant_same_subspace(self, structured_data, exact_basis):
        algorithm = SSVDPCAMapReduce(
            3, power_iterations=3,
            runtime=MapReduceRuntime(cluster=SMALL_CLUSTER),
            mean_propagation=False,
        )
        result = algorithm.fit(structured_data, compute_accuracy=False)
        assert subspace_angle_degrees(result.model.components, exact_basis) < 2.0

    def test_validation(self):
        with pytest.raises(ShapeError):
            SSVDPCAMapReduce(0)
        with pytest.raises(ShapeError):
            SSVDPCAMapReduce(6, runtime=MapReduceRuntime(cluster=SMALL_CLUSTER)).fit(
                sp.random(4, 4, density=0.5, random_state=0, format="csr")
            )
