"""A Spark-style execution engine, simulated in one process.

Provides the two abstractions the paper's Section 4.2 describes: resilient
distributed datasets (:class:`RDD`, lazy lineage of transformations) and
parallel operations on them (actions), plus the two sharing mechanisms sPCA
leans on -- broadcast variables and add-only accumulators.

The engine models what distinguishes Spark from MapReduce in the paper's
measurements: the input RDD is cached in the aggregate cluster memory and
re-read for free each iteration (spilling to simulated disk when it does not
fit), per-job overhead is small, and the driver's memory is a hard limit on
driver-side allocations (the MLlib-PCA failure mode).
"""

from repro.engine.spark.context import Accumulator, Broadcast, SparkContext
from repro.engine.spark.memory import BlockManager, DriverMemoryMonitor
from repro.engine.spark.rdd import RDD

__all__ = [
    "Accumulator",
    "BlockManager",
    "Broadcast",
    "DriverMemoryMonitor",
    "RDD",
    "SparkContext",
]
