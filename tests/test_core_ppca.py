"""The reference PPCA must recover the exact PCA subspace."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PCAModel, fit_ppca
from repro.errors import ShapeError
from repro.metrics import subspace_angle_degrees


def lowrank_data(n=300, d_cols=20, rank=4, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank))
    loadings = rng.normal(size=(rank, d_cols)) * np.sqrt(np.arange(rank, 0, -1))[:, None]
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


def exact_basis(data, k):
    centered = data - data.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:k].T


def test_ppca_recovers_subspace():
    data = lowrank_data()
    model = fit_ppca(data, n_components=4, max_iterations=200, tolerance=1e-10, seed=1)
    angle = subspace_angle_degrees(model.basis, exact_basis(data, 4))
    assert angle < 1.0


def test_ppca_noise_variance_matches_residual_spectrum():
    # At the PPCA MLE, ss = average of the discarded eigenvalues.
    data = lowrank_data(n=500, d_cols=12, rank=3, noise=0.2, seed=2)
    model = fit_ppca(data, n_components=3, max_iterations=300, tolerance=1e-12, seed=3)
    centered = data - data.mean(axis=0)
    eigenvalues = np.linalg.svd(centered, compute_uv=False) ** 2 / data.shape[0]
    expected = eigenvalues[3:].mean()
    assert model.noise_variance == pytest.approx(expected, rel=0.05)


def test_ppca_accepts_sparse_input():
    matrix = sp.random(100, 15, density=0.3, random_state=1, format="csr")
    model = fit_ppca(matrix, n_components=2, max_iterations=30, seed=0)
    assert model.components.shape == (15, 2)


def test_ppca_warm_start_converges_faster():
    data = lowrank_data(seed=4)
    warm = fit_ppca(data, 4, max_iterations=100, tolerance=1e-10, seed=5)
    restarted = fit_ppca(
        data, 4, max_iterations=2, seed=6, initial=(warm.components, warm.noise_variance)
    )
    angle = subspace_angle_degrees(restarted.basis, exact_basis(data, 4))
    assert angle < 1.0


def test_ppca_rejects_too_many_components():
    with pytest.raises(ShapeError):
        fit_ppca(np.ones((5, 3)), n_components=4)


def test_model_transform_and_reconstruct_shapes():
    data = lowrank_data(n=50, d_cols=10, rank=2)
    model = fit_ppca(data, 2, max_iterations=50, seed=0)
    latent = model.transform(data)
    assert latent.shape == (50, 2)
    assert model.inverse_transform(latent).shape == (50, 10)
    assert model.reconstruct(data).shape == (50, 10)


def test_model_project_is_orthogonal_projection():
    data = lowrank_data(n=80, d_cols=8, rank=3, noise=0.01, seed=7)
    model = fit_ppca(data, 3, max_iterations=150, tolerance=1e-12, seed=8)
    centered = data - model.mean
    projected = model.project(data) @ model.components.T
    residual = centered - projected
    # The residual of an orthogonal projection is orthogonal to the subspace.
    assert np.abs(residual @ model.basis).max() < 1e-6


def test_model_principal_directions_ordered():
    data = lowrank_data(n=400, d_cols=10, rank=4, noise=0.05, seed=9)
    model = fit_ppca(data, 4, max_iterations=200, tolerance=1e-12, seed=10)
    _, variances = model.principal_directions(data)
    assert np.all(np.diff(variances) <= 1e-9)
    exact = exact_basis(data, 1)
    directions, _ = model.principal_directions(data)
    assert subspace_angle_degrees(directions[:, :1], exact) < 2.0


def test_model_validates_shapes():
    with pytest.raises(ShapeError):
        PCAModel(components=np.ones((4, 2)), mean=np.ones(3), noise_variance=0.1, n_samples=10)
    with pytest.raises(ShapeError):
        PCAModel(components=np.ones(4), mean=np.ones(4), noise_variance=0.1, n_samples=10)
    model = PCAModel(np.ones((4, 2)), np.zeros(4), 0.1, 10)
    with pytest.raises(ShapeError):
        model.inverse_transform(np.ones((3, 3)))
