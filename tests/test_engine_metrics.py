"""JobStats / EngineMetrics accounting."""

import pytest

from repro.engine.metrics import EngineMetrics, JobStats


class TestJobStats:
    def test_intermediate_counts_max_of_map_and_shuffle(self):
        stats = JobStats(name="j", map_output_bytes=100, shuffle_bytes=40)
        assert stats.intermediate_bytes == 100
        stats = JobStats(name="j", map_output_bytes=10, shuffle_bytes=40)
        assert stats.intermediate_bytes == 40

    def test_intermediate_adds_driver_results(self):
        stats = JobStats(name="j", shuffle_bytes=10, driver_result_bytes=5)
        assert stats.intermediate_bytes == 15

    def test_intermediate_output_only_when_marked(self):
        consumed = JobStats(name="j", output_bytes=100, output_is_intermediate=True)
        final = JobStats(name="j", output_bytes=100, output_is_intermediate=False)
        assert consumed.intermediate_bytes == 100
        assert final.intermediate_bytes == 0

    def test_counters_default_empty(self):
        assert JobStats(name="j").counters == {}


class TestEngineMetrics:
    def make(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="a", sim_seconds=1.0, wall_seconds=0.1,
                                shuffle_bytes=10, map_output_bytes=10))
        metrics.record(JobStats(name="b", sim_seconds=2.0, wall_seconds=0.2,
                                shuffle_bytes=30, map_output_bytes=50))
        metrics.record(JobStats(name="a", sim_seconds=4.0, wall_seconds=0.4))
        return metrics

    def test_totals(self):
        metrics = self.make()
        assert metrics.total_sim_seconds == pytest.approx(7.0)
        assert metrics.total_wall_seconds == pytest.approx(0.7)
        assert metrics.total_shuffle_bytes == 40
        assert metrics.total_map_output_bytes == 60
        assert metrics.total_intermediate_bytes == 60  # max(map, shuffle) per job

    def test_by_name(self):
        metrics = self.make()
        assert len(metrics.by_name("a")) == 2
        assert len(metrics.by_name("b")) == 1
        assert metrics.by_name("missing") == []

    def test_reset(self):
        metrics = self.make()
        metrics.reset()
        assert metrics.total_sim_seconds == 0.0
        assert metrics.jobs == []

    def test_summary_renders_all_jobs(self):
        metrics = self.make()
        text = metrics.summary()
        assert text.count("\n") >= 4
        assert "TOTAL" in text
        assert "a" in text and "b" in text

    def test_byte_totals_by_channel(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="a", hdfs_read_bytes=10, hdfs_write_bytes=1,
                                broadcast_bytes=100, driver_result_bytes=7,
                                task_retries=2))
        metrics.record(JobStats(name="b", hdfs_read_bytes=20, hdfs_write_bytes=2,
                                broadcast_bytes=200, driver_result_bytes=3,
                                task_retries=1))
        assert metrics.total_hdfs_read_bytes == 30
        assert metrics.total_hdfs_write_bytes == 3
        assert metrics.total_broadcast_bytes == 300
        assert metrics.total_driver_result_bytes == 10
        assert metrics.total_task_retries == 3

    def test_total_counters_merges_by_name(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="a", counters={"spilled": 3, "combined": 10}))
        metrics.record(JobStats(name="b", counters={"spilled": 2}))
        assert metrics.total_counters == {"spilled": 5, "combined": 10}
        assert JobStats(name="c").counters == {}  # untouched default

    def test_summary_has_byte_columns_and_counters(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="readJob", hdfs_read_bytes=512,
                                hdfs_write_bytes=64, broadcast_bytes=32,
                                task_retries=1, sim_seconds=1.0,
                                counters={"spilled_records": 9}))
        text = metrics.summary()
        header = text.splitlines()[0]
        for column in ("hdfs r B", "hdfs w B", "bcast B", "retry"):
            assert column in header
        assert "512" in text and "64" in text and "32" in text
        assert "counters:" in text
        assert "spilled_records" in text and "9" in text
