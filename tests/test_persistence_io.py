"""Model persistence and dataset IO round trips."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import fit_ppca
from repro.core.persistence import load_model, save_model
from repro.data.io import (
    load_matrix,
    read_sparse_rows,
    rows_to_hdfs_records,
    save_matrix,
    write_sparse_rows,
)
from repro.errors import ShapeError


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(100, 12)) @ rng.normal(size=(12, 12))
    return fit_ppca(data, 3, max_iterations=20, seed=1)


class TestModelPersistence:
    def test_round_trip(self, model, tmp_path):
        path = save_model(model, tmp_path / "model")
        restored = load_model(path)
        np.testing.assert_allclose(restored.components, model.components)
        np.testing.assert_allclose(restored.mean, model.mean)
        assert restored.noise_variance == pytest.approx(model.noise_variance)
        assert restored.n_samples == model.n_samples

    def test_appends_npz_suffix(self, model, tmp_path):
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"

    def test_restored_model_transforms_identically(self, model, tmp_path):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(10, model.n_features))
        restored = load_model(save_model(model, tmp_path / "m"))
        np.testing.assert_allclose(restored.transform(data), model.transform(data))

    def test_missing_fields_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, components=np.ones((3, 2)))
        with pytest.raises(ShapeError):
            load_model(bogus)

    def test_future_version_rejected(self, model, tmp_path):
        path = save_model(model, tmp_path / "m")
        with np.load(path) as archive:
            fields = dict(archive)
        fields["format_version"] = np.int64(999)
        np.savez(path, **fields)
        with pytest.raises(ShapeError):
            load_model(path)


class TestMatrixIO:
    def test_dense_round_trip(self, tmp_path):
        matrix = np.random.default_rng(3).normal(size=(20, 7))
        restored = load_matrix(save_matrix(matrix, tmp_path / "dense"))
        np.testing.assert_allclose(restored, matrix)

    def test_sparse_round_trip(self, tmp_path):
        matrix = sp.random(40, 25, density=0.15, random_state=4, format="csr")
        restored = load_matrix(save_matrix(matrix, tmp_path / "sparse"))
        assert sp.issparse(restored)
        assert (restored != matrix).nnz == 0

    def test_unknown_archive_rejected(self, tmp_path):
        bogus = tmp_path / "x.npz"
        np.savez(bogus, whatever=np.ones(3))
        with pytest.raises(ShapeError):
            load_matrix(bogus)


class TestSparseRowText:
    def test_round_trip(self, tmp_path):
        matrix = sp.random(15, 9, density=0.3, random_state=5, format="csr")
        path = write_sparse_rows(matrix, tmp_path / "rows.txt")
        restored = read_sparse_rows(path)
        np.testing.assert_allclose(
            np.asarray(restored.todense()), np.asarray(matrix.todense())
        )

    def test_dense_input_round_trips(self, tmp_path):
        matrix = np.arange(12.0).reshape(3, 4)
        restored = read_sparse_rows(write_sparse_rows(matrix, tmp_path / "d.txt"))
        np.testing.assert_allclose(np.asarray(restored.todense()), matrix)

    def test_empty_rows_preserved(self, tmp_path):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0], [2.0, 0.0]]))
        restored = read_sparse_rows(write_sparse_rows(matrix, tmp_path / "e.txt"))
        assert restored.shape == (3, 2)
        assert restored[1].nnz == 0

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0:1.0\n")
        with pytest.raises(ShapeError):
            read_sparse_rows(path)

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# rows=1 cols=2\nnot-a-pair\n")
        with pytest.raises(ShapeError):
            read_sparse_rows(path)

    def test_row_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# rows=3 cols=2\n0:1\n")
        with pytest.raises(ShapeError):
            read_sparse_rows(path)


def test_rows_to_hdfs_records():
    matrix = sp.random(10, 4, density=0.5, random_state=6, format="csr")
    records = list(rows_to_hdfs_records(matrix, 3))
    assert [start for start, _ in records] == sorted(start for start, _ in records)
    assert sum(block.shape[0] for _, block in records) == 10
