"""Per-block kernels shared by all sPCA backends.

Each function computes one worker's share of a distributed job from a single
row block.  Partial results combine by addition (matrices and scalars alike),
which is what makes them expressible as MapReduce combiners and Spark
accumulators.

Every kernel takes a ``mean_propagation`` flag.  When True (the sPCA way,
Section 3.1) the block stays sparse and the mean is folded into the algebra;
when False (the ablation) the block is densified and centered explicitly,
which is numerically identical but destroys sparsity -- the cost difference
is what Table 3 measures.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix, is_sparse
from repro.linalg.centered import centered_times, centered_transpose_times
from repro.linalg.frobenius import frobenius_simple, frobenius_sparse
from repro.linalg.multiply import xcy_block
from repro.lint.contracts import contract


class BoundedIdentityMemo:
    """An LRU memo whose keys embed ``id()`` of live anchor objects.

    ``id()`` keys are only meaningful while the anchor object is alive, so
    every entry stores weak references to its anchors and a hit is honoured
    only when each weakref still resolves to the identical object -- the same
    validation scheme as the ``sizeof`` cache.  The LRU bound caps memory:
    one job chain touches each input block a handful of times, so a few
    hundred entries cover every split of a fit without ever holding more
    than one extra copy of the dataset.
    """

    def __init__(self, limit: int = 256):
        if limit < 1:
            raise ValueError(f"memo limit must be >= 1, got {limit}")
        self.limit = limit
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[tuple, object]]" = OrderedDict()

    def get(self, key: tuple, anchors: tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            refs, value = entry
            if len(refs) != len(anchors) or any(
                ref() is not anchor for ref, anchor in zip(refs, anchors)
            ):
                # A recycled id(): the original anchor died and the
                # interpreter reused its address for a different object.
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: tuple, anchors: tuple, value) -> None:
        try:
            refs = tuple(weakref.ref(anchor) for anchor in anchors)
        except TypeError:
            return  # non-weakrefable anchor: identity cannot be validated
        with self._lock:
            self._entries[key] = (refs, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _densify(block: Matrix) -> np.ndarray:
    return (
        np.asarray(block.todense())
        if is_sparse(block)
        else np.asarray(block, dtype=np.float64)
    )


# The densified-centered intermediate of the mean_propagation=False ablation
# is needed by up to three kernels per block per iteration (latent, YtX,
# ss3/error) and -- because the mean never changes across EM iterations -- is
# identical every time.  Memoizing it here means the plain numpy path pays
# the O(b*D) densify once per block instead of once per kernel call.  The
# mean rides in the key by value (``tobytes`` of a length-D vector is cheap
# next to the densify) because the driver rebuilds the mean object on every
# dispatch.
_DENSIFY_MEMO = BoundedIdentityMemo(limit=256)


def clear_densify_memo() -> None:
    """Drop the densified-centered memo (tests and benchmark isolation)."""
    _DENSIFY_MEMO.clear()


def _densify_centered(block: Matrix, mean: np.ndarray) -> np.ndarray:
    key = (id(block), mean.tobytes())
    hit = _DENSIFY_MEMO.get(key, (block,))
    if hit is not None:
        return hit
    value = _densify(block) - mean
    _DENSIFY_MEMO.put(key, (block,), value)
    return value


def stack_blocks(blocks: list[Matrix]) -> Matrix:
    """Vertically stack row blocks into one block for a batched kernel call.

    This is the work-horse of the batch record pipeline: a mapper handed a
    whole split of fine-grained row blocks stacks them once and runs each
    per-block kernel a single time, replacing N small scipy/numpy dispatches
    (each dominated by fixed overhead at paper-style record granularity) with
    one big one.  A single block is returned as-is, which keeps the batch
    path bit-identical to the per-record path for the default one-block
    splits.  All-sparse inputs stay sparse (CSR); any dense block densifies
    the stack, mirroring how the per-record kernels treat dense input.
    """
    if not blocks:
        raise ShapeError("cannot stack an empty list of blocks")
    if len(blocks) == 1:
        return blocks[0]
    if all(is_sparse(block) for block in blocks):
        return sp.vstack(blocks, format="csr")
    return np.vstack(
        [
            np.asarray(block.todense()) if is_sparse(block) else
            np.asarray(block, dtype=np.float64)
            for block in blocks
        ]
    )


def stack_latents(latents: list[np.ndarray]) -> np.ndarray:
    """Stack pre-materialized X blocks alongside their Y blocks."""
    if not latents:
        raise ShapeError("cannot stack an empty list of latent blocks")
    if len(latents) == 1:
        return latents[0]
    return np.vstack(latents)


@contract(block="matrix (b, D)", ret=("dense (D,)", "int"))
def block_sums(block: Matrix) -> tuple[np.ndarray, int]:
    """meanJob map side: (column sums, row count) for one block."""
    sums = np.asarray(block.sum(axis=0), dtype=np.float64).ravel()
    return sums, block.shape[0]


@contract(block="matrix (b, D)", mean="dense (D,)", ret="scalar")
def block_frobenius(block: Matrix, mean: np.ndarray, efficient: bool) -> float:
    """FnormJob map side: this block's share of ``||Yc||_F^2``.

    ``efficient=True`` uses Algorithm 3 (sparse-aware); ``False`` uses
    Algorithm 2 (row-at-a-time dense scratch row).
    """
    if efficient:
        return frobenius_sparse(block, mean)
    return frobenius_simple(block, mean)


@contract(
    block="matrix (b, D)",
    mean="dense (D,)",
    projector="dense (D, d)",
    latent_mean="dense (d,)",
    ret="dense (b, d)",
)
def block_latent(
    block: Matrix,
    mean: np.ndarray,
    projector: np.ndarray,
    latent_mean: np.ndarray,
    mean_propagation: bool,
) -> np.ndarray:
    """Recompute this block's rows of X: ``X = Yc * CM = Y*CM - Xm``.

    This is the on-demand X generation of Section 3.2: X is never stored,
    each job regenerates the rows it needs from the (sparse) input block and
    the small broadcast matrix CM.
    """
    if mean_propagation:
        return np.asarray(block @ projector) - latent_mean
    return _densify_centered(block, mean) @ projector


@contract(
    block="matrix (b, D)",
    mean="dense (D,)",
    projector="dense (D, d)",
    latent_mean="dense (d,)",
    latent="dense (b, d)",
    ret=("dense (D, d)", "dense (d, d)"),
)
def block_ytx_xtx(
    block: Matrix,
    mean: np.ndarray,
    projector: np.ndarray,
    latent_mean: np.ndarray,
    mean_propagation: bool,
    latent: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Consolidated YtXJob: one block's partial (YtX, XtX).

    ``YtX_part = Yc_blk' * X_blk`` and ``XtX_part = X_blk' * X_blk``.  The
    optional *latent* argument supplies a pre-materialized X block (the
    ``use_x_recomputation=False`` ablation); otherwise X is recomputed here.
    """
    if latent is None:
        latent = block_latent(block, mean, projector, latent_mean, mean_propagation)
    if mean_propagation:
        ytx = centered_transpose_times(block, mean, latent)
    else:
        ytx = _densify_centered(block, mean).T @ latent
    xtx = latent.T @ latent
    return ytx, xtx


@contract(
    block="matrix (b, D)",
    mean="dense (D,)",
    projector="dense (D, d)",
    latent_mean="dense (d,)",
    components="dense (D, d)",
    latent="dense (b, d)",
    ret="scalar",
)
def block_ss3(
    block: Matrix,
    mean: np.ndarray,
    projector: np.ndarray,
    latent_mean: np.ndarray,
    components: np.ndarray,
    mean_propagation: bool,
    latent: np.ndarray | None = None,
) -> float:
    """ss3Job: one block's partial ``sum_n X_n * C' * Yc_n'``.

    Uses the associativity trick of Equation 3: contract C with the sparse
    data first (``Y @ C`` costs O(nnz*d)), then with X.  The mean's
    contribution is subtracted via ``colsum(X) . (C' Ym)``.
    """
    if latent is None:
        latent = block_latent(block, mean, projector, latent_mean, mean_propagation)
    if mean_propagation:
        data_part = xcy_block(latent, components, block)
        mean_part = float(latent.sum(axis=0) @ (components.T @ mean))
        return data_part - mean_part
    return xcy_block(latent, components, _densify_centered(block, mean))


@contract(
    block="matrix (b, D)",
    mean="dense (D,)",
    components="dense (D, d)",
    ls_projector="dense (D, d)",
    ret=("dense (D,)", "dense (D,)"),
)
def block_error_parts(
    block: Matrix,
    mean: np.ndarray,
    components: np.ndarray,
    ls_projector: np.ndarray,
    mean_propagation: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruction-error job: per-column absolute sums for one block.

    The paper's error is the (induced) matrix 1-norm ratio
    ``e = ||Yr - Yhat||_1 / ||Yr||_1`` where ``||A||_1`` is the maximum
    absolute column sum.  Column sums are additive across row blocks, so
    each block contributes two length-D vectors -- (column sums of
    |Y - Yhat|, column sums of |Y|) -- that combiners/accumulators add; the
    driver takes the ratio of the maxima.  ``Yhat = Xr * C' + Ym`` with
    ``Xr = Yc * C (C'C)^-1`` the least-squares projection.
    """
    if mean_propagation:
        latent = centered_times(block, mean, ls_projector)
    else:
        latent = _densify_centered(block, mean) @ ls_projector
    reconstruction = latent @ components.T + mean
    dense = np.asarray(block.todense()) if is_sparse(block) else np.asarray(block, dtype=np.float64)
    residual_colsums = np.abs(dense - reconstruction).sum(axis=0)
    magnitude_colsums = np.abs(dense).sum(axis=0)
    return residual_colsums, magnitude_colsums


@contract(residual_colsums="dense (D,)", magnitude_colsums="dense (D,)", ret="scalar")
def error_from_colsums(residual_colsums: np.ndarray, magnitude_colsums: np.ndarray) -> float:
    """Final induced-1-norm error from the summed per-column vectors."""
    return float(residual_colsums.max()) / max(float(magnitude_colsums.max()), 1e-300)


@contract(latent="dense (b, d)", ret="int")
def latent_block_bytes(latent: np.ndarray) -> int:
    """Bytes a materialized X block would occupy as intermediate data."""
    return int(np.asarray(latent).nbytes)


@contract(block="matrix (b, D)", ret="int")
def densified_bytes(block: Matrix) -> int:
    """Bytes of the dense centered copy the no-mean-propagation path builds."""
    rows, cols = block.shape
    return int(rows * cols * np.dtype(np.float64).itemsize)
