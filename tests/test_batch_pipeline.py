"""The batched record pipeline: dispatch, fallback, and partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core.config import SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce import MapReduceJob, MapReduceRuntime, Mapper, Reducer
from repro.engine.mapreduce.runtime import _partition_of, _partition_pairs
from repro.engine.spark.context import SparkContext
from repro.errors import InvalidPlanError, ShapeError
from repro.jobs import kernels


class RecordingBatchMapper(Mapper):
    """Counts how work arrives: one batch call per split, or per record."""

    def setup(self, ctx):
        self.batch_sizes = []
        self.single_calls = 0

    def map(self, key, value, ctx):
        self.single_calls += 1
        ctx.increment("single_calls")
        yield key, value * 10

    def map_batch(self, records, ctx):
        self.batch_sizes.append(len(records))
        ctx.increment("batch_calls")
        return [(key, value * 10) for key, value in records]


class RecordingBatchReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.increment("reduce_calls")
        yield key, sum(values)

    def reduce_batch(self, groups, ctx):
        ctx.increment("reduce_batch_calls")
        return [(key, sum(values)) for key, values in groups]


RECORDS = [(i % 3, i) for i in range(12)]
SPLITS = [RECORDS[:4], RECORDS[4:8], RECORDS[8:]]


def small_runtime(**kwargs):
    return MapReduceRuntime(
        cluster=ClusterSpec(num_nodes=1, cores_per_node=2), **kwargs
    )


class TestMapReduceBatchDispatch:
    def test_batch_mapper_sees_whole_splits(self):
        runtime = small_runtime(enable_batch=True)
        job = MapReduceJob(name="j", mapper=RecordingBatchMapper())
        output = runtime.run(job, SPLITS)
        stats = runtime.metrics.jobs[0]
        assert stats.counters["batch_calls"] == 3
        assert "single_calls" not in stats.counters
        assert sorted(output) == sorted((k, v * 10) for k, v in RECORDS)

    def test_disabled_batching_ignores_override(self):
        runtime = small_runtime(enable_batch=False)
        job = MapReduceJob(name="j", mapper=RecordingBatchMapper())
        output = runtime.run(job, SPLITS)
        stats = runtime.metrics.jobs[0]
        assert stats.counters["single_calls"] == len(RECORDS)
        assert "batch_calls" not in stats.counters
        assert sorted(output) == sorted((k, v * 10) for k, v in RECORDS)

    def test_default_map_batch_falls_back_to_map(self):
        class Doubler(Mapper):
            def map(self, key, value, ctx):
                yield key, value * 2

        batched = small_runtime(enable_batch=True)
        plain = small_runtime(enable_batch=False)
        job = MapReduceJob(name="j", mapper=Doubler())
        assert batched.run(job, SPLITS) == plain.run(job, SPLITS)

    def test_reduce_batch_dispatch(self):
        runtime = small_runtime(enable_batch=True)
        job = MapReduceJob(
            name="j", mapper=Mapper(), reducer=RecordingBatchReducer()
        )
        output = dict(runtime.run(job, SPLITS))
        stats = runtime.metrics.jobs[0]
        assert stats.counters["reduce_batch_calls"] == 1
        assert "reduce_calls" not in stats.counters
        assert output == {0: 0 + 3 + 6 + 9, 1: 1 + 4 + 7 + 10, 2: 2 + 5 + 8 + 11}

    def test_reduce_batch_disabled_uses_per_key_hook(self):
        runtime = small_runtime(enable_batch=False)
        job = MapReduceJob(
            name="j", mapper=Mapper(), reducer=RecordingBatchReducer()
        )
        output = dict(runtime.run(job, SPLITS))
        stats = runtime.metrics.jobs[0]
        assert stats.counters["reduce_calls"] == 3
        assert "reduce_batch_calls" not in stats.counters
        assert output[0] == 18

    def test_batch_preserves_sorted_reduce_order(self):
        batched = small_runtime(enable_batch=True)
        plain = small_runtime(enable_batch=False)
        job_b = MapReduceJob(name="j", mapper=Mapper(), reducer=RecordingBatchReducer())
        job_p = MapReduceJob(name="j", mapper=Mapper(), reducer=RecordingBatchReducer())
        assert batched.run(job_b, SPLITS) == plain.run(job_p, SPLITS)


class TestShufflePartitioning:
    def test_partition_pairs_matches_per_record_partitioner(self):
        keys = ["YtX", "XtX", 0, 1, (2, "a"), None, "mean/sums"] * 5
        pairs = [(key, i) for i, key in enumerate(keys)]
        for num_partitions in (1, 2, 3, 7):
            buckets = _partition_pairs(pairs, num_partitions)
            assert sum(len(bucket) for bucket in buckets) == len(pairs)
            for partition, bucket in enumerate(buckets):
                for key, _ in bucket:
                    assert _partition_of(key, num_partitions) == partition

    def test_partition_pairs_preserves_arrival_order(self):
        pairs = [("k", i) for i in range(10)]
        buckets = _partition_pairs(pairs, 4)
        non_empty = [bucket for bucket in buckets if bucket]
        assert len(non_empty) == 1
        assert [value for _, value in non_empty[0]] == list(range(10))

    def test_spark_partition_cache_matches_hash_partition(self):
        from repro.engine.spark.rdd import _PartitionCache, _hash_partition

        cache = _PartitionCache(5)
        for key in ["a", "b", "a", 3, (1, 2), "a"]:
            assert cache(key) == _hash_partition(key, 5)


class TestSparkBatchDispatch:
    def test_map_batch_fn_called_once_per_partition(self):
        calls = []

        def batch_fn(items):
            calls.append(len(items))
            return [item + 1 for item in items]

        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=4))
        rdd = sc.parallelize(range(20), num_partitions=4).map(
            lambda item: item + 1, batch_fn=batch_fn
        )
        assert sorted(rdd.collect()) == list(range(1, 21))
        assert calls == [5, 5, 5, 5]

    def test_disabled_batching_uses_per_record_fn(self):
        calls = []

        def batch_fn(items):  # pragma: no cover - must not run
            calls.append(len(items))
            return items

        sc = SparkContext(
            cluster=ClusterSpec(num_nodes=1, cores_per_node=4), enable_batch=False
        )
        rdd = sc.parallelize(range(8), num_partitions=2).map(
            lambda item: item * 3, batch_fn=batch_fn
        )
        assert sorted(rdd.collect()) == [i * 3 for i in range(8)]
        assert calls == []


class TestStackBlocks:
    def test_single_block_returned_as_is(self):
        block = sp.random(10, 6, density=0.3, random_state=0, format="csr")
        assert kernels.stack_blocks([block]) is block
        latent = np.ones((4, 2))
        assert kernels.stack_latents([latent]) is latent

    def test_all_sparse_stays_sparse(self):
        blocks = [
            sp.random(5, 8, density=0.4, random_state=i, format="csr")
            for i in range(3)
        ]
        stacked = kernels.stack_blocks(blocks)
        assert sp.issparse(stacked) and stacked.format == "csr"
        np.testing.assert_array_equal(
            np.asarray(stacked.todense()), np.vstack([b.toarray() for b in blocks])
        )

    def test_mixed_blocks_densify(self):
        sparse = sp.random(3, 4, density=0.5, random_state=0, format="csr")
        dense = np.ones((2, 4))
        stacked = kernels.stack_blocks([sparse, dense])
        assert isinstance(stacked, np.ndarray)
        assert stacked.shape == (5, 4)

    def test_empty_stack_rejected(self):
        with pytest.raises(ShapeError):
            kernels.stack_blocks([])
        with pytest.raises(ShapeError):
            kernels.stack_latents([])


class TestRecordGranularity:
    def test_mapreduce_default_layout_is_one_record_per_split(self):
        backend = MapReduceBackend(SPCAConfig(n_components=2))
        data = np.random.default_rng(0).normal(size=(70, 5))
        splits = backend.load(data)
        assert all(len(split) == 1 for split in splits)

    def test_mapreduce_fine_granularity_groups_records(self):
        runtime = MapReduceRuntime(cluster=ClusterSpec(num_nodes=1, cores_per_node=4))
        backend = MapReduceBackend(
            SPCAConfig(n_components=2), runtime=runtime, records_per_split=8
        )
        data = np.random.default_rng(0).normal(size=(64, 5))
        splits = backend.load(data)
        assert len(splits) == 4  # one split per core
        assert sum(len(split) for split in splits) == 32  # 4 cores * 8 records
        # Records keep their global row order within and across splits.
        starts = [start for split in splits for start, _ in split]
        assert starts == sorted(starts)

    def test_mapreduce_rejects_invalid_granularity(self):
        with pytest.raises(InvalidPlanError):
            MapReduceBackend(SPCAConfig(n_components=2), records_per_split=0)

    def test_spark_fine_granularity_groups_records(self):
        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=4))
        backend = SparkBackend(
            SPCAConfig(n_components=2), context=sc, records_per_partition=8
        )
        data = np.random.default_rng(0).normal(size=(64, 5))
        dataset = backend.load(data)
        assert dataset.num_partitions == 4
        assert len(dataset.collect()) == 32

    def test_spark_rejects_invalid_granularity(self):
        with pytest.raises(InvalidPlanError):
            SparkBackend(SPCAConfig(n_components=2), records_per_partition=-1)
