"""Per-window sufficient-statistics jobs on the simulated engines.

The streaming pipeline splits the sEM update exactly along the paper's
data/model boundary: the rows of one window are reduced *engine-side* to
d-sized sufficient statistics (:func:`~repro.extensions.incremental.
sem_batch_statistics`), and the small-matrix blend
(:func:`~repro.extensions.incremental.sem_blend`) stays on the driver.
Both engine adapters therefore run one logical job per window, dispatched
through the pluggable executor layer like every other job -- serial,
threads, and processes executors all commit in task-index order, so the
statistics (and hence the stream's model) are bitwise identical across
executors and identical to the sequential reference.

Bitwise fidelity across *distributions* of the window is preserved by
reassembling the full window (``stack_blocks``) before the one kernel call:
summing per-block partial gemms would change the floating-point reduction
order, so the window is shipped whole to a single stats task instead.  The
shipped rows are exactly what a real row-streamed deployment moves per
window, so the engines' byte accounting stays honest.

Job names are stable (``streamWindowJob`` / ``streamStatsJob``) so fault
plans can target the N-th window via their occurrence counters.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.engine.cluster import ClusterSpec
from repro.engine.exec import TaskExecutor
from repro.engine.mapreduce.api import MapReduceJob, Mapper, Reducer
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.metrics import EngineMetrics
from repro.engine.spark.context import SparkContext
from repro.errors import InvalidPlanError
from repro.extensions.incremental import (
    SEMBatchStats,
    SEMState,
    sem_batch_statistics,
)
from repro.faults import FaultInjector
from repro.jobs.kernels import stack_blocks
from repro.linalg.blocks import Matrix

STREAM_WINDOW_JOB = "streamWindowJob"
STREAM_STATS_JOB = "streamStatsJob"

ENGINE_NAMES = ("sequential", "mapreduce", "spark")


def split_rows(rows: Matrix, rows_per_task: int) -> list[Matrix]:
    """Slice a window into row blocks of at most *rows_per_task* rows."""
    if rows_per_task < 1:
        raise InvalidPlanError(f"rows_per_task must be >= 1, got {rows_per_task}")
    return [
        rows[start : start + rows_per_task]
        for start in range(0, rows.shape[0], rows_per_task)
    ]


class WindowForwardMapper(Mapper):
    """Ships each ``(block_index, block)`` record to the stats reducer."""

    def map(self, key, value, ctx):
        ctx.increment("stream_blocks_forwarded")
        # Forwarding raw blocks is deliberate: the reducer must stack the
        # whole window before the one kernel call, or the result is not
        # bit-identical to the sequential reference.
        yield 0, (key, value)  # repro-lint: disable=DF004


class WindowStatsReducer(Reducer):
    """Reassembles the window and reduces it to d-sized statistics.

    The carried model state arrives through the job config (the
    DistributedCache stand-in, like sPCA's CM/Ym matrices); the output is
    one small payload record per window.
    """

    def reduce(self, key, values, ctx):
        blocks = [block for _, block in sorted(values, key=lambda item: item[0])]
        window = stack_blocks(blocks)
        state = SEMState(
            components=ctx.config["components"],
            noise_variance=ctx.config["noise_variance"],
            mean=ctx.config["mean"],
            rows_seen=ctx.config["rows_seen"],
        )
        stats = sem_batch_statistics(
            window,
            state,
            update_mean=ctx.config["update_mean"],
            residual="trace",
        )
        ctx.increment("stream_window_rows", window.shape[0])
        yield "stats", stats.as_payload()


class WindowEngine(abc.ABC):
    """Computes one window's batch statistics; the blend stays driver-side."""

    name: str = "abstract"

    @abc.abstractmethod
    def window_statistics(
        self, rows: Matrix, state: SEMState, *, update_mean: bool = True
    ) -> SEMBatchStats:
        """Reduce one window of rows against *state*."""

    @property
    def metrics(self) -> EngineMetrics | None:
        """The backing engine's metrics, when there is an engine."""
        return None


class SequentialWindowEngine(WindowEngine):
    """In-process reference: the kernel call with no engine in between."""

    name = "sequential"

    def window_statistics(self, rows, state, *, update_mean=True):
        return sem_batch_statistics(
            rows, state, update_mean=update_mean, residual="trace"
        )


class MapReduceWindowEngine(WindowEngine):
    """One MapReduce job per window: N forwarding map tasks (one per row
    block), a single stats reducer, model state in the job config."""

    name = "mapreduce"

    def __init__(
        self,
        runtime: MapReduceRuntime | None = None,
        *,
        rows_per_task: int = 256,
        cluster: ClusterSpec | None = None,
        faults: FaultInjector | None = None,
        executor: TaskExecutor | str | None = None,
        workers: int | None = None,
        max_task_attempts: int = 4,
        seed: int = 0,
    ):
        self.runtime = runtime or MapReduceRuntime(
            cluster=cluster,
            faults=faults,
            executor=executor,
            workers=workers,
            max_task_attempts=max_task_attempts,
            seed=seed,
        )
        self.rows_per_task = rows_per_task

    @property
    def metrics(self) -> EngineMetrics:
        return self.runtime.metrics

    def window_statistics(self, rows, state, *, update_mean=True):
        blocks = split_rows(rows, self.rows_per_task)
        splits = [[(index, block)] for index, block in enumerate(blocks)]
        job = MapReduceJob(
            name=STREAM_WINDOW_JOB,
            mapper=WindowForwardMapper(),
            reducer=WindowStatsReducer(),
            num_reducers=1,
            config={
                "components": state.components,
                "noise_variance": state.noise_variance,
                "mean": state.mean,
                "rows_seen": state.rows_seen,
                "update_mean": update_mean,
            },
        )
        ((_, payload),) = self.runtime.run(job, splits)
        return SEMBatchStats.from_payload(payload)


class SparkWindowEngine(WindowEngine):
    """Two narrow stages per window: collect the row blocks, then one
    stats task against the broadcast model state.

    The partition functions are closures, so a ``processes`` executor runs
    them on its thread-pool sibling (the engine's documented fallback).
    """

    name = "spark"

    def __init__(
        self,
        context: SparkContext | None = None,
        *,
        rows_per_task: int = 256,
        cluster: ClusterSpec | None = None,
        faults: FaultInjector | None = None,
        executor: TaskExecutor | str | None = None,
        workers: int | None = None,
        max_task_attempts: int = 4,
        seed: int = 0,
    ):
        self.context = context or SparkContext(
            cluster=cluster,
            faults=faults,
            executor=executor,
            workers=workers,
            max_task_attempts=max_task_attempts,
            seed=seed,
        )
        self.rows_per_task = rows_per_task

    @property
    def metrics(self) -> EngineMetrics:
        return self.context.metrics

    def window_statistics(self, rows, state, *, update_mean=True):
        context = self.context
        broadcast = context.broadcast(
            (state.components, state.noise_variance, state.mean, state.rows_seen)
        )
        blocks = list(enumerate(split_rows(rows, self.rows_per_task)))
        rdd = context.parallelize(blocks, num_partitions=len(blocks))
        collected = context.run_job(
            rdd, lambda items: list(items), STREAM_WINDOW_JOB
        )
        pairs = sorted(
            (pair for part in collected for pair in part), key=lambda pair: pair[0]
        )
        window = stack_blocks([block for _, block in pairs])

        def stats_partition(items: list) -> tuple:
            (window_rows,) = items
            components, noise_variance, mean, rows_seen = broadcast.value
            stats = sem_batch_statistics(
                window_rows,
                SEMState(
                    components=components,
                    noise_variance=noise_variance,
                    mean=mean,
                    rows_seen=rows_seen,
                ),
                update_mean=update_mean,
                residual="trace",
            )
            return stats.as_payload()

        stats_rdd = context.parallelize([window], 1)
        (payload,) = context.run_job(stats_rdd, stats_partition, STREAM_STATS_JOB)
        return SEMBatchStats.from_payload(payload)


def make_window_engine(
    engine: WindowEngine | MapReduceRuntime | SparkContext | str = "sequential",
    *,
    rows_per_task: int = 256,
    cluster: ClusterSpec | None = None,
    faults: FaultInjector | None = None,
    executor: TaskExecutor | str | None = None,
    workers: int | None = None,
    max_task_attempts: int = 4,
    seed: int = 0,
) -> WindowEngine:
    """Resolve an engine name / instance to a :class:`WindowEngine`."""
    if isinstance(engine, WindowEngine):
        return engine
    if isinstance(engine, MapReduceRuntime):
        return MapReduceWindowEngine(engine, rows_per_task=rows_per_task)
    if isinstance(engine, SparkContext):
        return SparkWindowEngine(engine, rows_per_task=rows_per_task)
    kwargs: dict[str, Any] = dict(
        rows_per_task=rows_per_task,
        cluster=cluster,
        faults=faults,
        executor=executor,
        workers=workers,
        max_task_attempts=max_task_attempts,
        seed=seed,
    )
    if engine == "sequential":
        return SequentialWindowEngine()
    if engine == "mapreduce":
        return MapReduceWindowEngine(**kwargs)
    if engine == "spark":
        return SparkWindowEngine(**kwargs)
    raise InvalidPlanError(
        f"unknown stream engine {engine!r}; expected one of {ENGINE_NAMES}"
    )


__all__ = [
    "ENGINE_NAMES",
    "STREAM_STATS_JOB",
    "STREAM_WINDOW_JOB",
    "MapReduceWindowEngine",
    "SequentialWindowEngine",
    "SparkWindowEngine",
    "WindowEngine",
    "WindowForwardMapper",
    "WindowStatsReducer",
    "make_window_engine",
    "split_rows",
]
