"""repro.engine.exec -- pluggable task executors for both engine simulators.

Three interchangeable backends run the independent tasks of a stage:

``serial``
    A left-to-right loop on the calling thread; the bit-identical default.
``threads``
    A ``ThreadPoolExecutor``; zero-copy by construction, parallel wherever
    the numpy/scipy kernels release the GIL.
``processes``
    A ``ProcessPoolExecutor`` with shared-memory ndarray transport
    (:mod:`repro.engine.exec.shm`); real multi-core execution.

All three honor the same determinism contract: results are committed in
task-index order, so engine outputs, counters, byte totals, and trace-event
multisets are identical across executors (property-tested in
``tests/test_executor_equivalence.py``).
"""

from __future__ import annotations

from repro.engine.exec.base import TaskExecutor, default_worker_count
from repro.engine.exec.processes import ProcessPoolTaskExecutor
from repro.engine.exec.resident import (
    ResidentPayloadRef,
    clear_resident_store,
    resident_keys,
    resolve_payload,
)
from repro.engine.exec.serial import SerialExecutor
from repro.engine.exec.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmArrayRef,
    ShmBlockRegistry,
    ShmSparseRef,
    decode_payload,
    encode_payload,
)
from repro.engine.exec.threads import ThreadPoolTaskExecutor
from repro.errors import InvalidPlanError

EXECUTOR_NAMES = ("serial", "threads", "processes")


def make_executor(name: str, workers: int | None = None) -> TaskExecutor:
    """Build an executor by CLI name (``serial``/``threads``/``processes``)."""
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadPoolTaskExecutor(workers)
    if name == "processes":
        return ProcessPoolTaskExecutor(workers)
    raise InvalidPlanError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )


def resolve_executor(
    executor: "TaskExecutor | str | None", workers: int | None = None
) -> TaskExecutor:
    """Normalize an engine's ``executor=`` argument to a TaskExecutor.

    Accepts an executor instance (used as-is), a name (built via
    :func:`make_executor`), or None (serial).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        return make_executor(executor, workers)
    if isinstance(executor, TaskExecutor):
        return executor
    raise InvalidPlanError(
        f"executor must be a name or TaskExecutor, got {type(executor).__name__}"
    )


__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "EXECUTOR_NAMES",
    "ProcessPoolTaskExecutor",
    "ResidentPayloadRef",
    "SerialExecutor",
    "ShmArrayRef",
    "ShmBlockRegistry",
    "ShmSparseRef",
    "TaskExecutor",
    "ThreadPoolTaskExecutor",
    "clear_resident_store",
    "decode_payload",
    "default_worker_count",
    "encode_payload",
    "make_executor",
    "resident_keys",
    "resolve_executor",
    "resolve_payload",
]
