"""End-to-end tracing through real fits on both engine simulators."""

import numpy as np
import pytest

from repro.backends import MapReduceBackend, SparkBackend
from repro.core import SPCA, HDFSCheckpointStore, SPCAConfig
from repro.core.ppca import fit_ppca
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.errors import JobFailedError
from repro.faults import ExecutorLoss, FaultPlan, KillTask, PlannedFaults, Straggler
from repro.obs import tracing
from repro.obs.export import TraceData
from repro.obs.report import (
    format_iteration_table,
    format_job_table,
    format_phase_table,
    iteration_groups,
    reconcile,
    summarize,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.normal(size=(80, 14)) @ rng.normal(size=(14, 14))


def fit_traced(backend_cls, data, **config_kwargs):
    config = SPCAConfig(n_components=3, max_iterations=3, seed=0, **config_kwargs)
    backend = backend_cls(config)
    with tracing() as tracer:
        model, history = SPCA(config, backend).fit(data)
    metrics = (backend.runtime.metrics if hasattr(backend, "runtime")
               else backend.context.metrics)
    return TraceData.from_tracer(tracer), metrics, history, backend


@pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
class TestBothBackends:
    def test_trace_reconciles_exactly_with_engine_metrics(self, backend_cls, data):
        trace, metrics, history, _ = fit_traced(backend_cls, data)
        assert reconcile(trace, metrics) == []

    def test_iteration_span_per_em_iteration(self, backend_cls, data):
        trace, _, history, _ = fit_traced(backend_cls, data)
        spca_iters = [s for s in trace.spans
                      if s.kind == "iteration" and not s.name.startswith("ppca")]
        assert len(spca_iters) == history.n_iterations

    def test_iteration_spans_carry_convergence_telemetry(self, backend_cls, data):
        trace, _, _, _ = fit_traced(backend_cls, data)
        spca_iters = [s for s in trace.spans
                      if s.kind == "iteration" and not s.name.startswith("ppca")]
        first, *rest = spca_iters
        assert first.attrs["objective"] > 0
        assert first.attrs["convergence_delta"] is None
        assert first.attrs["subspace_delta"] >= 0
        for span in rest:
            assert span.attrs["convergence_delta"] >= 0
        bytes_seen = [s.attrs["intermediate_bytes"] for s in spca_iters]
        assert bytes_seen == sorted(bytes_seen)  # cumulative

    def test_run_span_encloses_everything(self, backend_cls, data):
        trace, _, history, _ = fit_traced(backend_cls, data)
        run = next(s for s in trace.spans if s.kind == "run")
        assert run.name.startswith("spca.fit[")
        assert run.attrs["n_iterations"] == history.n_iterations
        assert run.attrs["stop_reason"] == history.stop_reason
        sim_end = max(s.t0 + s.dur for s in trace.spans)
        assert run.t0 + run.dur == pytest.approx(sim_end)

    def test_every_job_span_has_a_phase_child(self, backend_cls, data):
        trace, _, _, _ = fit_traced(backend_cls, data)
        jobs = {s.span_id for s in trace.spans if s.kind == "job"}
        parents_of_phases = {s.parent_id for s in trace.spans if s.kind == "phase"}
        assert jobs <= parents_of_phases

    def test_tables_render(self, backend_cls, data):
        trace, _, _, _ = fit_traced(backend_cls, data)
        summary = summarize(trace)
        assert "TOTAL" in format_job_table(summary)
        assert "share" in format_phase_table(summary)
        assert "objective" in format_iteration_table(trace)


class TestMapReduceSpecifics:
    def test_map_and_shuffle_phases_present(self, data):
        trace, _, _, _ = fit_traced(MapReduceBackend, data)
        phase_names = {s.name for s in trace.spans if s.kind == "phase"}
        assert {"map", "shuffle"} <= phase_names
        assert any(e.type == "shuffle" for e in trace.events)
        assert any(e.type == "hdfs_read" for e in trace.events)

    def test_task_spans_sit_on_slots(self, data):
        trace, _, _, _ = fit_traced(MapReduceBackend, data)
        tasks = [s for s in trace.spans if s.kind == "task"]
        assert tasks
        assert all(s.track is not None and s.track >= 0 for s in tasks)


class TestSparkSpecifics:
    def test_broadcast_and_collect_events(self, data):
        trace, _, _, _ = fit_traced(SparkBackend, data)
        types = {e.type for e in trace.events}
        assert "broadcast" in types
        assert "driver_collect" in types
        assert "cache_hit" in types  # the cached input RDD is reused

    def test_cache_put_events_from_block_manager(self, data):
        trace, _, _, _ = fit_traced(SparkBackend, data)
        assert any(e.type == "cache_put" for e in trace.events)


class TestUntracedFitUnchanged:
    """Tracing must never perturb the simulation's accounting.

    Simulated *durations* are built from measured wall times and therefore
    jitter between any two runs (traced or not), so the comparison covers
    the deterministic side of the accounting: the job sequence and every
    byte column.
    """

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_identical_job_accounting_with_and_without_tracing(
        self, backend_cls, data
    ):
        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)

        def run(traced):
            backend = backend_cls(config)
            if traced:
                with tracing():
                    SPCA(config, backend).fit(data)
            else:
                SPCA(config, backend).fit(data)
            metrics = (backend.runtime.metrics if hasattr(backend, "runtime")
                       else backend.context.metrics)
            return [
                (job.name, job.n_map_tasks, job.shuffle_bytes,
                 job.intermediate_bytes, job.hdfs_read_bytes,
                 job.hdfs_write_bytes, job.broadcast_bytes, job.task_retries)
                for job in metrics.jobs
            ]

        assert run(False) == run(True)


def fit_traced_with_plan(backend_cls, data, plan, checkpoint=None, config=None):
    config = config or SPCAConfig(n_components=3, max_iterations=3, seed=0)
    faults = PlannedFaults(plan)
    if backend_cls is MapReduceBackend:
        backend = MapReduceBackend(config, runtime=MapReduceRuntime(faults=faults))
        metrics = backend.runtime.metrics
    else:
        backend = SparkBackend(config, context=SparkContext(faults=faults))
        metrics = backend.context.metrics
    with tracing() as tracer:
        SPCA(config, backend).fit(data, checkpoint=checkpoint)
    return TraceData.from_tracer(tracer), metrics


class TestFaultTelemetry:
    """Injected faults surface as typed events that match the plan exactly."""

    PLAN = FaultPlan(
        events=(
            KillTask(job="YtXJob", attempts=2, occurrence=0),
            Straggler(job="ss3Job", factor=9.0, occurrence=0),
        )
    )

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_fault_injected_events_match_plan(self, backend_cls, data):
        trace, metrics = fit_traced_with_plan(backend_cls, data, self.PLAN)
        faults = [e for e in trace.events if e.type == "fault_injected"]
        kills = [e for e in faults if e.attrs["fault"] == "kill_task"]
        stragglers = [e for e in faults if e.attrs["fault"] == "straggler"]
        assert kills and stragglers
        assert all(e.attrs["job"] == "YtXJob" for e in kills)
        # attempts=2 means attempts 1 and 2 both die; attempt 3 succeeds.
        assert {e.attrs["attempt"] for e in kills} == {1, 2}
        assert all(e.attrs["job"] == "ss3Job" for e in stragglers)
        assert all(e.attrs["factor"] == 9.0 for e in stragglers)

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_task_retry_events_match_engine_counters(self, backend_cls, data):
        trace, metrics = fit_traced_with_plan(backend_cls, data, self.PLAN)
        retries = [e for e in trace.events if e.type == "task_retry"]
        assert len(retries) > 0
        assert sum(e.attrs["retries"] for e in retries) == sum(
            job.task_retries for job in metrics.jobs
        )

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_trace_still_reconciles_under_faults(self, backend_cls, data):
        trace, metrics = fit_traced_with_plan(backend_cls, data, self.PLAN)
        assert reconcile(trace, metrics) == []

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_big_straggler_triggers_speculative_kill(self, backend_cls, data):
        plan = FaultPlan(
            events=(Straggler(job="meanJob", task=0, factor=50.0, occurrence=0),)
        )
        trace, _ = fit_traced_with_plan(backend_cls, data, plan)
        assert any(e.type == "speculative_kill" for e in trace.events)

    def test_executor_loss_charges_lineage_recompute(self, data):
        plan = FaultPlan(events=(ExecutorLoss(job="YtXJob", executor=0, occurrence=0),))
        trace, metrics = fit_traced_with_plan(SparkBackend, data, plan)
        losses = [e for e in trace.events
                  if e.type == "fault_injected"
                  and e.attrs["fault"] == "executor_loss"]
        assert losses and losses[0].attrs["lost_blocks"] > 0
        assert any(e.type == "lineage_recompute" for e in trace.events)
        # Recomputing the lost partitions costs simulated time.
        assert metrics.total_recovery_sim_seconds > 0


class TestCheckpointTelemetry:
    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_checkpoint_write_events_per_iteration(self, backend_cls, data):
        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)
        backend = backend_cls(config)
        store = HDFSCheckpointStore(InMemoryHDFS())
        with tracing() as tracer:
            SPCA(config, backend).fit(data, checkpoint=store)
        trace = TraceData.from_tracer(tracer)
        writes = [e for e in trace.events if e.type == "checkpoint_write"]
        # The final iteration stops the run and is never snapshotted.
        assert [e.attrs["iteration"] for e in writes] == [1, 2]
        assert all(e.attrs["bytes"] > 0 for e in writes)
        # The snapshot I/O is visible in the engine accounting too.
        metrics = (backend.runtime.metrics if hasattr(backend, "runtime")
                   else backend.context.metrics)
        assert sum(
            job.hdfs_write_bytes for job in metrics.jobs
            if job.name == "checkpointJob"
        ) == sum(e.attrs["bytes"] for e in writes)

    def test_checkpoint_restore_event_on_resume(self, data):
        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)
        store = HDFSCheckpointStore(InMemoryHDFS())
        plan = FaultPlan(events=(KillTask(job="YtXJob", occurrence=2, attempts=4),))
        killed = MapReduceBackend(config, runtime=MapReduceRuntime(
            faults=PlannedFaults(plan)))
        with pytest.raises(JobFailedError):
            SPCA(config, killed).fit(data, checkpoint=store)
        with tracing() as tracer:
            SPCA(config, MapReduceBackend(config)).resume(data, store)
        trace = TraceData.from_tracer(tracer)
        restores = [e for e in trace.events if e.type == "checkpoint_restore"]
        assert len(restores) == 1
        assert restores[0].attrs["iteration"] == 2
        run = next(s for s in trace.spans if s.kind == "run")
        assert run.name.startswith("spca.resume[")


class TestRegistryReconciliation:
    """Trace, EngineMetrics, and the metrics registry must agree exactly.

    The registry is fed through the single ``EngineMetrics.record`` funnel,
    so the three views of a run are the same numbers by construction --
    these tests pin that: float-exact simulated-second sums, integer-exact
    byte counts, on both engines under both a serial and a process
    executor.
    """

    def fit_collected(self, backend_cls, data, executor_name="serial"):
        from repro.engine.exec import make_executor
        from repro.obs.metrics import collecting

        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)
        executor = make_executor(executor_name, workers=2)
        try:
            if backend_cls is MapReduceBackend:
                backend = MapReduceBackend(
                    config, runtime=MapReduceRuntime(executor=executor))
                metrics = backend.runtime.metrics
            else:
                backend = SparkBackend(
                    config, context=SparkContext(executor=executor))
                metrics = backend.context.metrics
            with collecting() as registry:
                with tracing() as tracer:
                    SPCA(config, backend).fit(data)
                snapshot = registry.snapshot()
        finally:
            executor.shutdown()
        return TraceData.from_tracer(tracer), metrics, snapshot

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    @pytest.mark.parametrize("executor_name", ["serial", "processes"])
    def test_three_way_exact_reconciliation(
        self, backend_cls, data, executor_name
    ):
        from repro.obs.metrics import reconcile_registry

        trace, metrics, snapshot = self.fit_collected(
            backend_cls, data, executor_name)
        assert reconcile(trace, metrics) == []
        assert reconcile_registry(snapshot, metrics) == []

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_registry_histogram_percentiles_are_exact(self, backend_cls, data):
        _, metrics, snapshot = self.fit_collected(backend_cls, data)
        sim = next(h for h in snapshot["histograms"]
                   if h["name"] == "spca_job_sim_seconds" and not h["labels"])
        assert sim["exact"] is True
        durations = sorted(job.sim_seconds for job in metrics.jobs)
        assert sorted(sim["values"]) == durations
        assert sim["p50"] in durations

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_em_iteration_instruments_present(self, backend_cls, data):
        _, _, snapshot = self.fit_collected(backend_cls, data)
        counters = {c["name"]: c["value"] for c in snapshot["counters"]
                    if not c["labels"]}
        assert counters["spca_em_iterations_total"] == 3
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]
                  if not g["labels"]}
        assert gauges["spca_em_iteration"] == 3
        assert gauges["spca_em_objective"] > 0

    def test_spark_cache_hit_counting_matches_trace_events(self, data):
        trace, _, snapshot = self.fit_collected(SparkBackend, data)
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        trace_hits = sum(1 for e in trace.events if e.type == "cache_hit")
        assert counters["spca_cache_hits_total"] == trace_hits
        assert counters["spca_cache_puts_total"] == sum(
            1 for e in trace.events if e.type == "cache_put")

    def test_cache_accounting_identical_serial_vs_processes(self, data):
        def cache_counters(executor_name):
            _, _, snapshot = self.fit_collected(
                SparkBackend, data, executor_name)
            return {c["name"]: c["value"] for c in snapshot["counters"]
                    if c["name"].startswith("spca_cache_")}

        assert cache_counters("serial") == cache_counters("processes")

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_engine_metrics_to_dict_roundtrip(self, backend_cls, data):
        from repro.engine.metrics import EngineMetrics
        from repro.obs.metrics import METRICS_SCHEMA, reconcile_registry

        _, metrics, _ = self.fit_collected(backend_cls, data)
        payload = metrics.to_dict()
        assert payload["registry"]["schema"] == METRICS_SCHEMA
        # The embedded registry block reconciles against the same metrics.
        assert reconcile_registry(payload["registry"], metrics) == []
        rebuilt = EngineMetrics.from_dict(payload)
        assert rebuilt.jobs == metrics.jobs
        assert rebuilt.to_dict() == payload

    @pytest.mark.parametrize("backend_cls", [MapReduceBackend, SparkBackend])
    def test_registry_reconciles_under_faults(self, backend_cls, data):
        from repro.obs.metrics import collecting, reconcile_registry

        with collecting() as registry:
            _, metrics = fit_traced_with_plan(
                backend_cls, data, TestFaultTelemetry.PLAN)
            snapshot = registry.snapshot()
        assert reconcile_registry(snapshot, metrics) == []
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["spca_task_retries_total"] == sum(
            job.task_retries for job in metrics.jobs)


class TestPPCAIterationSpans:
    def test_standalone_ppca_traces_iterations(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(40, 8))
        with tracing() as tracer:
            fit_ppca(data, 2, max_iterations=5)
        iters = [s for s in tracer.spans if s.kind == "iteration"]
        assert iters
        assert all(s.name.startswith("ppca.iteration[") for s in iters)
        assert iters[0].attrs["convergence_delta"] is None
        assert iters[-1].attrs["objective"] > 0

    def test_smart_init_groups_separately_from_em_loop(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(120, 10))
        config = SPCAConfig(n_components=2, max_iterations=3, smart_init=True)
        with tracing() as tracer:
            SPCA(config).fit(data)
        groups = iteration_groups(TraceData.from_tracer(tracer))
        kinds = [
            {span.name.split("[")[0] for span in spans}
            for spans in groups.values()
        ]
        assert {"ppca.iteration"} in kinds
        assert {"iteration"} in kinds
