"""AST visitors for the EX-series executor-safety rules (EX001-EX005).

PR 5's concurrent executors stay bit-identical to the serial loop only while
every task function dispatched through ``TaskExecutor.run_tasks`` is pure,
picklable, and side-effect-free outside the commit path.  These rules make
that contract mechanically checkable, the same way DF001-DF005 check the
paper's dataflow discipline:

- *executor task code* is any function handed as the first argument to a
  ``.run_tasks(...)`` call, plus every function-scoped or module-level helper
  it (transitively) calls;
- a dispatch routed through ``closure_executor()`` is the sanctioned escape
  hatch for closure-based stages (the Spark engine's partition functions),
  so EX002 exempts it -- EX001/EX003/EX005 still apply: a closure running on
  the thread sibling races exactly like any other concurrent task.

Everything is a deterministic function of the source text; nothing is
imported or executed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.visitors import (
    FunctionNode,
    ModuleModel,
    _dotted_root,
    _free_loads,
    _iter_scope,
    _KIND_ACCUMULATOR,
    _KIND_BROADCAST,
    _KIND_FUNCTION,
    _MUTATOR_METHODS,
    _target_names,
    _terminal_name,
)

# Methods that apply a driver-visible side effect: cache puts/evictions,
# metrics records, fault counters, trace emits.  Inside executor task code
# these must go through the task scope and be committed by the driver.
_SIDE_EFFECT_METHODS = {
    "put",
    "evict",
    "evict_matching",
    "record",
    "record_job",
    "count_fault",
    "event",
}

# Dotted call prefixes that read wall-clock time.  ``time.perf_counter`` and
# ``time.monotonic`` are exempt: the engines measure task compute time with
# them by design, and the measurement feeds the simulated cost model rather
# than the task's output.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

# Dotted prefixes whose calls draw from process-global random state.
_RNG_ROOTS = ("random.", "np.random.", "numpy.random.")

# Explicitly nondeterministic sources regardless of seeding.
_ENTROPY_CALLS = {
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
}


def _dotted_text(expr: ast.expr) -> str | None:
    """``a.b.c`` -> ``"a.b.c"`` for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _routed_through_closure_executor(func: ast.expr) -> bool:
    """True when the ``.run_tasks`` receiver chain calls ``closure_executor()``."""
    if not isinstance(func, ast.Attribute):
        return False
    for node in ast.walk(func.value):
        if isinstance(node, ast.Call) and _terminal_name(node.func) == "closure_executor":
            return True
    return False


def _run_tasks_dispatches(
    model: ModuleModel,
) -> Iterator[tuple[ast.Call, FunctionNode | None, bool]]:
    """Every ``X.run_tasks(fn, ...)`` call with its enclosing scope.

    Yields ``(call, enclosing_fn, via_closure_executor)``.
    """
    for call, enclosing in model._calls_with_scope():
        if not isinstance(call.func, ast.Attribute):
            continue
        if call.func.attr != "run_tasks" or not call.args:
            continue
        yield call, enclosing, _routed_through_closure_executor(call.func)


def _exec_group(model: ModuleModel, entry: FunctionNode) -> list[FunctionNode]:
    """*entry* plus every local or module-level helper it transitively calls.

    Extends :meth:`ModuleModel.worker_group` to follow module-level helper
    functions too: executor task bodies are module-level by construction
    (picklability), so their helpers are as well.
    """
    group: list[FunctionNode] = []
    seen: set[int] = set()
    queue: list[FunctionNode] = [entry]
    while queue:
        current = queue.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        group.append(current)
        for name, _node in _free_loads(current):
            helper = model.resolve_local_def(current, name)
            if helper is None:
                helper = model.module_defs.get(name)
            if helper is not None and id(helper) not in seen:
                queue.append(helper)
    return group


def _task_entries(model: ModuleModel) -> dict[int, FunctionNode]:
    """Resolved task functions for every run_tasks dispatch in the module."""
    entries: dict[int, FunctionNode] = {}
    for call, enclosing, _via in _run_tasks_dispatches(model):
        fn = model._resolve_function(call.args[0], enclosing)
        if fn is not None:
            entries[id(fn)] = fn
    return entries


# ---------------------------------------------------------------------------
# EX001: shared driver state mutated inside executor task code


def check_ex001(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    seen_members: set[int] = set()

    def report(node: ast.AST, detail: str) -> None:
        findings.append(
            Finding(
                path=model.path,
                line=node.lineno,
                col=node.col_offset,
                code="EX001",
                message=(
                    f"{detail} inside an executor task function races with "
                    "sibling tasks and the commit loop; return a pure outcome "
                    "and let the driver commit it in task-index order"
                ),
            )
        )

    for entry in _task_entries(model).values():
        for member in _exec_group(model, entry):
            if id(member) in seen_members:
                continue
            seen_members.add(id(member))
            free = {name for name, _ in _free_loads(member)}

            def is_driver_name(name: str, member: FunctionNode = member) -> bool:
                resolved = model.resolve_origin(member, name)
                return resolved is not None and resolved[0] not in (
                    _KIND_ACCUMULATOR,
                    _KIND_BROADCAST,
                    _KIND_FUNCTION,
                )

            for node in ast.walk(member):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    report(node, f"rebinding of {', '.join(node.names)!s}")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            base = _dotted_root(target)
                            if base and base in free and is_driver_name(base):
                                report(node, f"store into driver-scope object {base!r}")
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr not in _MUTATOR_METHODS:
                        continue
                    base = node.func.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in free
                        and is_driver_name(base.id)
                    ):
                        report(
                            node,
                            f"mutating call {base.id}.{node.func.attr}() "
                            "on driver-scope object",
                        )
    return findings


# ---------------------------------------------------------------------------
# EX002: unpicklable closure handed directly to the (potential) process pool


def check_ex002(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    for call, enclosing, via_closure_executor in _run_tasks_dispatches(model):
        if via_closure_executor:
            continue  # sanctioned: the thread sibling takes closures
        arg = call.args[0]
        detail: str | None = None
        if isinstance(arg, ast.Lambda):
            detail = "lambda task function"
        elif isinstance(arg, ast.Name):
            # Search the dispatching function's own scope chain (its own
            # local defs first, then outer functions); a hit means the task
            # body is a closure, not a module-level function.
            local: FunctionNode | None = None
            scope = enclosing
            while scope is not None:
                info = model.scopes[id(scope)]
                if arg.id in info.local_defs:
                    local = info.local_defs[arg.id]
                    break
                scope = info.enclosing
            if local is not None:
                detail = f"locally-defined task function {arg.id!r}"
        if detail is not None:
            findings.append(
                Finding(
                    path=model.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    code="EX002",
                    message=(
                        f"{detail} cannot cross the process executor's pickle "
                        "pipe; define it at module level, or dispatch via "
                        "executor.closure_executor() to make the in-process "
                        "fallback explicit"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# EX003: driver-visible side effects emitted from inside a task


def check_ex003(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    seen_members: set[int] = set()
    for entry in _task_entries(model).values():
        for member in _exec_group(model, entry):
            if id(member) in seen_members:
                continue
            seen_members.add(id(member))
            free = {name for name, _ in _free_loads(member)}
            for node in ast.walk(member):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "get_tracer"
                ):
                    findings.append(
                        Finding(
                            path=model.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="EX003",
                            message=(
                                "tracer acquired inside an executor task; "
                                "buffer events in the task scope and let the "
                                "driver emit them at commit in task-index order"
                            ),
                        )
                    )
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in _SIDE_EFFECT_METHODS:
                    continue
                base = _dotted_root(node.func.value)
                if base is None or base not in free:
                    continue
                resolved = model.resolve_origin(member, base)
                if resolved is None or resolved[0] in (
                    _KIND_ACCUMULATOR,
                    _KIND_FUNCTION,
                ):
                    continue
                findings.append(
                    Finding(
                        path=model.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="EX003",
                        message=(
                            f"side effect {base}.{node.func.attr}() performed "
                            "inside an executor task; stage it in the task "
                            "scope and commit from the driver in task-index "
                            "order"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# EX004: shared-memory segment lifetime misuse


def _shm_assignments(scope: ast.AST) -> Iterator[tuple[str, ast.Call, bool]]:
    """``name = SharedMemory(...)`` bindings in one scope.

    Yields ``(bound_name, call, is_create)``.
    """
    for node in _iter_scope(scope):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        if _terminal_name(call.func) != "SharedMemory":
            continue
        is_create = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        for target in node.targets:
            for name in _target_names(target):
                yield name, call, is_create


# Call names that hand a segment to an owning registry for explicit
# lifecycle management -- the cross-iteration pinning idiom, where a segment
# deliberately outlives the creating scope and is reclaimed by an
# unpin/shutdown elsewhere (see repro.engine.exec.resident).
_LIFECYCLE_REGISTRAR_PREFIXES = ("pin", "unpin", "register", "track", "adopt")


def _is_registrar_call(node: ast.Call, segment_name: str) -> bool:
    """``registry.pin(segment)``-style adoption of the segment or its name."""
    terminal = _terminal_name(node.func)
    if terminal is None or not terminal.startswith(_LIFECYCLE_REGISTRAR_PREFIXES):
        return False
    candidates = list(node.args) + [kw.value for kw in node.keywords]
    return any(_dotted_root(arg) == segment_name for arg in candidates)


def _scope_has_lifecycle_pairing(scope: ast.AST, segment_name: str) -> bool:
    """A finalizer, unlink, registrar call, or registry store in *scope*."""
    for node in _iter_scope(scope):
        if isinstance(node, ast.Call):
            terminal = _terminal_name(node.func)
            if terminal == "finalize":
                return True
            if (
                terminal == "unlink"
                and isinstance(node.func, ast.Attribute)
                and _dotted_root(node.func.value) == segment_name
            ):
                return True
            if _is_registrar_call(node, segment_name):
                return True
        elif isinstance(node, ast.Assign) and isinstance(
            node.targets[0], ast.Subscript
        ):
            # registry store: self._segments[seg.name] = seg
            if isinstance(node.value, ast.Name) and node.value.id == segment_name:
                return True
    return False


def _scope_has_unregister(scope: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call) and _terminal_name(node.func) == "unregister"
        for node in _iter_scope(scope)
    )


def check_ex004(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    scopes: list[ast.AST] = [model.tree]
    scopes.extend(
        info.node for info in model.scopes.values() if not isinstance(info.node, ast.Lambda)
    )
    for scope in scopes:
        for name, call, is_create in _shm_assignments(scope):
            if is_create:
                if not _scope_has_lifecycle_pairing(scope, name):
                    findings.append(
                        Finding(
                            path=model.path,
                            line=call.lineno,
                            col=call.col_offset,
                            code="EX004",
                            message=(
                                f"shm segment {name!r} created without a "
                                "registry store, weakref.finalize, or unlink "
                                "in the same scope; it outlives the fit and "
                                "leaks /dev/shm pages"
                            ),
                        )
                    )
            else:
                if not _scope_has_unregister(scope):
                    findings.append(
                        Finding(
                            path=model.path,
                            line=call.lineno,
                            col=call.col_offset,
                            code="EX004",
                            message=(
                                f"shm segment {name!r} attached without "
                                "resource_tracker.unregister; this worker's "
                                "exit would destroy a segment the creating "
                                "process still owns"
                            ),
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# EX005: nondeterminism sources in task and kernel code


_TASK_METHOD_NAMES = {
    "map",
    "map_batch",
    "reduce",
    "reduce_batch",
    "combine",
    "setup",
    "cleanup",
}


def _deterministic_scopes(model: ModuleModel) -> Iterator[FunctionNode]:
    """Every function whose body must be a deterministic function of its args.

    Executor task groups, DF worker/combiner closures, ``Mapper``/``Reducer``
    /``Combiner`` task methods, and ``@contract``-decorated kernels.
    """
    seen: set[int] = set()

    def emit(fn: FunctionNode) -> Iterator[FunctionNode]:
        if id(fn) not in seen:
            seen.add(id(fn))
            yield fn

    for entry in _task_entries(model).values():
        for member in _exec_group(model, entry):
            yield from emit(member)
    for registry in (model.worker_fns, model.combiner_fns):
        for entry in registry.values():
            for member in model.worker_group(entry):
                yield from emit(member)
    for node in ast.walk(model.tree):
        if isinstance(node, ast.ClassDef):
            base_names = {_terminal_name(base) or "" for base in node.bases}
            if not any(
                marker in name
                for marker in ("Mapper", "Reducer", "Combiner")
                for name in base_names
            ):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name in _TASK_METHOD_NAMES:
                    yield from emit(item)
        elif isinstance(node, ast.FunctionDef):
            for decorator in node.decorator_list:
                target = (
                    decorator.func if isinstance(decorator, ast.Call) else decorator
                )
                if _terminal_name(target) == "contract":
                    yield from emit(node)
                    break


def _rng_violation(dotted: str, call: ast.Call) -> str | None:
    """Classify an RNG call; seeded generator construction is allowed."""
    terminal = dotted.rsplit(".", 1)[-1]
    if terminal in ("Generator", "default_rng", "Random", "RandomState", "seed"):
        if call.args or call.keywords:
            return None  # explicitly seeded construction: deterministic
        return f"unseeded {dotted}() draws from OS entropy"
    return f"{dotted}() draws from process-global random state"


def check_ex005(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[int, int]] = set()

    def report(node: ast.AST, detail: str) -> None:
        key = (node.lineno, node.col_offset)
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                path=model.path,
                line=node.lineno,
                col=node.col_offset,
                code="EX005",
                message=(
                    f"{detail}; task and kernel code must be a deterministic "
                    "function of its payload (seed RNGs on the driver, ship "
                    "them in the payload, and sort before order-sensitive "
                    "reductions)"
                ),
            )
        )

    for member in _deterministic_scopes(model):
        for node in ast.walk(member):
            if isinstance(node, ast.Call):
                dotted = _dotted_text(node.func)
                if dotted is not None:
                    if dotted in _WALL_CLOCK_CALLS:
                        report(node, f"wall-clock read {dotted}()")
                        continue
                    if dotted in _ENTROPY_CALLS:
                        report(node, f"entropy source {dotted}()")
                        continue
                    if any(
                        dotted.startswith(root) for root in _RNG_ROOTS
                    ):
                        detail = _rng_violation(dotted, node)
                        if detail is not None:
                            report(node, detail)
                        continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "hash"
                    and node.args
                ):
                    report(
                        node,
                        "built-in hash() is salted per interpreter "
                        "(PYTHONHASHSEED) and differs across worker processes; "
                        "use zlib.crc32 like the engine partitioners",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterated = node.iter
                if isinstance(iterated, ast.Set) or (
                    isinstance(iterated, ast.Call)
                    and isinstance(iterated.func, ast.Name)
                    and iterated.func.id in ("set", "frozenset")
                ):
                    report(
                        node if isinstance(node, ast.For) else iterated,
                        "iteration over a set has no deterministic order "
                        "across processes",
                    )
    return findings


def run_exec_checks(model: ModuleModel) -> list[Finding]:
    """Every EX-series rule over one module model."""
    findings: list[Finding] = []
    findings.extend(check_ex001(model))
    findings.extend(check_ex002(model))
    findings.extend(check_ex003(model))
    findings.extend(check_ex004(model))
    findings.extend(check_ex005(model))
    return findings
