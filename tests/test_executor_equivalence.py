"""Property: concurrent executors are indistinguishable from serial.

Mirror of ``tests/test_batch_equivalence.py`` for the executor axis: for any
job, any split shape, and any fault schedule, running under ``threads`` or
``processes`` must produce the same output records, the same JobStats byte
fields, the same counters, and the same trace events as the serial loop.
The only permitted trace difference is the presence of the executor's own
``executor_dispatch``/``executor_join`` bookkeeping events, which are
excluded from comparison (as are timing-derived ``speculative_kill``
events, same as the batch property).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.backends.mapreduce import MapReduceBackend
from repro.backends.spark import SparkBackend
from repro.core import SPCA
from repro.engine.exec import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor
from repro.engine.mapreduce import MapReduceJob, MapReduceRuntime, SumReducer
from repro.engine.spark.context import SparkContext
from repro.errors import JobFailedError
from repro.faults import RandomFaults
from repro.obs import tracing
from tests.test_batch_equivalence import (
    BYTE_FIELDS,
    CONFIG,
    DATA,
    MAPPERS,
    SMALL_CLUSTER,
    job_inputs,
)

EXCLUDED_EVENTS = ("executor_dispatch", "executor_join", "speculative_kill")

# Pools are expensive to spin up (especially the fork for processes), so the
# whole module shares one of each and every test/example reuses them.
THREADS = ThreadPoolTaskExecutor(workers=2)
PROCESSES = ProcessPoolTaskExecutor(workers=2)


@pytest.fixture(scope="module", autouse=True)
def _shared_pools():
    yield
    THREADS.shutdown()
    PROCESSES.shutdown()
    assert PROCESSES.registry.active_segments() == []


def data_events(tracer):
    """Trace events that carry data/accounting (multiset, order-free).

    Serial and concurrent runs commit in the same task order, but a failed
    Spark attempt's cache put/evict churn is replayed at commit time rather
    than interleaved with the attempt, so events are compared as multisets.
    """
    return sorted(
        (event.type, sorted(event.attrs.items(), key=repr))
        for event in tracer.events
        if event.type not in EXCLUDED_EVENTS
    )


def run_traced(executor, params, faults=None):
    splits, mapper, use_reducer, use_combiner, num_reducers = params
    runtime = MapReduceRuntime(
        cluster=SMALL_CLUSTER, executor=executor, faults=faults
    )
    job = MapReduceJob(
        name="property",
        mapper=MAPPERS[mapper](),
        reducer=SumReducer() if use_reducer else None,
        combiner=SumReducer() if use_combiner else None,
        num_reducers=num_reducers,
    )
    with tracing() as tracer:
        try:
            output = runtime.run(job, splits)
        except JobFailedError as exc:
            return ("failed", str(exc)), None, tracer
    return output, runtime.metrics.jobs[0], tracer


def assert_equivalent(params, faults_factory=None):
    results = {}
    for name, executor in (
        ("serial", None),
        ("threads", THREADS),
        ("processes", PROCESSES),
    ):
        faults = faults_factory() if faults_factory else None
        results[name] = run_traced(executor, params, faults)
    out_serial, stats_serial, trace_serial = results["serial"]
    for name in ("threads", "processes"):
        out, stats, trace = results[name]
        assert out == out_serial, name
        if stats_serial is None:
            assert stats is None, name
        else:
            for field in BYTE_FIELDS:
                assert getattr(stats, field) == getattr(stats_serial, field), (
                    f"{name}: {field}"
                )
            assert stats.counters == stats_serial.counters, name
            assert stats.n_map_tasks == stats_serial.n_map_tasks, name
            assert stats.n_reduce_tasks == stats_serial.n_reduce_tasks, name
            assert stats.task_retries == stats_serial.task_retries, name
            assert stats.faults == stats_serial.faults, name
        assert data_events(trace) == data_events(trace_serial), name
        assert [(s.kind, s.name) for s in trace.spans] == [
            (s.kind, s.name) for s in trace_serial.spans
        ], name


@settings(max_examples=25, deadline=None)
@given(params=job_inputs())
def test_executors_match_serial(params):
    assert_equivalent(params)


@settings(max_examples=25, deadline=None)
@given(params=job_inputs())
def test_executors_match_serial_under_random_faults(params):
    # A fresh injector per run: every executor must consume the identical
    # RNG stream, so retries, stragglers, fault counters -- and even the
    # JobFailedError message when the schedule is fatal -- agree exactly.
    assert_equivalent(params, faults_factory=lambda: RandomFaults(0.25, seed=99))


# -- full sPCA fits must be bitwise identical across executors ------------


def fit_mapreduce(executor):
    runtime = MapReduceRuntime(cluster=SMALL_CLUSTER, executor=executor)
    backend = MapReduceBackend(CONFIG, runtime=runtime, records_per_split=6)
    model, _ = SPCA(CONFIG, backend).fit(DATA)
    return model, runtime.metrics


def fit_spark(executor):
    context = SparkContext(cluster=SMALL_CLUSTER, executor=executor)
    backend = SparkBackend(CONFIG, context=context, records_per_partition=6)
    model, _ = SPCA(CONFIG, backend).fit(DATA)
    return model, context.metrics


def assert_fits_match(fit, executor):
    model_serial, metrics_serial = fit(None)
    model_exec, metrics_exec = fit(executor)
    # No kernel is re-associated by the executor layer (tasks are identical
    # units of work in a different order), so equality is bitwise.
    assert np.array_equal(model_exec.components, model_serial.components)
    assert model_exec.noise_variance == model_serial.noise_variance
    jobs_s, jobs_e = metrics_serial.jobs, metrics_exec.jobs
    assert [j.name for j in jobs_e] == [j.name for j in jobs_s]
    for job_e, job_s in zip(jobs_e, jobs_s):
        for field in BYTE_FIELDS:
            assert getattr(job_e, field) == getattr(job_s, field), (
                f"{job_s.name}: {field}"
            )
        assert job_e.counters == job_s.counters, job_s.name


def test_spca_mapreduce_threads_bitwise():
    assert_fits_match(fit_mapreduce, THREADS)


def test_spca_mapreduce_processes_bitwise():
    assert_fits_match(fit_mapreduce, PROCESSES)


def test_spca_spark_threads_bitwise():
    assert_fits_match(fit_spark, THREADS)


def test_spca_spark_processes_bitwise():
    # Spark partition functions are closures, so the process executor routes
    # them through its thread sibling -- results must still match serial.
    assert_fits_match(fit_spark, PROCESSES)


def test_spark_processes_fallback_is_traced():
    context = SparkContext(cluster=SMALL_CLUSTER, executor=PROCESSES)
    backend = SparkBackend(CONFIG, context=context, records_per_partition=6)
    with tracing() as tracer:
        SPCA(CONFIG, backend).fit(DATA)
    dispatches = [e for e in tracer.events if e.type == "executor_dispatch"]
    assert dispatches, "concurrent Spark run must emit dispatch events"
    assert all(
        e.attrs.get("fallback_from") == "processes" for e in dispatches
    )
