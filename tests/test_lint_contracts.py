"""Runtime shape contracts: enablement, unification, and kernel coverage."""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ContractViolationError, ShapeError
from repro.jobs import kernels
from repro.lint import contracts
from repro.lint.contracts import Spec, contract, parse_spec


# ---------------------------------------------------------------------------
# spec parsing


def test_parse_spec_full():
    spec = parse_spec("matrix (b, D)")
    assert spec == Spec("matrix", ("b", "D"), "matrix (b, D)")


def test_parse_spec_kind_only():
    assert parse_spec("scalar").dims is None


def test_parse_spec_one_tuple():
    assert parse_spec("dense (D,)").dims == ("D",)


def test_parse_spec_int_literal_dims():
    assert parse_spec("dense (3, 4)").dims == (3, 4)


@pytest.mark.parametrize("bad", ["blob (a, b)", "dense (a-b)", ""])
def test_parse_spec_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_spec(bad)


def test_contract_rejects_unknown_parameter():
    with pytest.raises(ValueError, match="unknown parameter"):

        @contract(nope="dense (D,)")
        def f(x):
            return x


# ---------------------------------------------------------------------------
# enable / disable plumbing


def test_checked_scopes_the_flag():
    # The suite-wide fixture arms contracts; checked(False) must disarm
    # within its scope and restore afterwards.
    assert contracts.is_enabled()
    with contracts.checked(False):
        assert not contracts.is_enabled()
    assert contracts.is_enabled()


def test_disabled_calls_skip_checking():
    @contract(x="dense (3,)")
    def f(x):
        return x

    with contracts.checked(False):
        f(np.zeros(7))  # wrong shape, but unchecked
    with pytest.raises(ContractViolationError):
        f(np.zeros(7))


def test_env_variable_controls_default(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_CONTRACTS", "1")
    assert contracts._env_enabled()
    monkeypatch.setenv("REPRO_CHECK_CONTRACTS", "off")
    assert not contracts._env_enabled()


# ---------------------------------------------------------------------------
# runtime checking semantics


def test_symbols_unify_across_arguments():
    @contract(a="dense (n, m)", b="dense (m, k)")
    def mul(a, b):
        return a @ b

    mul(np.ones((2, 3)), np.ones((3, 4)))
    with pytest.raises(ContractViolationError, match="binds symbol"):
        mul(np.ones((2, 3)), np.ones((5, 4)))


def test_return_value_checked_against_bindings():
    @contract(a="dense (n, m)", ret="dense (m,)")
    def broken(a):
        return np.zeros(a.shape[0] + 1)

    with pytest.raises(ContractViolationError, match="return value"):
        broken(np.ones((2, 2)))


def test_tuple_return_specs():
    @contract(block="matrix (b, D)", ret=("dense (D,)", "int"))
    def sums(block):
        return np.asarray(block.sum(axis=0)).ravel(), int(block.shape[0])

    vec, rows = sums(sp.eye(4, 6, format="csr"))
    assert vec.shape == (6,)
    assert rows == 4


def test_kind_mismatch_sparse_vs_dense():
    @contract(x="dense (n, m)")
    def f(x):
        return x

    with pytest.raises(ContractViolationError, match="dense"):
        f(sp.eye(3, format="csr"))


def test_kind_matrix_accepts_both():
    @contract(x="matrix (n, m)")
    def f(x):
        return x

    f(np.ones((2, 2)))
    f(sp.eye(2, format="csr"))
    with pytest.raises(ContractViolationError):
        f(np.ones(3))  # 1-D is not a matrix


def test_scalar_and_int_kinds():
    @contract(x="scalar", n="int")
    def f(x, n):
        return x * n

    f(1.5, 2)
    f(np.float64(1.5), np.int64(2))
    with pytest.raises(ContractViolationError):
        f(np.zeros(3), 2)
    with pytest.raises(ContractViolationError):
        f(1.5, 2.5)


def test_none_arguments_are_unchecked():
    @contract(latent="dense (b, d)")
    def f(latent=None):
        return latent

    assert f(None) is None
    assert f() is None


def test_violation_is_a_shape_error():
    # Callers that guard with ``except ShapeError`` keep working when the
    # contract fires before the kernel's own validation.
    assert issubclass(ContractViolationError, ShapeError)


# ---------------------------------------------------------------------------
# the real kernels enforce their contracts


def test_block_latent_rejects_mismatched_mean():
    with pytest.raises(ShapeError):
        kernels.block_latent(
            np.ones((4, 5)), np.zeros(3), np.ones((5, 2)), np.zeros(2), True
        )


def test_block_ytx_xtx_rejects_mismatched_latent():
    with pytest.raises(ShapeError):
        kernels.block_ytx_xtx(
            np.ones((4, 5)), np.zeros(5), np.ones((5, 2)), np.zeros(2), True,
            latent=np.ones((3, 2)),
        )


def test_block_ss3_checks_components():
    with pytest.raises(ShapeError):
        kernels.block_ss3(
            np.ones((4, 5)), np.zeros(5), np.ones((5, 2)), np.zeros(2),
            np.ones((6, 2)), True,
        )


def test_kernels_registered():
    registry = contracts.registered()
    for name in (
        "block_sums",
        "block_frobenius",
        "block_latent",
        "block_ytx_xtx",
        "block_ss3",
        "block_error_parts",
        "error_from_colsums",
    ):
        assert name in registry, name


def test_sparse_block_passes_matrix_contracts():
    block = sp.random(6, 5, density=0.4, format="csr", random_state=0)
    latent = kernels.block_latent(
        block, np.zeros(5), np.ones((5, 2)), np.zeros(2), True
    )
    assert latent.shape == (6, 2)


# ---------------------------------------------------------------------------
# overhead when disabled


def test_disabled_overhead_is_small():
    @contract(x="dense (n,)", ret="dense (n,)")
    def identity(x):
        return x

    def plain(x):
        return x

    x = np.zeros(4)
    n = 20_000
    with contracts.checked(False):
        start = time.perf_counter()
        for _ in range(n):
            identity(x)
        contracted = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(n):
        plain(x)
    baseline = time.perf_counter() - start
    # One boolean test per call; allow a loose factor for timer noise.
    assert contracted < baseline * 20 + 0.05
