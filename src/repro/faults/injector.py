"""Pluggable fault injectors the engines consult at their failure points.

Both engine simulators already had one failure point each: a coin flip per
task attempt.  The :class:`FaultInjector` protocol generalizes it into three
hooks the engines call:

- :meth:`FaultInjector.begin_job` as a job/stage starts -- returns
  stage-level directives (executor losses, driver-memory caps);
- :meth:`FaultInjector.time_factor` after an attempt ran -- a straggler
  multiplier applied to the attempt's measured compute time;
- :meth:`FaultInjector.fail` after an attempt ran -- ``None`` to commit the
  attempt, or a short fault label to discard it and retry.

:class:`RandomFaults` reproduces the historical ``failure_rate``/``seed``
behaviour bit-for-bit: it draws exactly one ``random()`` from a
``numpy`` PCG64 generator per ``fail`` call, in the same order the old
inline code drew it, so a pre-existing seed replays the exact same failure
sequence.  :class:`PlannedFaults` replays a :class:`~repro.faults.plan.FaultPlan`
deterministically with no randomness at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

import numpy as np

from repro.errors import InvalidPlanError
from repro.faults.plan import (
    DriverMemoryCap,
    ExecutorLoss,
    FaultPlan,
    FetchFailure,
    KillTask,
    Straggler,
)


@dataclass(frozen=True)
class FaultSite:
    """Coordinates of one task attempt, as seen by an engine's retry loop.

    Attributes:
        engine: ``"mapreduce"`` or ``"spark"``.
        job: the running job/stage name.
        kind: ``"map"``/``"combine"``/``"reduce"`` on MapReduce, ``"task"``
            on Spark.
        task_id: task (partition) index within the job.
        attempt: 1-based attempt number.
    """

    engine: str
    job: str
    kind: str
    task_id: int
    attempt: int


@dataclass(frozen=True)
class StageDirectives:
    """Stage-level faults an injector requests as a job begins."""

    executor_losses: tuple[int, ...] = ()
    driver_memory_cap: int | None = None


NO_DIRECTIVES = StageDirectives()


class FaultInjector:
    """Base injector: never fails anything."""

    def begin_job(self, engine: str, job: str) -> StageDirectives:
        """Called once per job/stage start; returns stage-level directives."""
        return NO_DIRECTIVES

    def fail(self, site: FaultSite) -> str | None:
        """Label of the fault striking this attempt, or None to succeed."""
        return None

    def time_factor(self, site: FaultSite) -> float:
        """Multiplier applied to the attempt's measured compute seconds."""
        return 1.0

    def plan_task(
        self, site: FaultSite, max_attempts: int
    ) -> list[tuple[float, str | None]]:
        """Precompute this task's injection decisions for every attempt.

        Returns one ``(time_factor, fail_label)`` entry per attempt, ending
        either with the first successful attempt (label ``None``) or after
        ``max_attempts`` failures.  The hooks are consulted in exactly the
        order a serial retry loop consults them -- ``time_factor`` then
        ``fail``, attempt by attempt, and callers plan tasks in ascending
        task-index order -- so :class:`RandomFaults` consumes the identical
        generator stream and concurrent executors replay the identical fault
        sequence.  (:class:`PlannedFaults` is stateless inside a job, so its
        plans are order-independent outright.)

        ``site.attempt`` is ignored; the per-attempt sites are derived here.
        """
        plan: list[tuple[float, str | None]] = []
        for attempt in range(1, max_attempts + 1):
            attempt_site = FaultSite(
                site.engine, site.job, site.kind, site.task_id, attempt
            )
            factor = self.time_factor(attempt_site)
            label = self.fail(attempt_site)
            plan.append((factor, label))
            if label is None:
                break
        return plan


class RandomFaults(FaultInjector):
    """The historical i.i.d. coin-flip failure model, now as a plan.

    Bit-compatible with the pre-plan engines: one generator draw per
    ``fail`` call (even at rate 0, exactly as the inline code drew), no
    draws anywhere else.
    """

    def __init__(self, rate: float = 0.0, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise InvalidPlanError(f"failure_rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def fail(self, site: FaultSite) -> str | None:
        if self._rng.random() >= self.rate:
            return None
        return "random"


class PlannedFaults(FaultInjector):
    """Deterministic replay of a :class:`FaultPlan`.

    Each event keeps its own occurrence counter: the Nth job whose name
    matches the event's pattern is the event's occurrence N (0-based), so
    "kill YtXJob's second run" is expressible regardless of what other jobs
    execute around it.
    """

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self._match_counts: dict[int, int] = {}
        self._active: tuple = ()

    def begin_job(self, engine: str, job: str) -> StageDirectives:
        active = []
        losses: list[int] = []
        cap: int | None = None
        for index, event in enumerate(self.plan.events):
            if not fnmatchcase(job, event.job):
                continue
            seen = self._match_counts.get(index, 0)
            self._match_counts[index] = seen + 1
            if event.occurrence is not None and event.occurrence != seen:
                continue
            if isinstance(event, ExecutorLoss):
                if engine == "spark":
                    losses.append(event.executor)
            elif isinstance(event, DriverMemoryCap):
                if engine == "spark":
                    cap = event.limit_bytes if cap is None else min(cap, event.limit_bytes)
            else:
                active.append(event)
        self._active = tuple(active)
        return StageDirectives(tuple(losses), cap)

    def fail(self, site: FaultSite) -> str | None:
        for event in self._active:
            if isinstance(event, KillTask):
                if self._matches_task(event, site) and site.attempt <= event.attempts:
                    return "kill_task"
            elif isinstance(event, FetchFailure):
                if self._matches_fetch(event, site) and site.attempt <= event.attempts:
                    return "fetch_failure"
        return None

    def time_factor(self, site: FaultSite) -> float:
        factor = 1.0
        for event in self._active:
            if isinstance(event, Straggler) and self._matches_task(event, site):
                factor *= event.factor
        return factor

    @staticmethod
    def _matches_task(event, site: FaultSite) -> bool:
        if event.kind is not None and event.kind != site.kind:
            return False
        return event.task is None or event.task == site.task_id

    @staticmethod
    def _matches_fetch(event: FetchFailure, site: FaultSite) -> bool:
        # A fetch failure strikes the consumer of remote data: the reduce
        # side on MapReduce, any task on Spark (which reads shuffle/cache
        # blocks remotely).
        if site.engine == "mapreduce" and site.kind != "reduce":
            return False
        return event.task is None or event.task == site.task_id
