"""Incremental (mini-batch / streaming) PPCA."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.extensions import IncrementalPPCA
from repro.metrics import subspace_angle_degrees


def lowrank(n, d_cols, rank, noise, seed):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank)) * np.sqrt(np.arange(rank, 0, -1))
    loadings = rng.normal(size=(rank, d_cols))
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


def exact_basis(data, k):
    centered = data - data.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:k].T


class TestMiniBatchFit:
    def test_recovers_subspace(self):
        data = lowrank(2000, 25, 4, 0.05, seed=1)
        model = IncrementalPPCA(4, batch_size=200, n_epochs=8, seed=2).fit(data)
        assert subspace_angle_degrees(model.basis, exact_basis(data, 4)) < 5.0

    def test_sparse_input(self):
        matrix = sp.random(1500, 40, density=0.2, random_state=3, format="csr")
        model = IncrementalPPCA(3, batch_size=128, n_epochs=6, seed=4).fit(matrix)
        assert model.components.shape == (40, 3)
        assert np.isfinite(model.noise_variance)

    def test_more_epochs_improve_subspace(self):
        data = lowrank(1500, 20, 3, 0.05, seed=5)
        exact = exact_basis(data, 3)
        short = IncrementalPPCA(3, batch_size=150, n_epochs=1, seed=6).fit(data)
        long = IncrementalPPCA(3, batch_size=150, n_epochs=12, seed=6).fit(data)
        assert subspace_angle_degrees(long.basis, exact) < subspace_angle_degrees(
            short.basis, exact
        ) + 0.5

    def test_noise_variance_sensible(self):
        data = lowrank(2000, 15, 3, 0.3, seed=7)
        model = IncrementalPPCA(3, batch_size=250, n_epochs=10, seed=8).fit(data)
        centered = data - data.mean(axis=0)
        eigenvalues = np.linalg.svd(centered, compute_uv=False) ** 2 / 2000
        expected = eigenvalues[3:].mean()
        assert model.noise_variance == pytest.approx(expected, rel=0.5)

    def test_validation(self):
        data = lowrank(100, 10, 2, 0.1, seed=9)
        with pytest.raises(ShapeError):
            IncrementalPPCA(20).fit(data)
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, batch_size=0).fit(data)
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, step_decay=0.3).fit(data)


class TestStreamingFit:
    def test_stream_of_batches(self):
        data = lowrank(2400, 20, 3, 0.05, seed=10)
        batches = [data[i : i + 200] for i in range(0, 2400, 200)]
        # Several passes over the stream improve the estimate.
        algorithm = IncrementalPPCA(3, seed=11, n_epochs=1)
        model = algorithm.partial_fit_stream(batches * 6, n_cols=20)
        assert subspace_angle_degrees(model.basis, exact_basis(data, 3)) < 10.0
        assert model.n_samples == 2400 * 6

    def test_stream_mean_estimated_online(self):
        data = lowrank(1000, 12, 2, 0.05, seed=12)
        batches = [data[i : i + 100] for i in range(0, 1000, 100)]
        model = IncrementalPPCA(2, seed=13).partial_fit_stream(batches, n_cols=12)
        np.testing.assert_allclose(model.mean, data.mean(axis=0), atol=1e-8)

    def test_stream_validation(self):
        algorithm = IncrementalPPCA(2, seed=14)
        with pytest.raises(ShapeError):
            algorithm.partial_fit_stream([], n_cols=5)
        with pytest.raises(ShapeError):
            algorithm.partial_fit_stream([np.ones((4, 3))], n_cols=5)
