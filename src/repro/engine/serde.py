"""Serialized-size estimation for intermediate-data accounting.

The communication-complexity results of the paper are measured in bytes of
intermediate data.  Rather than actually serializing every record, the
engines estimate the wire size of each value with :func:`sizeof`, which
charges numpy buffers at their true byte size and Python scalars/containers
at small fixed overheads.  The estimates are deterministic, additive, and
close enough to any real encoding that byte *ratios* (the quantity the paper
reports: 961 GB vs 131 MB) are preserved.

Sizes of numpy arrays and scipy sparse matrices are memoized by object
identity: the engines re-measure the same model matrices on every job (HDFS
re-read accounting, map-output spill, shuffle), and without the cache those
repeat walks dominate simulator wall-clock at benchmark scale.  The cache
assumes values flowing through the engines are treated as immutable records
-- which every engine here guarantees -- and entries are dropped as soon as
the measured object is garbage-collected, so a recycled ``id()`` can never
alias a stale size.

Shared-memory interplay (``repro.engine.exec``): the process-pool executor
re-attaches shm segments as fresh zero-copy ndarray views, and every
attachment is a *new* Python object whose ``id()`` may land on a recycled
address.  Hits are therefore validated by identity (``entry[0]() is
value``), never trusted on the key alone, which makes re-attachment safe by
construction; and executors call :func:`clear_sizeof_cache` from
``shutdown()`` so sizes measured against one run's payload objects cannot
leak into the next run through recycled ids of long-lived view buffers.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable

import numpy as np
import scipy.sparse as sp

# Fixed per-object overheads, roughly matching compact binary encodings.
_SCALAR_BYTES = 8
_CONTAINER_OVERHEAD = 8

# Identity-keyed size cache: id -> (weakref to the measured object, size).
# The weakref both validates the hit (the referent must still be the same
# object) and evicts the entry on collection via its callback.
_MEMO_MAX_ENTRIES = 65536
_memo: dict[int, tuple[weakref.ref, int]] = {}

# Observability hook for the dynamic race detector (repro.lint.racecheck):
# called as observer(id_key, size, hit) on every memo read/write so the
# checker can watch the cache's shared state without slowing the fast path.
_memo_observer: Callable[[int, int, bool], None] | None = None


def set_sizeof_observer(observer: Callable[[int, int, bool], None] | None) -> None:
    """Install (or clear, with None) the sizeof-memo access observer."""
    global _memo_observer
    _memo_observer = observer


def clear_sizeof_cache() -> None:
    """Drop every memoized size (used by benchmarks to measure cold cost)."""
    _memo.clear()


def sizeof_cache_entries() -> int:
    """Number of live entries in the identity-keyed size cache."""
    return len(_memo)


def _memoized(value: Any, compute: Callable[[Any], int]) -> int:
    key = id(value)
    entry = _memo.get(key)
    if entry is not None and entry[0]() is value:
        if _memo_observer is not None:
            _memo_observer(key, entry[1], True)
        return entry[1]
    size = compute(value)
    if len(_memo) >= _MEMO_MAX_ENTRIES:
        _memo.clear()
    try:
        ref = weakref.ref(value, lambda _, key=key: _memo.pop(key, None))
    except TypeError:  # pragma: no cover - ndarray/sparse are weakref-able
        return size
    _memo[key] = (ref, size)
    if _memo_observer is not None:
        _memo_observer(key, size, False)
    return size


def _ndarray_size(value: np.ndarray) -> int:
    return int(value.nbytes) + _CONTAINER_OVERHEAD


def _sparse_size(value: Any) -> int:
    """CSR-equivalent wire size of a sparse matrix, without materializing one.

    Compressed formats are measured from their real index structures; for
    every other layout (COO, LIL, DOK, DIA) the size is computed from ``nnz``
    and the index/data dtype widths -- the cost the old ``value.tocsr()``
    implementation paid a full matrix copy to discover.
    """
    fmt = getattr(value, "format", None)
    if fmt in ("csr", "csc", "bsr"):
        # data/indices are identical under CSR<->CSC conversion; only the
        # pointer array length depends on the major axis, so charge the
        # CSR-equivalent (rows + 1) pointers to match the historical numbers.
        ptr_entries = value.shape[0] + 1
        return (
            int(value.data.nbytes)
            + int(value.indices.nbytes)
            + ptr_entries * value.indptr.dtype.itemsize
            + _CONTAINER_OVERHEAD
        )
    nnz = int(value.nnz)
    rows = int(value.shape[0])
    if fmt == "coo":
        index_itemsize = value.col.dtype.itemsize
    else:
        # scipy uses 32-bit indices unless the shape/nnz demands 64-bit.
        needs_64 = max(nnz, max(value.shape, default=0)) > np.iinfo(np.int32).max
        index_itemsize = 8 if needs_64 else 4
    data_itemsize = np.dtype(value.dtype).itemsize
    return (
        nnz * data_itemsize
        + nnz * index_itemsize
        + (rows + 1) * index_itemsize
        + _CONTAINER_OVERHEAD
    )


def sizeof(value: object) -> int:
    """Estimated serialized size of *value* in bytes."""
    if value is None:
        return 1
    if isinstance(value, (bool, int, float, np.integer, np.floating)):
        return _SCALAR_BYTES
    if isinstance(value, (str, bytes)):
        return len(value) + _CONTAINER_OVERHEAD
    if isinstance(value, np.ndarray):
        return _memoized(value, _ndarray_size)
    if sp.issparse(value):
        return _memoized(value, _sparse_size)
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(
            sizeof(k) + sizeof(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(sizeof(item) for item in value)
    nbytes = getattr(value, "nbytes", None)
    if callable(nbytes):
        return int(nbytes()) + _CONTAINER_OVERHEAD
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes) + _CONTAINER_OVERHEAD
    # Fall back to the repr length; better to overcount odd objects than to
    # silently give them a free ride through the shuffle.
    return len(repr(value)) + _CONTAINER_OVERHEAD


def sizeof_pairs(pairs: Iterable[tuple[object, object]]) -> int:
    """Total serialized size of an iterable of (key, value) records."""
    return sum(sizeof(key) + sizeof(value) for key, value in pairs)
