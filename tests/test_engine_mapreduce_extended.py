"""Job chains and property-based MapReduce laws."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce import (
    MapReduceJob,
    MapReduceRuntime,
    Mapper,
    SumReducer,
)
from repro.engine.mapreduce.chain import JobChain
from repro.errors import InvalidPlanError


class TokenizeMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            yield word, 1


class UppercaseMapper(Mapper):
    def map(self, key, value, ctx):
        yield key.upper(), value


def splits_of(records, n):
    import numpy as np

    boundaries = np.linspace(0, len(records), n + 1, dtype=int)
    return [records[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:])]


@pytest.fixture
def runtime():
    return MapReduceRuntime(cluster=ClusterSpec(num_nodes=2, cores_per_node=2))


class TestJobChain:
    def test_two_stage_pipeline(self, runtime):
        docs = [(0, "apple banana"), (1, "apple")]
        chain = JobChain(runtime, name="wc")
        chain.then(
            MapReduceJob(name="count", mapper=TokenizeMapper(), reducer=SumReducer())
        ).then(
            MapReduceJob(name="upper", mapper=UppercaseMapper(), reducer=SumReducer())
        )
        output = dict(chain.run(splits_of(docs, 2)))
        assert output == {"APPLE": 2, "BANANA": 1}

    def test_intermediate_written_to_hdfs(self, runtime):
        docs = [(0, "x y"), (1, "x")]
        chain = JobChain(runtime, name="pipe")
        chain.then(
            MapReduceJob(name="count", mapper=TokenizeMapper(), reducer=SumReducer())
        ).then(MapReduceJob(name="identity", mapper=Mapper()))
        chain.run(splits_of(docs, 1))
        assert runtime.hdfs.exists("pipe/stage-0/count")
        first_job = runtime.metrics.by_name("count")[0]
        assert first_job.output_is_intermediate
        assert first_job.intermediate_bytes > 0

    def test_respects_explicit_output_path(self, runtime):
        docs = [(0, "a")]
        chain = JobChain(runtime)
        chain.then(
            MapReduceJob(
                name="count", mapper=TokenizeMapper(), reducer=SumReducer(),
                output_path="custom/place",
            )
        ).then(MapReduceJob(name="identity", mapper=Mapper()))
        chain.run(splits_of(docs, 1))
        assert runtime.hdfs.exists("custom/place")

    def test_empty_chain_rejected(self, runtime):
        with pytest.raises(InvalidPlanError):
            JobChain(runtime).run([[(0, "x")]])

    def test_jobs_property(self, runtime):
        chain = JobChain(runtime)
        job = MapReduceJob(name="j", mapper=Mapper())
        chain.then(job)
        assert chain.jobs == (job,)


class TestPropertyLaws:
    @settings(max_examples=25, deadline=None)
    @given(
        docs=st.lists(
            st.lists(st.sampled_from("abcdef"), min_size=1, max_size=8),
            min_size=1, max_size=15,
        ),
        n_splits=st.integers(min_value=1, max_value=4),
    )
    def test_wordcount_matches_counter(self, docs, n_splits):
        records = [(i, " ".join(words)) for i, words in enumerate(docs)]
        expected = Counter(word for words in docs for word in words)
        runtime = MapReduceRuntime(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        job = MapReduceJob(name="wc", mapper=TokenizeMapper(), reducer=SumReducer())
        result = dict(runtime.run(job, splits_of(records, n_splits)))
        assert result == dict(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        docs=st.lists(
            st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
            min_size=1, max_size=12,
        ),
        n_reducers=st.integers(min_value=1, max_value=5),
    )
    def test_combiner_and_reducer_count_invariance(self, docs, n_reducers):
        """Adding a combiner or changing reducer counts never changes output."""
        records = [(i, " ".join(words)) for i, words in enumerate(docs)]
        base_runtime = MapReduceRuntime()
        base = dict(
            base_runtime.run(
                MapReduceJob(name="wc", mapper=TokenizeMapper(), reducer=SumReducer()),
                splits_of(records, 2),
            )
        )
        varied_runtime = MapReduceRuntime()
        varied = dict(
            varied_runtime.run(
                MapReduceJob(
                    name="wc", mapper=TokenizeMapper(), reducer=SumReducer(),
                    combiner=SumReducer(), num_reducers=n_reducers,
                ),
                splits_of(records, 2),
            )
        )
        assert base == varied

    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_failure_injection_invariance(self, values, seed):
        records = [(i, v) for i, v in enumerate(values)]

        class Doubler(Mapper):
            def map(self, key, value, ctx):
                yield "sum", 2 * value

        job = MapReduceJob(name="double", mapper=Doubler(), reducer=SumReducer())
        reliable = dict(MapReduceRuntime().run(job, splits_of(records, 3)))
        flaky = dict(
            MapReduceRuntime(failure_rate=0.25, seed=seed).run(job, splits_of(records, 3))
        )
        assert flaky == reliable == {"sum": 2 * sum(values)}
