"""Evaluation metrics used in Section 5 of the paper."""

from repro.metrics.accuracy import (
    accuracy_from_error,
    ideal_accuracy,
    percent_of_ideal,
    reconstruction_error,
)
from repro.metrics.subspace import explained_variance_ratio, subspace_angle_degrees

__all__ = [
    "accuracy_from_error",
    "explained_variance_ratio",
    "ideal_accuracy",
    "percent_of_ideal",
    "reconstruction_error",
    "subspace_angle_degrees",
]
