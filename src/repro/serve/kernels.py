"""Row-stable batched inference kernels for the serving layer.

**The bitwise contract.**  The serving layer promises that micro-batching is
invisible: the answer for one request is bit-identical whether its rows were
computed alone or coalesced into a batch with a thousand neighbours, on any
executor.  A naive stacked ``(n, D) @ (D, d)`` gemm breaks that promise --
BLAS picks different kernels (and different reduction blockings) for
different ``m``, so row *i* of the batched product need not equal the
single-row product bit for bit.  These kernels therefore compute dense
products as ``np.matmul(rows[:, None, :], right)[:, 0]``: *n* independent
``1 x D`` products evaluated in one C-level call, each bitwise identical to
the same row pushed through :meth:`PCAModel.transform` on its own.  Sparse
CSR products are row-independent loops already and need no special casing.

Consequently every serve op is defined **row-wise**: ``serve(rows)`` equals
``vstack(model.op(row) for each row)`` exactly, which is also what makes
results independent of how the batcher happened to chunk a batch across
executor workers.

Dispatch: a batch is split into contiguous row chunks and run through the
PR 5 :class:`~repro.engine.exec.base.TaskExecutor` contract (serial /
threads / processes).  The task function is module-level and its payloads
are plain picklable arrays -- the projector is computed once on the driver
(cached on the model) and shipped with each chunk, so worker-side results
cannot depend on worker-side factorization order.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.model import PCAModel
from repro.engine.exec.base import TaskExecutor
from repro.errors import ShapeError

#: Ops the request layer exposes against a named model version.
OPS = ("transform", "project", "reconstruct", "score")

#: Default rows per executor task; small enough to spread a big batch over
#: workers, big enough that one task amortizes dispatch overhead.
DEFAULT_CHUNK_ROWS = 512


def row_stable_matmul(rows: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``rows @ right`` with per-row results independent of the batch size.

    Evaluated as ``n`` stacked ``1 x k`` products in one C-level ``matmul``
    call: bitwise identical to ``rows[i:i+1] @ right`` for every row, which
    a plain gemm does not guarantee.
    """
    return np.matmul(rows[:, None, :], right)[:, 0, :]


def _row_stable_centered_times(
    rows: Any, mean: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Row-stable ``(rows - 1*mean') @ right`` (cf. linalg.centered_times)."""
    if sp.issparse(rows):
        # CSR row products are independent per-row loops already.
        product = np.asarray(rows @ right)
    else:
        product = row_stable_matmul(np.asarray(rows, dtype=np.float64), right)
    return product - mean @ right


def _densify(rows: Any) -> np.ndarray:
    if sp.issparse(rows):
        return np.asarray(rows.todense(), dtype=np.float64)
    return np.asarray(rows, dtype=np.float64)


def apply_rows(
    op: str,
    rows: Any,
    mean: np.ndarray,
    components: np.ndarray,
    projector: np.ndarray,
) -> np.ndarray:
    """Apply one serve *op* to a stacked 2-D row block, row-stably.

    Args:
        op: one of :data:`OPS`.
        rows: ``(n, D)`` dense array or CSR matrix.
        mean: length-D training mean.
        components: ``D x d`` loading matrix (used by reconstruct/score).
        projector: the op's precomputed ``D x d`` projector --
            ``posterior_projector`` for transform, ``subspace_projector``
            for the rest.

    Returns:
        ``(n, d)`` latents for transform/project, ``(n, D)`` dense rows for
        reconstruct, length-n per-row squared reconstruction errors for
        score.
    """
    if op == "transform" or op == "project":
        return _row_stable_centered_times(rows, mean, projector)
    latent = _row_stable_centered_times(rows, mean, projector)
    reconstructed = row_stable_matmul(latent, components.T) + mean
    if op == "reconstruct":
        return reconstructed
    if op == "score":
        residual = _densify(rows) - reconstructed
        return np.einsum("ij,ij->i", residual, residual)
    raise ShapeError(f"unknown serve op {op!r}; expected one of {OPS}")


def reference_rows(model: PCAModel, op: str, rows: Any) -> np.ndarray:
    """The sequential single-row reference a batched result must match.

    Computes *op* one row at a time through the public ``PCAModel`` methods
    -- the ground truth for the bitwise-equivalence property tests and the
    load generator's verification pass.
    """
    outputs = []
    for i in range(rows.shape[0]):
        row = rows[i] if sp.issparse(rows) else rows[i : i + 1]
        if op == "transform":
            outputs.append(model.transform(row))
        elif op == "project":
            outputs.append(model.project(row))
        elif op == "reconstruct":
            outputs.append(model.reconstruct(row))
        elif op == "score":
            dense = _densify(row)
            residual = dense - model.reconstruct(row)
            outputs.append(np.einsum("ij,ij->i", residual, residual))
        else:
            raise ShapeError(f"unknown serve op {op!r}; expected one of {OPS}")
    return np.concatenate(outputs) if op == "score" else np.vstack(outputs)


def projector_for(model: PCAModel, op: str) -> np.ndarray:
    """The cached driver-side projector the *op* ships to workers."""
    if op == "transform":
        return model.posterior_projector
    return model.subspace_projector


def _apply_chunk(
    payload: tuple[str, Any, np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Executor task: apply one op to one contiguous row chunk.

    Module-level and pure -- no driver state, no clocks, no RNG -- so the
    EX001-EX005 executor-safety rules hold and a process pool can pickle
    it.  All matrices arrive in the payload.
    """
    op, rows, mean, components, projector = payload
    return apply_rows(op, rows, mean, components, projector)


def split_rows(rows: Any, chunk_rows: int) -> list[Any]:
    """Contiguous row chunks of at most *chunk_rows* each."""
    n = rows.shape[0]
    if n <= chunk_rows:
        return [rows]
    return [rows[start : start + chunk_rows] for start in range(0, n, chunk_rows)]


def run_batch(
    model: PCAModel,
    op: str,
    rows: Any,
    executor: TaskExecutor | None = None,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Apply *op* to a stacked batch through the executor layer.

    The batch is split into contiguous chunks (sized so every worker gets
    work, floored at :data:`DEFAULT_CHUNK_ROWS` rows) and dispatched via
    ``executor.run_tasks``; chunk results come back in index order and
    concatenate to the full batch result.  Chunking cannot change bits:
    every kernel is row-stable.
    """
    if op not in OPS:
        raise ShapeError(f"unknown serve op {op!r}; expected one of {OPS}")
    if rows.ndim != 2:
        raise ShapeError(f"serve batch must be 2-D, got {rows.ndim}-D")
    if rows.shape[1] != model.n_features:
        raise ShapeError(
            f"rows have {rows.shape[1]} columns but the model has "
            f"{model.n_features} features"
        )
    mean = model.mean
    components = model.components
    projector = projector_for(model, op)
    if executor is None or executor.serial:
        return apply_rows(op, rows, mean, components, projector)
    if chunk_rows is None:
        per_worker = -(-rows.shape[0] // max(1, executor.workers))
        chunk_rows = max(min(DEFAULT_CHUNK_ROWS, per_worker), 1)
    chunks = split_rows(rows, chunk_rows)
    if len(chunks) == 1:
        return apply_rows(op, rows, mean, components, projector)
    payloads = [(op, chunk, mean, components, projector) for chunk in chunks]
    results = executor.run_tasks(_apply_chunk, payloads, label=f"serve.{op}")
    return np.concatenate(results, axis=0)
