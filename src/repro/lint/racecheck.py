"""Dynamic race detection for the execute/commit protocol.

The static EX rules check one module at a time; this harness checks the
*running* system.  It wraps an engine's executor in an instrumented shadow,
records every access to driver-visible shared state (``BlockManager``,
``EngineMetrics``, fault counters, accumulators, the ``sizeof`` memo, the
lost-block set) with the identity of the task that made it, and builds a
happens-before relation from the execute/commit split:

- each ``run_tasks`` batch is one **epoch**; tasks inside an epoch are
  mutually concurrent (no ordering between them);
- driver code between epochs -- including the commit loop that replays task
  scopes in index order -- is ordered against every task, so its accesses
  can never race and are not recorded.

Any *write* to commit-ordered state from inside a task is therefore a
protocol violation on its own (the commit loop could interleave with it),
and two tasks touching the same key with at least one write is a race.  The
``sizeof`` memo gets a weaker, idempotent policy: concurrent writes are fine
as long as every task writes the same size for the same identity key --
exactly the property the identity-validated memoization relies on.

Process-pool note: instrumentation lives in driver-process memory, so the
checker shadows a ``processes`` executor with its in-process thread sibling
(``closure_executor()``).  That preserves the executor's concurrency
structure -- the property under test is the engines' scoped execute/commit
discipline, which is identical on both backends -- while keeping every
access observable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.engine import serde
from repro.engine.exec.base import TaskExecutor

#: Access policies, per watched object.
POLICY_COMMIT_ORDERED = "commit-ordered"  # in-task writes are violations
POLICY_IDEMPOTENT = "idempotent"  # in-task writes must agree on the value

#: Wildcard key: conflicts with every other key of the same object.
WILDCARD_KEY = "*"

#: Default policy per watched object label.  Everything driver-owned is
#: commit-ordered; the sizeof memo tolerates concurrent writes so long as
#: they agree on the value (identity-validated memoization).
DEFAULT_POLICIES: dict[str, str] = {
    "BlockManager": POLICY_COMMIT_ORDERED,
    "EngineMetrics": POLICY_COMMIT_ORDERED,
    "JobStats.faults": POLICY_COMMIT_ORDERED,
    "Accumulator": POLICY_COMMIT_ORDERED,
    "lost_blocks": POLICY_COMMIT_ORDERED,
    "sizeof_memo": POLICY_IDEMPOTENT,
}


@dataclass(frozen=True)
class Access:
    """One recorded touch of shared state by a running task."""

    epoch: int
    epoch_label: str
    task: int
    obj: str
    key: Any
    op: str  # "read" | "write"
    value: Any = None


@dataclass(frozen=True)
class RaceConflict:
    """One happens-before violation found by the analysis."""

    kind: str  # "unscoped-write" | "conflicting-write" | "race"
    obj: str
    key: Any
    epoch_label: str
    tasks: tuple[int, ...]
    detail: str

    def render(self) -> str:
        tasks = ",".join(str(task) for task in self.tasks)
        return (
            f"racecheck: {self.kind} on {self.obj}[{self.key!r}] "
            f"during {self.epoch_label!r} (tasks {tasks}): {self.detail}"
        )


@dataclass
class RaceReport:
    """The conflicts one checked run produced."""

    label: str
    conflicts: list[RaceConflict] = field(default_factory=list)
    accesses: int = 0

    @property
    def clean(self) -> bool:
        return not self.conflicts


class RaceRecorder:
    """Collects per-task accesses; thread-safe; analysis is offline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._accesses: list[Access] = []
        self._epoch = 0
        self._epoch_label = ""
        #: obj label -> policy (unknown labels default to commit-ordered)
        self.policies: dict[str, str] = dict(DEFAULT_POLICIES)

    # -- identity ---------------------------------------------------------

    def begin_epoch(self, label: str) -> int:
        with self._lock:
            self._epoch += 1
            self._epoch_label = label
            return self._epoch

    def enter_task(self, task: int) -> None:
        self._tls.task = task

    def exit_task(self) -> None:
        self._tls.task = None

    def current_task(self) -> int | None:
        return getattr(self._tls, "task", None)

    # -- recording --------------------------------------------------------

    def record(self, obj: str, key: Any, op: str, value: Any = None) -> None:
        """Record one access -- only when made from inside a task.

        Driver-side accesses (no active task) are ordered by the dispatch/
        join barriers against every task and by program order against each
        other, so they cannot participate in a race and are skipped.
        """
        task = self.current_task()
        if task is None:
            return
        with self._lock:
            self._accesses.append(
                Access(self._epoch, self._epoch_label, task, obj, key, op, value)
            )

    @property
    def accesses(self) -> list[Access]:
        with self._lock:
            return list(self._accesses)

    # -- analysis ---------------------------------------------------------

    def conflicts(self) -> list[RaceConflict]:
        """Apply the happens-before analysis to everything recorded."""
        found: list[RaceConflict] = []
        by_group: dict[tuple[int, str, Any], list[Access]] = {}
        wildcard: dict[tuple[int, str], list[Access]] = {}
        for access in self.accesses:
            if access.key == WILDCARD_KEY:
                wildcard.setdefault((access.epoch, access.obj), []).append(access)
            else:
                by_group.setdefault(
                    (access.epoch, access.obj, access.key), []
                ).append(access)

        def seen_key(group: list[Access]) -> tuple[str, Any, str]:
            first = group[0]
            return first.epoch_label, first.key, first.obj

        reported: set[tuple[str, str, Any, str]] = set()

        def emit(kind: str, group: list[Access], detail: str) -> None:
            first = group[0]
            dedup = (kind, first.obj, first.key, first.epoch_label)
            if dedup in reported:
                return
            reported.add(dedup)
            found.append(
                RaceConflict(
                    kind=kind,
                    obj=first.obj,
                    key=first.key,
                    epoch_label=first.epoch_label,
                    tasks=tuple(sorted({access.task for access in group})),
                    detail=detail,
                )
            )

        for group in by_group.values():
            obj = group[0].obj
            policy = self.policies.get(obj, POLICY_COMMIT_ORDERED)
            writes = [access for access in group if access.op == "write"]
            tasks = {access.task for access in group}
            if policy == POLICY_COMMIT_ORDERED:
                if writes:
                    emit(
                        "unscoped-write",
                        writes,
                        "a task wrote commit-ordered driver state directly; "
                        "it must stage the effect in its scope for ordered "
                        "commit",
                    )
                    if len(tasks) > 1:
                        emit(
                            "race",
                            group,
                            "concurrent tasks touched the same key with at "
                            "least one unordered write",
                        )
            elif policy == POLICY_IDEMPOTENT:
                values = {repr(access.value) for access in writes}
                if len(values) > 1 and len({w.task for w in writes}) > 1:
                    emit(
                        "conflicting-write",
                        writes,
                        f"concurrent tasks wrote differing values {sorted(values)} "
                        "for the same identity key (stale-id aliasing)",
                    )
        # A wildcard write (e.g. evict_matching with a predicate) conflicts
        # with any other task's access to the same object in the same epoch.
        for (epoch, obj), accesses in wildcard.items():
            emit_group = [a for a in accesses if a.op == "write"]
            if not emit_group:
                continue
            emit(
                "unscoped-write",
                emit_group,
                "a task performed a predicate-wide eviction on driver state",
            )
            others = [
                access
                for group_key, group in by_group.items()
                if group_key[0] == epoch and group_key[1] == obj
                for access in group
                if access.task not in {a.task for a in emit_group}
            ]
            if others:
                emit(
                    "race",
                    emit_group + others,
                    "a predicate-wide eviction raced with other tasks' "
                    "accesses to the same object",
                )
        found.sort(key=lambda c: (c.epoch_label, c.obj, repr(c.key), c.kind))
        return found


class RaceCheckExecutor(TaskExecutor):
    """Shadow executor: tags every task with its index for the recorder.

    Wraps an inner concurrent executor; a ``processes`` inner is replaced by
    its in-process thread sibling so the instrumented state stays observable
    (see the module docstring).
    """

    name = "racecheck"
    serial = False

    def __init__(self, inner: TaskExecutor, recorder: RaceRecorder):
        from repro.engine.exec.processes import ProcessPoolTaskExecutor

        if isinstance(inner, ProcessPoolTaskExecutor):
            inner = inner.closure_executor()
        super().__init__(workers=inner.workers)
        self.inner = inner
        self.recorder = recorder

    # The tagging wrapper is necessarily a closure over the recorder; the
    # inner executor is guaranteed in-process (__init__ swaps a processes
    # inner for its thread sibling), so it never meets a pickle pipe.
    def run_tasks(  # repro-lint: disable=EX002
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        label: str = "tasks",
    ) -> list[Any]:
        self.recorder.begin_epoch(label)
        recorder = self.recorder

        def tagged(indexed: tuple[int, Any]) -> Any:
            index, payload = indexed
            recorder.enter_task(index)
            try:
                return fn(payload)
            finally:
                recorder.exit_task()

        return self.inner.run_tasks(tagged, list(enumerate(payloads)), label=label)

    def closure_executor(self) -> TaskExecutor:
        return self

    def shutdown(self) -> None:
        self.inner.shutdown()
        super().shutdown()


class _WatchedSet(set):
    """A set that reports membership tests and mutations to the recorder."""

    def __init__(self, items: Iterator[Any], recorder: RaceRecorder, obj: str):
        super().__init__(items)
        self._recorder = recorder
        self._obj = obj

    def __contains__(self, key: Any) -> bool:
        self._recorder.record(self._obj, key, "read")
        return super().__contains__(key)

    def add(self, key: Any) -> None:
        self._recorder.record(self._obj, key, "write")
        super().add(key)

    def discard(self, key: Any) -> None:
        self._recorder.record(self._obj, key, "write")
        super().discard(key)

    def remove(self, key: Any) -> None:
        self._recorder.record(self._obj, key, "write")
        super().remove(key)

    def difference_update(self, *others: Any) -> None:
        for other in others:
            for key in other:
                self._recorder.record(self._obj, key, "write")
        super().difference_update(*others)


class RaceChecker:
    """Context manager: instrument one engine and collect its conflicts.

    Accepts a :class:`~repro.engine.spark.context.SparkContext` or a
    :class:`~repro.engine.mapreduce.runtime.MapReduceRuntime` (anything with
    an ``executor`` attribute).  While active:

    - the engine's executor is swapped for a :class:`RaceCheckExecutor`;
    - ``BlockManager`` puts/gets/evictions, ``EngineMetrics.record``,
      ``JobStats.count_fault``, and ``Accumulator._apply`` are patched
      class-wide to report to the recorder;
    - the ``sizeof`` memo reports through its observer hook;
    - a Spark context's lost-block set is wrapped to record membership
      tests and mutations.

    Everything is restored on exit; call :meth:`report` afterwards.
    """

    def __init__(self, engine: Any, label: str = "racecheck"):
        self.engine = engine
        self.label = label
        self.recorder = RaceRecorder()
        self._patches: list[tuple[Any, str, Any]] = []
        self._saved_executor: TaskExecutor | None = None
        self._saved_lost_blocks: set | None = None

    # -- instrumentation ---------------------------------------------------

    def _patch(self, owner: Any, name: str, wrapper_factory: Callable) -> None:
        original = getattr(owner, name)
        setattr(owner, name, wrapper_factory(original))
        self._patches.append((owner, name, original))

    def __enter__(self) -> "RaceChecker":
        from repro.engine.metrics import EngineMetrics, JobStats
        from repro.engine.spark.context import Accumulator, SparkContext
        from repro.engine.spark.memory import BlockManager

        recorder = self.recorder

        def wrap_put(original):
            def put(self, rdd_id, split, data, nbytes):
                recorder.record("BlockManager", (rdd_id, split), "write", nbytes)
                return original(self, rdd_id, split, data, nbytes)

            return put

        def wrap_get(original):
            def get(self, rdd_id, split):
                recorder.record("BlockManager", (rdd_id, split), "read")
                return original(self, rdd_id, split)

            return get

        def wrap_evict_matching(original):
            def evict_matching(self, predicate):
                recorder.record("BlockManager", WILDCARD_KEY, "write")
                return original(self, predicate)

            return evict_matching

        def wrap_record(original):
            def record(self, stats):
                recorder.record("EngineMetrics", "jobs", "write", stats.name)
                return original(self, stats)

            return record

        def wrap_count_fault(original):
            def count_fault(self, label):
                recorder.record("JobStats.faults", (id(self), label), "write")
                return original(self, label)

            return count_fault

        def wrap_apply(original):
            def _apply(self, update):
                recorder.record("Accumulator", id(self), "write")
                return original(self, update)

            return _apply

        self._patch(BlockManager, "put", wrap_put)
        self._patch(BlockManager, "get", wrap_get)
        self._patch(BlockManager, "evict_matching", wrap_evict_matching)
        self._patch(EngineMetrics, "record", wrap_record)
        self._patch(JobStats, "count_fault", wrap_count_fault)
        self._patch(Accumulator, "_apply", wrap_apply)
        serde.set_sizeof_observer(
            lambda key, size, hit: recorder.record(
                "sizeof_memo", key, "read" if hit else "write", size
            )
        )

        self._saved_executor = self.engine.executor
        self.engine.executor = RaceCheckExecutor(self._saved_executor, recorder)

        if isinstance(self.engine, SparkContext):
            self._saved_lost_blocks = self.engine._lost_blocks
            self.engine._lost_blocks = _WatchedSet(
                self._saved_lost_blocks, recorder, "lost_blocks"
            )
        return self

    def __exit__(self, *exc_info: Any) -> None:
        serde.set_sizeof_observer(None)
        for owner, name, original in reversed(self._patches):
            setattr(owner, name, original)
        self._patches.clear()
        if self._saved_executor is not None:
            # The shadow only borrowed the inner executor: hand it back
            # without shutting it down.
            self.engine.executor = self._saved_executor
            self._saved_executor = None
        if self._saved_lost_blocks is not None:
            self._saved_lost_blocks.clear()
            self._saved_lost_blocks.update(self.engine._lost_blocks)
            self.engine._lost_blocks = self._saved_lost_blocks
            self._saved_lost_blocks = None

    # -- results -----------------------------------------------------------

    def report(self) -> RaceReport:
        return RaceReport(
            label=self.label,
            conflicts=self.recorder.conflicts(),
            accesses=len(self.recorder.accesses),
        )


def run_spca_racecheck(
    executor_name: str = "threads",
    workers: int = 4,
    n_samples: int = 96,
    n_features: int = 12,
    n_components: int = 3,
    max_iterations: int = 3,
) -> list[RaceReport]:
    """Run a small sPCA fit per engine under the race checker.

    The CLI's ``--racecheck`` smoke and the CI leg both call this; a clean
    pass means the scoped execute/commit discipline held for every shared
    object the checker watches, on a fit exercising caching, broadcast,
    accumulators, shuffles, and the executor dispatch path.
    """
    import numpy as np

    from repro.backends.mapreduce import MapReduceBackend
    from repro.backends.spark import SparkBackend
    from repro.core import SPCA, SPCAConfig
    from repro.engine.exec import make_executor
    from repro.engine.mapreduce.runtime import MapReduceRuntime
    from repro.engine.spark.context import SparkContext

    rng = np.random.default_rng(7)
    data = rng.normal(size=(n_samples, n_features)) @ rng.normal(
        size=(n_features, n_features)
    )
    config = SPCAConfig(
        n_components=n_components, max_iterations=max_iterations, seed=0
    )

    reports: list[RaceReport] = []

    runtime = MapReduceRuntime(executor=make_executor(executor_name, workers))
    try:
        with RaceChecker(runtime, label=f"mapreduce/{executor_name}") as checker:
            SPCA(config, MapReduceBackend(config, runtime=runtime)).fit(data)
        reports.append(checker.report())
    finally:
        runtime.executor.shutdown()

    # Worker residency adds cross-iteration shared state (the pinned splits
    # every epoch's tasks resolve concurrently); check the fit again with
    # pinning on.  Pins land on the shadow executor, so they are released
    # inside the checker context, before the shadow is discarded.
    runtime = MapReduceRuntime(executor=make_executor(executor_name, workers))
    try:
        with RaceChecker(
            runtime, label=f"mapreduce-resident/{executor_name}"
        ) as checker:
            backend = MapReduceBackend(
                config, runtime=runtime, worker_resident=True
            )
            SPCA(config, backend).fit(data)
            backend._unpin_resident()
        reports.append(checker.report())
    finally:
        runtime.executor.shutdown()

    context = SparkContext(executor=make_executor(executor_name, workers))
    try:
        with RaceChecker(context, label=f"spark/{executor_name}") as checker:
            SPCA(config, SparkBackend(config, context=context)).fit(data)
        reports.append(checker.report())
    finally:
        context.executor.shutdown()

    return reports
