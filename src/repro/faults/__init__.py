"""repro.faults: deterministic fault-injection plans for the engine simulators.

A :class:`FaultPlan` is a typed, serializable schedule of failures -- task
kills, stragglers, shuffle fetch failures, executor losses, driver memory
caps -- that both engines consult at their existing failure points through a
pluggable :class:`FaultInjector`.  :class:`RandomFaults` reproduces the
historical ``failure_rate``/``seed`` coin flip bit-for-bit;
:class:`PlannedFaults` replays a plan deterministically.  See
``docs/fault_tolerance.md``.

Typical use::

    from repro.faults import FaultPlan, KillTask, PlannedFaults
    from repro.engine.spark.context import SparkContext

    plan = FaultPlan([KillTask(job="YtXJob", task=0, attempts=2)])
    sc = SparkContext(faults=PlannedFaults(plan))
"""

from repro.faults.injector import (
    NO_DIRECTIVES,
    FaultInjector,
    FaultSite,
    PlannedFaults,
    RandomFaults,
    StageDirectives,
)
from repro.faults.plan import (
    TASK_KINDS,
    DriverMemoryCap,
    ExecutorLoss,
    FaultEvent,
    FaultPlan,
    FetchFailure,
    KillTask,
    Straggler,
)

__all__ = [
    "DriverMemoryCap",
    "ExecutorLoss",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "FetchFailure",
    "KillTask",
    "NO_DIRECTIVES",
    "PlannedFaults",
    "RandomFaults",
    "StageDirectives",
    "Straggler",
    "TASK_KINDS",
]
