"""Fault plans: schema, JSON round trip, injector semantics, chain retry."""

import numpy as np
import pytest

from repro.engine.mapreduce import (
    JobChain,
    MapReduceJob,
    MapReduceRuntime,
    Mapper,
    SumReducer,
)
from repro.errors import InvalidPlanError, JobFailedError
from repro.faults import (
    DriverMemoryCap,
    ExecutorLoss,
    FaultPlan,
    FaultSite,
    FetchFailure,
    KillTask,
    PlannedFaults,
    RandomFaults,
    Straggler,
)

ALL_EVENTS = (
    KillTask(job="YtXJob", kind="map", task=2, attempts=3, occurrence=1),
    Straggler(job="mean*", factor=4.5, occurrence=None),
    FetchFailure(job="ss3Job", task=None, attempts=1),
    ExecutorLoss(job="FnormJob", executor=3),
    DriverMemoryCap(job="collect", limit_bytes=1024),
)


class WordCountMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            yield word, 1


def splits_of(records, n):
    boundaries = np.linspace(0, len(records), n + 1, dtype=int)
    return [records[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:])]


DOCS = [(0, "alpha beta"), (1, "beta gamma"), (2, "alpha gamma")]


def word_count_job(**kwargs):
    return MapReduceJob(
        name="wordcount", mapper=WordCountMapper(), reducer=SumReducer(), **kwargs
    )


class TestPlanSchema:
    def test_json_round_trip_preserves_every_event_type(self):
        plan = FaultPlan(events=ALL_EVENTS)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(events=ALL_EVENTS)
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_empty_plan_is_valid(self):
        assert FaultPlan().events == ()
        assert FaultPlan.from_json('{"events": []}') == FaultPlan()

    def test_events_coerced_to_tuple(self):
        plan = FaultPlan(events=[KillTask(job="a")])
        assert isinstance(plan.events, tuple)

    @pytest.mark.parametrize(
        "event",
        [
            KillTask(job=""),
            KillTask(job="a", kind="mapper"),
            KillTask(job="a", task=-1),
            KillTask(job="a", attempts=0),
            KillTask(job="a", occurrence=-1),
            Straggler(job="a", factor=0.0),
            FetchFailure(job="a", attempts=0),
            ExecutorLoss(job="a", executor=-1),
            DriverMemoryCap(job="a", limit_bytes=0),
        ],
    )
    def test_malformed_events_rejected(self, event):
        with pytest.raises(InvalidPlanError):
            FaultPlan(events=(event,))

    def test_non_event_rejected(self):
        with pytest.raises(InvalidPlanError, match="not a fault event"):
            FaultPlan(events=("kill it",))

    @pytest.mark.parametrize(
        "text, match",
        [
            ("not json", "malformed"),
            ("[]", "'events'"),
            ('{"events": [{"job": "a"}]}', "'type'"),
            ('{"events": [{"type": "explode", "job": "a"}]}', "unknown fault type"),
            (
                '{"events": [{"type": "kill_task", "job": "a", "blast": 9}]}',
                "unknown fields",
            ),
            ('{"version": 99, "events": []}', "newer"),
        ],
    )
    def test_malformed_json_rejected(self, text, match):
        with pytest.raises(InvalidPlanError, match=match):
            FaultPlan.from_json(text)

    def test_check_recoverable(self):
        survivable = FaultPlan(events=(KillTask(job="a", attempts=3),))
        fatal = FaultPlan(events=(FetchFailure(job="a", attempts=4),))
        assert survivable.check_recoverable(max_task_attempts=4)
        assert not fatal.check_recoverable(max_task_attempts=4)
        assert not survivable.check_recoverable(max_task_attempts=3)


class TestRandomFaults:
    def test_bit_compatible_with_raw_generator_stream(self):
        """fail() must consume exactly the draws the old inline code made."""
        rate, seed = 0.3, 1234
        injector = RandomFaults(rate, seed)
        site = FaultSite("mapreduce", "job", "map", 0, 1)
        labels = [injector.fail(site) for _ in range(200)]
        reference = np.random.default_rng(seed)
        expected = [
            None if reference.random() >= rate else "random" for _ in range(200)
        ]
        assert labels == expected

    def test_zero_rate_still_draws(self):
        """Rate 0 must advance the generator (the historical behaviour)."""
        injector = RandomFaults(0.0, seed=7)
        site = FaultSite("spark", "job", "task", 0, 1)
        for _ in range(5):
            assert injector.fail(site) is None
        reference = np.random.default_rng(7)
        for _ in range(5):
            reference.random()
        assert injector._rng.random() == reference.random()

    def test_time_factor_never_draws(self):
        injector = RandomFaults(0.5, seed=0)
        site = FaultSite("spark", "job", "task", 0, 1)
        assert injector.time_factor(site) == 1.0
        assert injector._rng.random() == np.random.default_rng(0).random()

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(InvalidPlanError):
            RandomFaults(rate)


class TestPlannedFaults:
    def site(self, job="jobA", kind="map", task=0, attempt=1, engine="mapreduce"):
        return FaultSite(engine, job, kind, task, attempt)

    def test_kill_strikes_only_configured_attempts(self):
        injector = PlannedFaults(FaultPlan(events=(KillTask(job="jobA", attempts=2),)))
        injector.begin_job("mapreduce", "jobA")
        assert injector.fail(self.site(attempt=1)) == "kill_task"
        assert injector.fail(self.site(attempt=2)) == "kill_task"
        assert injector.fail(self.site(attempt=3)) is None

    def test_kind_and_task_filters(self):
        plan = FaultPlan(events=(KillTask(job="jobA", kind="reduce", task=1),))
        injector = PlannedFaults(plan)
        injector.begin_job("mapreduce", "jobA")
        assert injector.fail(self.site(kind="map", task=1)) is None
        assert injector.fail(self.site(kind="reduce", task=0)) is None
        assert injector.fail(self.site(kind="reduce", task=1)) == "kill_task"

    def test_occurrence_counts_per_event_name_matches(self):
        plan = FaultPlan(events=(KillTask(job="YtXJob", occurrence=1),))
        injector = PlannedFaults(plan)
        injector.begin_job("mapreduce", "YtXJob")  # occurrence 0: spared
        assert injector.fail(self.site(job="YtXJob")) is None
        injector.begin_job("mapreduce", "meanJob")  # different name: not counted
        injector.begin_job("mapreduce", "YtXJob")  # occurrence 1: struck
        assert injector.fail(self.site(job="YtXJob")) == "kill_task"
        injector.begin_job("mapreduce", "YtXJob")  # occurrence 2: spared again
        assert injector.fail(self.site(job="YtXJob")) is None

    def test_occurrence_none_strikes_every_run(self):
        plan = FaultPlan(events=(KillTask(job="jobA", occurrence=None),))
        injector = PlannedFaults(plan)
        for _ in range(3):
            injector.begin_job("mapreduce", "jobA")
            assert injector.fail(self.site()) == "kill_task"

    def test_glob_pattern_matching(self):
        injector = PlannedFaults(
            FaultPlan(events=(Straggler(job="*Job", factor=2.0, occurrence=None),))
        )
        injector.begin_job("mapreduce", "meanJob")
        assert injector.time_factor(self.site(job="meanJob")) == 2.0
        injector.begin_job("mapreduce", "wordcount")
        assert injector.time_factor(self.site(job="wordcount")) == 1.0

    def test_stragglers_compound(self):
        plan = FaultPlan(
            events=(
                Straggler(job="jobA", factor=2.0),
                Straggler(job="jobA", factor=3.0),
            )
        )
        injector = PlannedFaults(plan)
        injector.begin_job("mapreduce", "jobA")
        assert injector.time_factor(self.site()) == 6.0

    def test_fetch_failure_reduce_side_only_on_mapreduce(self):
        injector = PlannedFaults(FaultPlan(events=(FetchFailure(job="jobA"),)))
        injector.begin_job("mapreduce", "jobA")
        assert injector.fail(self.site(kind="map")) is None
        assert injector.fail(self.site(kind="reduce")) == "fetch_failure"
        injector = PlannedFaults(FaultPlan(events=(FetchFailure(job="jobA"),)))
        injector.begin_job("spark", "jobA")
        assert injector.fail(self.site(kind="task", engine="spark")) == "fetch_failure"

    def test_stage_directives_spark_only(self):
        plan = FaultPlan(
            events=(
                ExecutorLoss(job="jobA", executor=2),
                DriverMemoryCap(job="jobA", limit_bytes=512),
            )
        )
        injector = PlannedFaults(plan)
        directives = injector.begin_job("mapreduce", "jobA")
        assert directives.executor_losses == ()
        assert directives.driver_memory_cap is None
        injector = PlannedFaults(plan)
        directives = injector.begin_job("spark", "jobA")
        assert directives.executor_losses == (2,)
        assert directives.driver_memory_cap == 512


class TestRuntimeIntegration:
    def test_planned_kill_retries_and_counts_fault(self):
        plan = FaultPlan(events=(KillTask(job="wordcount", kind="map", task=0, attempts=2),))
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        output = dict(runtime.run(word_count_job(), splits_of(DOCS, 2)))
        assert output["alpha"] == 2
        stats = runtime.metrics.jobs[0]
        assert stats.task_retries == 2
        assert stats.faults == {"kill_task": 2}
        assert stats.recovery_sim_seconds > 0

    def test_unrecoverable_kill_aborts_job(self):
        plan = FaultPlan(events=(KillTask(job="wordcount", attempts=4),))
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        with pytest.raises(JobFailedError):
            runtime.run(word_count_job(), splits_of(DOCS, 2))

    def test_straggler_slows_timeline_without_changing_results(self):
        records = splits_of(DOCS, 2)
        plain = MapReduceRuntime()
        expected = dict(plain.run(word_count_job(), records))
        plan = FaultPlan(
            events=(Straggler(job="wordcount", factor=50.0, occurrence=None),)
        )
        slowed = MapReduceRuntime(faults=PlannedFaults(plan))
        assert dict(slowed.run(word_count_job(), records)) == expected
        assert slowed.metrics.jobs[0].faults.get("straggler", 0) > 0

    def test_counters_commit_once_despite_retries(self):
        class CountingMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.increment("records")
                yield key, value

        plan = FaultPlan(
            events=(KillTask(job="count", kind="map", attempts=2, occurrence=None),)
        )
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        records = [(i, i) for i in range(6)]
        job = MapReduceJob(name="count", mapper=CountingMapper(), reducer=SumReducer())
        runtime.run(job, splits_of(records, 3))
        assert runtime.metrics.jobs[0].counters["records"] == 6


class TestJobChainRetry:
    def make_chain(self, runtime, **kwargs):
        return JobChain(runtime, name="pipeline", **kwargs).then(word_count_job())

    def test_chain_resubmits_failed_job_with_backoff(self):
        # Kill all 4 attempts of the first submission only; the chain's
        # second submission (occurrence 1) runs clean.
        plan = FaultPlan(events=(KillTask(job="wordcount", attempts=4, occurrence=0),))
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        chain = self.make_chain(
            runtime, max_job_attempts=2, backoff_base_s=10.0, backoff_factor=2.0
        )
        output = dict(chain.run(splits_of(DOCS, 2)))
        assert output["alpha"] == 2
        backoffs = [j for j in runtime.metrics.jobs if j.name.endswith("[backoff]")]
        assert len(backoffs) == 1
        assert backoffs[0].sim_seconds == 10.0
        assert backoffs[0].faults == {"job_retry": 1}

    def test_backoff_grows_exponentially(self):
        plan = FaultPlan(
            events=(
                KillTask(job="wordcount", attempts=4, occurrence=0),
                KillTask(job="wordcount", attempts=4, occurrence=1),
            )
        )
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        chain = self.make_chain(
            runtime, max_job_attempts=3, backoff_base_s=5.0, backoff_factor=3.0
        )
        chain.run(splits_of(DOCS, 2))
        waits = [
            j.sim_seconds for j in runtime.metrics.jobs
            if j.name.endswith("[backoff]")
        ]
        assert waits == [5.0, 15.0]

    def test_exhausted_job_attempts_propagate(self):
        plan = FaultPlan(
            events=(KillTask(job="wordcount", attempts=4, occurrence=None),)
        )
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        chain = self.make_chain(runtime, max_job_attempts=2)
        with pytest.raises(JobFailedError):
            chain.run(splits_of(DOCS, 2))

    def test_partial_output_cleared_before_resubmission(self):
        class FlakyWriterMapper(Mapper):
            def map(self, key, value, ctx):
                yield key, value

        plan = FaultPlan(
            events=(KillTask(job="writer", kind="reduce", attempts=4, occurrence=0),)
        )
        runtime = MapReduceRuntime(faults=PlannedFaults(plan))
        job = MapReduceJob(
            name="writer", mapper=FlakyWriterMapper(), reducer=SumReducer(),
            output_path="out/final",
        )
        chain = JobChain(runtime, max_job_attempts=2).then(job)
        chain.run(splits_of([(i, 1) for i in range(4)], 2))
        assert runtime.hdfs.exists("out/final")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_job_attempts": 0},
            {"backoff_base_s": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_chain_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidPlanError):
            JobChain(MapReduceRuntime(), **kwargs)
