"""Trace analysis: critical paths, straggler attribution, trace diffs.

The trace answers *what ran when*; this module answers the evaluation
questions the paper's Tables 1-4 and Figures 6-8 are built on:

- :func:`critical_path` -- which chain of spans bounds the simulated end
  time of a run (or any subtree).  Time not covered by any child is
  attributed to the parent as *self time*: for job spans that is scheduler
  overhead, for the run span it is uninstrumented driver compute between
  jobs (the d x d / D x d local algebra of Algorithm 4).
- :func:`straggler_report` -- per-phase partition skew: max vs median task
  duration, and the concrete task spans that exceed the straggler
  threshold (the quantity speculative execution exists to bound).
- :func:`diff_traces` -- per-job-name and per-phase-name comparison of two
  traces, the tool for interpreting BENCH_3/BENCH_5 regressions.

Everything operates on the **simulated clock** (``t0``/``dur``), the clock
the engine's cost model and ``EngineMetrics`` reconcile on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.obs.export import TraceData
from repro.obs.report import summarize

#: slack tolerated when matching child end times to the parent's cursor
#: (simulated times come from float sums; exact equality is the norm)
_EPS = 1e-9


@dataclass
class PathSegment:
    """One interval of the critical path.

    ``self_time`` is True when the interval is attributed to the span
    itself (no child covered it) rather than to a deeper span.
    """

    span_id: int
    kind: str
    name: str
    start: float
    end: float
    self_time: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The chain of spans bounding one subtree's simulated duration."""

    root_id: int
    root_name: str
    total: float
    segments: list[PathSegment] = field(default_factory=list)

    def by_kind(self) -> "OrderedDict[str, float]":
        """Critical-path seconds aggregated by span kind (self time only)."""
        totals: OrderedDict[str, float] = OrderedDict()
        for segment in self.segments:
            key = f"{segment.kind} (self)" if segment.self_time else segment.kind
            totals[key] = totals.get(key, 0.0) + segment.duration
        return OrderedDict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def by_name(self) -> "OrderedDict[str, float]":
        """Critical-path seconds aggregated by span name."""
        totals: OrderedDict[str, float] = OrderedDict()
        for segment in self.segments:
            totals[segment.name] = totals.get(segment.name, 0.0) + segment.duration
        return OrderedDict(sorted(totals.items(), key=lambda kv: -kv[1]))


def _children_index(trace: TraceData) -> dict[int | None, list[Any]]:
    children: dict[int | None, list[Any]] = {}
    for span in trace.spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def _pick_root(trace: TraceData) -> Any | None:
    roots = [span for span in trace.spans if span.parent_id is None]
    if not roots:
        return None
    runs = [span for span in roots if span.kind == "run"]
    candidates = runs or roots
    return max(candidates, key=lambda span: span.dur)


def critical_path(trace: TraceData, root_id: int | None = None) -> CriticalPath | None:
    """Extract the critical path of *trace* (or of the subtree at *root_id*).

    Walks backwards from the root's end: at each cursor position the child
    ending latest (within tolerance, at or before the cursor) owns the
    interval back to its own start; gaps no child covers become the
    parent's self time.  Returns None for a trace with no spans.
    """
    if root_id is None:
        root = _pick_root(trace)
    else:
        root = next((s for s in trace.spans if s.span_id == root_id), None)
    if root is None:
        return None
    children = _children_index(trace)
    segments: list[PathSegment] = []

    def walk(span: Any, end: float) -> None:
        cursor = end
        kids = sorted(
            children.get(span.span_id, ()),
            key=lambda child: child.t0 + child.dur,
            reverse=True,
        )
        for child in kids:
            child_end = child.t0 + child.dur
            if child_end > cursor + _EPS or child_end <= span.t0 + _EPS:
                continue
            if cursor - child_end > _EPS:
                segments.append(
                    PathSegment(span.span_id, span.kind, span.name,
                                child_end, cursor, self_time=True)
                )
            walk(child, child_end)
            cursor = child.t0
            if cursor <= span.t0 + _EPS:
                break
        if cursor - span.t0 > _EPS:
            segments.append(
                PathSegment(span.span_id, span.kind, span.name,
                            span.t0, cursor, self_time=True)
            )
        if not children.get(span.span_id):
            # A leaf owns its whole interval outright (replace the self-time
            # marker so leaves read as real work, not gaps).
            if segments and segments[-1].span_id == span.span_id:
                segments[-1].self_time = False

    walk(root, root.t0 + root.dur)
    segments.reverse()
    return CriticalPath(
        root_id=root.span_id,
        root_name=root.name,
        total=root.dur,
        segments=segments,
    )


def iteration_critical_paths(trace: TraceData) -> "OrderedDict[int, CriticalPath]":
    """One critical path per EM iteration span, keyed by iteration index."""
    paths: OrderedDict[int, CriticalPath] = OrderedDict()
    for span in trace.spans:
        if span.kind != "iteration":
            continue
        path = critical_path(trace, root_id=span.span_id)
        if path is not None:
            paths[int(span.attrs.get("index", span.span_id))] = path
    return paths


# -- straggler / partition-skew attribution ---------------------------------


@dataclass
class PhaseSkew:
    """Task-duration skew within one phase span."""

    phase_id: int
    phase_name: str
    job_name: str
    n_tasks: int
    max_s: float
    median_s: float
    mean_s: float
    stragglers: list[tuple[str, float, int | None]] = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        """max / mean task duration: 1.0 is perfectly balanced."""
        return self.max_s / self.mean_s if self.mean_s > 0 else 1.0

    @property
    def skew(self) -> float:
        """max / median task duration (robust to one-sided tails)."""
        return self.max_s / self.median_s if self.median_s > 0 else 1.0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    middle = n // 2
    if n % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def straggler_report(
    trace: TraceData, threshold: float = 1.5, min_tasks: int = 2
) -> list[PhaseSkew]:
    """Per-phase skew, worst first.

    A task is a straggler when its duration exceeds ``threshold`` times the
    phase median -- the same criterion the engines' speculative execution
    uses.  Phases with fewer than *min_tasks* task spans are skipped (no
    distribution to skew).
    """
    by_id = {span.span_id: span for span in trace.spans}
    tasks_by_phase: dict[int, list[Any]] = {}
    for span in trace.spans:
        if span.kind == "task" and span.parent_id is not None:
            tasks_by_phase.setdefault(span.parent_id, []).append(span)
    report: list[PhaseSkew] = []
    for phase_id, tasks in tasks_by_phase.items():
        if len(tasks) < min_tasks:
            continue
        phase = by_id.get(phase_id)
        if phase is None:
            continue
        job = by_id.get(phase.parent_id) if phase.parent_id is not None else None
        durations = [task.dur for task in tasks]
        median = _median(durations)
        skew = PhaseSkew(
            phase_id=phase_id,
            phase_name=phase.name,
            job_name=job.name if job is not None else "?",
            n_tasks=len(tasks),
            max_s=max(durations),
            median_s=median,
            mean_s=sum(durations) / len(durations),
            stragglers=[
                (task.name, task.dur, task.track)
                for task in tasks
                if median > 0 and task.dur > threshold * median
            ],
        )
        report.append(skew)
    report.sort(key=lambda item: -item.imbalance)
    return report


# -- trace diff --------------------------------------------------------------

_DIFF_BYTE_KEYS = ("shuffle_bytes", "intermediate_bytes",
                   "hdfs_read_bytes", "hdfs_write_bytes", "broadcast_bytes")


@dataclass
class DiffRow:
    """One compared quantity: baseline vs current."""

    name: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def ratio(self) -> float | None:
        """current / baseline; None when the baseline is zero."""
        if self.baseline == 0:
            return None
        return self.current / self.baseline


@dataclass
class TraceDiff:
    """Structured comparison of two traces (the ``trace diff`` payload)."""

    jobs: list[DiffRow] = field(default_factory=list)
    phases: list[DiffRow] = field(default_factory=list)
    totals: list[DiffRow] = field(default_factory=list)

    def regressions(self, threshold: float = 0.10) -> list[DiffRow]:
        """Rows whose simulated time grew by more than *threshold* (10%)."""
        flagged: list[DiffRow] = []
        for row in [*self.jobs, *self.phases, *self.totals]:
            if row.ratio is not None and row.ratio > 1.0 + threshold:
                flagged.append(row)
            elif row.ratio is None and row.current > 0:
                flagged.append(row)
        return flagged


def diff_traces(baseline: TraceData, current: TraceData) -> TraceDiff:
    """Compare per-job-name / per-phase-name simulated seconds and bytes."""
    base = summarize(baseline)
    cur = summarize(current)
    diff = TraceDiff()
    for name in OrderedDict.fromkeys([*base.by_job_name, *cur.by_job_name]):
        diff.jobs.append(
            DiffRow(
                name=f"job:{name}",
                baseline=base.by_job_name.get(name, {}).get("sim_seconds", 0.0),
                current=cur.by_job_name.get(name, {}).get("sim_seconds", 0.0),
            )
        )
    for name in OrderedDict.fromkeys([*base.by_phase_name, *cur.by_phase_name]):
        diff.phases.append(
            DiffRow(
                name=f"phase:{name}",
                baseline=base.by_phase_name.get(name, {}).get("sim_seconds", 0.0),
                current=cur.by_phase_name.get(name, {}).get("sim_seconds", 0.0),
            )
        )
    diff.totals.append(
        DiffRow("total:sim_seconds", base.total_sim_seconds, cur.total_sim_seconds)
    )
    diff.totals.append(DiffRow("total:jobs", base.n_jobs, cur.n_jobs))
    diff.totals.append(
        DiffRow("total:task_retries", base.total_task_retries, cur.total_task_retries)
    )
    for key in _DIFF_BYTE_KEYS:
        diff.totals.append(
            DiffRow(f"total:{key}", base.totals.get(key, 0), cur.totals.get(key, 0))
        )
    return diff


# -- text rendering ----------------------------------------------------------


def format_critical_path(path: CriticalPath | None, limit: int = 40) -> str:
    """The critical-path chain plus its by-kind / by-name aggregation."""
    if path is None:
        return "(no spans in trace)"
    lines = [f"critical path of {path.root_name}  (total {path.total:.3f} sim s)"]
    shown = path.segments if len(path.segments) <= limit else path.segments[:limit]
    for segment in shown:
        marker = " (self)" if segment.self_time else ""
        lines.append(
            f"  {segment.start:>10.3f} -> {segment.end:>10.3f}"
            f"  {segment.duration:>9.3f}s  {segment.kind:<9} {segment.name}{marker}"
        )
    if len(path.segments) > limit:
        lines.append(f"  ... {len(path.segments) - limit} more segments")
    lines.append("by kind:")
    for kind, seconds in path.by_kind().items():
        share = seconds / path.total if path.total else 0.0
        lines.append(f"  {kind:<16}{seconds:>10.3f}s{share:>8.1%}")
    lines.append("top contributors:")
    for name, seconds in list(path.by_name().items())[:8]:
        share = seconds / path.total if path.total else 0.0
        lines.append(f"  {name:<36}{seconds:>10.3f}s{share:>8.1%}")
    return "\n".join(lines)


def format_stragglers(report: list[PhaseSkew], limit: int = 12) -> str:
    """Straggler/skew table, worst imbalance first."""
    if not report:
        return "(no phases with enough task spans)"
    lines = [
        f"{'phase':<26}{'job':<22}{'tasks':>6}{'max s':>10}"
        f"{'median s':>10}{'max/med':>9}{'max/mean':>9}"
    ]
    for skew in report[:limit]:
        lines.append(
            f"{skew.phase_name:<26}{skew.job_name:<22}{skew.n_tasks:>6}"
            f"{skew.max_s:>10.3f}{skew.median_s:>10.3f}"
            f"{skew.skew:>9.2f}{skew.imbalance:>9.2f}"
        )
        for name, duration, slot in skew.stragglers[:3]:
            where = f"slot {slot}" if slot is not None else "?"
            lines.append(f"    straggler: {name} ({duration:.3f}s on {where})")
    if len(report) > limit:
        lines.append(f"... {len(report) - limit} more phases")
    return "\n".join(lines)


def format_diff(diff: TraceDiff, threshold: float = 0.10) -> str:
    """Side-by-side diff table; rows past *threshold* are flagged with '!'."""
    lines = [
        f"{'':<2}{'quantity':<34}{'baseline':>14}{'current':>14}"
        f"{'delta':>14}{'ratio':>8}"
    ]

    def render(rows: list[DiffRow]) -> None:
        for row in rows:
            ratio = row.ratio
            flag = " "
            if (ratio is not None and abs(ratio - 1.0) > threshold) or (
                ratio is None and row.current > 0
            ):
                flag = "!"
            if ratio is not None:
                ratio_cell = f"{ratio:.3f}"
            else:
                ratio_cell = "new" if row.current > 0 else "-"
            lines.append(
                f"{flag:<2}{row.name:<34}{row.baseline:>14.3f}"
                f"{row.current:>14.3f}{row.delta:>+14.3f}{ratio_cell:>8}"
            )

    render(diff.jobs)
    render(diff.phases)
    render(diff.totals)
    regressions = diff.regressions(threshold)
    if regressions:
        lines.append(
            f"{len(regressions)} quantity(ies) regressed beyond "
            f"{threshold:.0%}: " + ", ".join(row.name for row in regressions)
        )
    else:
        lines.append(f"no regressions beyond {threshold:.0%}")
    return "\n".join(lines)
