"""Smoke test for the perf harness: quick shapes, schema only.

Asserts structure and the batch-wins-at-fine-granularity invariant on tiny
inputs; never absolute times, so it cannot flake on slow CI machines.  The
one exception is the multi-core speedup floor, which is explicitly gated on
``os.cpu_count() >= 4`` -- a single-core runner cannot show parallelism and
the test must not pretend it can.
"""

import json
import os

import pytest

from perf.harness import (
    BENCH_NAME,
    EXEC_BENCH_NAME,
    run_executor_suite,
    run_suite,
    summarize,
    summarize_executor,
    traced_quick_fit,
    validate,
    validate_executor,
)


@pytest.fixture(scope="module")
def result():
    return run_suite(quick=True, repeats=1)


@pytest.fixture(scope="module")
def exec_result():
    return run_executor_suite(quick=True, repeats=1)


def test_quick_suite_passes_validation(result):
    validate(result)
    assert result["bench"] == BENCH_NAME
    assert result["quick"] is True


def test_result_is_json_serializable(result):
    parsed = json.loads(json.dumps(result))
    validate(parsed)


def test_covers_both_backends(result):
    backends = {entry["backend"] for entry in result["end_to_end"]}
    assert backends == {"mapreduce", "spark"}


def test_ops_cover_the_pipeline_hot_spots(result):
    names = {op["name"] for op in result["ops"]}
    assert names == {
        "shuffle_partitioning",
        "sizeof_memoization",
        "map_task_dispatch",
    }


def test_summary_renders(result):
    text = summarize(result)
    assert BENCH_NAME in text
    assert "mapreduce" in text


def test_validate_rejects_malformed_documents(result):
    broken = dict(result)
    broken.pop("end_to_end")
    with pytest.raises(ValueError):
        validate(broken)
    wrong_bench = dict(result, bench="BENCH_999")
    with pytest.raises(ValueError):
        validate(wrong_bench)


def test_provenance_is_recorded(result):
    prov = result["provenance"]
    for field in ("git_sha", "cpu_count", "python", "platform"):
        assert field in prov, field
    assert prov["cpu_count"] >= 1
    assert prov["executor"] == "serial"
    no_prov = dict(result)
    no_prov.pop("provenance")
    with pytest.raises(ValueError, match="provenance"):
        validate(no_prov)


def test_metrics_block_is_stamped_and_validated(result, exec_result):
    from repro.obs.metrics import METRICS_SCHEMA

    for document in (result, exec_result):
        block = document["metrics"]
        assert block["schema"] == METRICS_SCHEMA
        jobs_total = sum(c["value"] for c in block["counters"]
                         if c["name"] == "spca_jobs_total")
        assert jobs_total > 0


def test_validate_rejects_bad_metrics_block(result):
    wrong_schema = dict(result, metrics=dict(result["metrics"],
                                             schema="other/9"))
    with pytest.raises(ValueError, match="metrics"):
        validate(wrong_schema)
    no_jobs = dict(result, metrics=dict(result["metrics"], counters=[]))
    with pytest.raises(ValueError, match="no engine jobs"):
        validate(no_jobs)
    # The block is optional for pre-metrics result documents.
    legacy = dict(result)
    legacy.pop("metrics")
    validate(legacy)


def test_traced_quick_fit_produces_reconciling_artifacts():
    from repro.obs.metrics import METRICS_SCHEMA

    trace, snapshot = traced_quick_fit()
    assert any(s.kind == "run" for s in trace.spans)
    assert snapshot["schema"] == METRICS_SCHEMA
    # Trace job count and registry job counter must agree.
    n_job_spans = sum(1 for s in trace.spans if s.kind == "job")
    jobs_total = sum(c["value"] for c in snapshot["counters"]
                     if c["name"] == "spca_jobs_total")
    assert n_job_spans == jobs_total > 0


# -- executor suite (BENCH_5) ---------------------------------------------


def test_executor_suite_passes_validation(exec_result):
    validate_executor(exec_result)
    assert exec_result["bench"] == EXEC_BENCH_NAME
    parsed = json.loads(json.dumps(exec_result))
    validate_executor(parsed)


def test_executor_suite_covers_the_matrix(exec_result):
    combos = {
        (e["backend"], e["executor"]) for e in exec_result["end_to_end"]
    }
    assert combos == {
        (backend, executor)
        for backend in ("mapreduce", "spark")
        for executor in ("serial", "threads", "processes")
    }
    for entry in exec_result["end_to_end"]:
        if entry["executor"] == "serial":
            assert entry["speedup_vs_serial"] == 1.0


def test_executor_suite_records_scaling_curve(exec_result):
    workers = {
        e["workers"]
        for e in exec_result["end_to_end"]
        if e["backend"] == "mapreduce" and e["executor"] == "processes"
    }
    assert len(workers) >= 2


def test_executor_summary_renders(exec_result):
    text = summarize_executor(exec_result)
    assert EXEC_BENCH_NAME in text
    assert "mapreduce/processes" in text


def test_executor_validate_rejects_missing_curve(exec_result):
    truncated = dict(
        exec_result,
        end_to_end=[
            e
            for e in exec_result["end_to_end"]
            if not (e["executor"] == "processes" and e["workers"] > 1)
        ],
    )
    with pytest.raises(ValueError, match="scaling curve"):
        validate_executor(truncated)


def _burn(n):
    # Pure-Python work: holds the GIL, so only process-level parallelism
    # can speed it up -- exactly what the floor below asserts.
    total = 0
    for i in range(n):
        total += i * i
    return total


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    # Embed the measured count: a skip must say what the box actually had,
    # so a BENCH document produced alongside it can be cross-checked.
    reason=f"multi-core speedup needs >= 4 cores; this box has "
           f"{os.cpu_count() or 1} (also recorded in provenance.cpu_count)",
)
def test_processes_executor_beats_serial_on_multicore():
    """The processes executor must deliver >= 1.5x on CPU-bound task batches.

    Measured on the executor layer directly (compute-heavy tasks, trivial
    transport) rather than on the quick-suite fits, whose ~30 ms wall time
    is dispatch-dominated and says nothing about scaling.
    """
    import time

    from repro.engine.exec import ProcessPoolTaskExecutor, SerialExecutor

    n, tasks = 2_000_000, 8
    payloads = [n] * tasks
    serial = SerialExecutor()
    started = time.perf_counter()
    expected = serial.run_tasks(_burn, payloads)
    serial_s = time.perf_counter() - started
    with ProcessPoolTaskExecutor(workers=4) as ex:
        ex.run_tasks(_burn, [1000] * 4)  # warm the pool off the clock
        started = time.perf_counter()
        got = ex.run_tasks(_burn, payloads)
        processes_s = time.perf_counter() - started
    assert got == expected
    assert serial_s / processes_s >= 1.5, (serial_s, processes_s)


# -- kernels suite (BENCH_kernels) -----------------------------------------


@pytest.fixture(scope="module")
def kernels_result():
    from perf.kernels_bench import run_kernels_suite

    return run_kernels_suite(quick=True, repeats=1)


def test_kernels_suite_passes_validation(kernels_result):
    from perf.kernels_bench import KERNELS_BENCH_NAME, validate_kernels

    validate_kernels(kernels_result)
    assert kernels_result["bench"] == KERNELS_BENCH_NAME
    parsed = json.loads(json.dumps(kernels_result))
    validate_kernels(parsed)


def test_kernels_suite_covers_matrix_and_verifies_bitwise(kernels_result):
    from repro.jobs.backends import KERNEL_BACKEND_NAMES, NUMBA_AVAILABLE

    combos = {
        (e["engine"], e["kernel_backend"])
        for e in kernels_result["end_to_end"]
    }
    assert combos == {
        (engine, name)
        for engine in ("mapreduce", "spark")
        for name in KERNEL_BACKEND_NAMES
    }
    for entry in kernels_result["end_to_end"]:
        if entry["backend_resolved"] != "numba":
            assert entry["bitwise_equal_to_numpy"] is True
    resolved = kernels_result["provenance"]["kernel_backends_resolved"]
    assert resolved["numpy"] == "numpy"
    assert resolved["fused"] == "fused"
    assert resolved["numba"] == ("numba" if NUMBA_AVAILABLE else "numpy")


def test_kernels_residency_and_raw_blas_recorded(kernels_result):
    residency = kernels_result["residency"]
    assert residency["executor"] == "processes"
    assert residency["reduction"] > 1
    assert kernels_result["raw_blas"]["gap"] > 0


def test_kernels_summary_renders(kernels_result):
    from perf.kernels_bench import KERNELS_BENCH_NAME, summarize_kernels

    text = summarize_kernels(kernels_result)
    assert KERNELS_BENCH_NAME in text
    assert "residency" in text
    assert "raw BLAS floor" in text


def test_kernels_validate_rejects_divergence(kernels_result):
    from perf.kernels_bench import validate_kernels

    diverged = dict(
        kernels_result,
        end_to_end=[
            dict(e, bitwise_equal_to_numpy=False)
            for e in kernels_result["end_to_end"]
        ],
    )
    with pytest.raises(ValueError, match="bitwise"):
        validate_kernels(diverged)
    no_residency = dict(kernels_result)
    no_residency.pop("residency")
    with pytest.raises(ValueError, match="residency"):
        validate_kernels(no_residency)


def test_fused_beats_numpy_on_the_micro_op_suite():
    """The perf gate for this PR's tentpole: fused >= 1.2x on the EM chain.

    Machine-independent (the win is avoided recomputation, not cores), so
    unlike the multi-core floor this asserts on every box.
    """
    from perf.kernels_bench import bench_em_chain

    op = bench_em_chain(repeats=2, n_splits=64, rows=8, cols=200, d=5)
    assert op["speedup"] >= 1.2, op


# -- stream suite (BENCH_stream) ------------------------------------------


@pytest.fixture(scope="module")
def stream_result():
    from perf.stream_bench import run_stream_suite

    return run_stream_suite(quick=True, repeats=1)


def test_stream_suite_passes_validation(stream_result):
    from perf.stream_bench import STREAM_BENCH_NAME, validate_stream

    validate_stream(stream_result)
    assert stream_result["bench"] == STREAM_BENCH_NAME
    parsed = json.loads(json.dumps(stream_result))
    validate_stream(parsed)


def test_stream_suite_covers_all_engines_bitwise(stream_result):
    by_engine = {s["engine"]: s for s in stream_result["scenarios"]}
    assert set(by_engine) == {"sequential", "mapreduce", "spark"}
    for scenario in by_engine.values():
        assert scenario["bitwise_equal"] is True
        assert scenario["sustained_rows_per_s"] > 0
        assert 0.0 <= scenario["window_lag"] < 1.0
    assert stream_result["checkpoint_overhead"]["checkpoints"] > 0


def test_stream_summary_renders(stream_result):
    from perf.stream_bench import STREAM_BENCH_NAME, summarize_stream

    text = summarize_stream(stream_result)
    assert STREAM_BENCH_NAME in text
    assert "checkpoint overhead" in text


def test_stream_validate_rejects_divergence_and_lag(stream_result):
    from perf.stream_bench import validate_stream

    diverged = dict(
        stream_result,
        scenarios=[
            dict(s, bitwise_equal=(s["engine"] == "sequential"))
            for s in stream_result["scenarios"]
        ],
    )
    with pytest.raises(ValueError, match="diverged"):
        validate_stream(diverged)
    lagging = dict(
        stream_result,
        scenarios=[
            dict(s, window_lag=2.5) for s in stream_result["scenarios"]
        ],
    )
    with pytest.raises(ValueError, match="lag"):
        validate_stream(lagging)
    no_ckpt = dict(stream_result)
    no_ckpt.pop("checkpoint_overhead")
    with pytest.raises(ValueError, match="checkpoint_overhead"):
        validate_stream(no_ckpt)
