"""Ablation: the stateful combiner of Section 4.1.

sPCA's YtX mapper keeps in-memory partial matrices and emits them once from
``cleanup``; a naive port emits one dense partial per input record and
relies on combiners to collapse the flood.  This bench runs both mappers on
the same input and compares mapper output and job time -- the same
pathology the paper diagnoses in Mahout's Bt job.
"""

import numpy as np
import pytest

from harness import MR_COSTS, format_bytes
from repro.data.generators import bag_of_words
from repro.data.paper import scaled_cluster
from repro.engine.mapreduce import MapReduceJob, MapReduceRuntime
from repro.jobs import mapreduce_jobs as mr
from repro.linalg.blocks import partition_rows


@pytest.mark.benchmark(group="stateful-combiner")
def test_stateful_combiner_vs_per_record_emission(benchmark, report):
    data = bag_of_words(20_000, 2_000, words_per_doc=8.0, seed=44)
    rng = np.random.default_rng(0)
    d = 10
    projector = rng.normal(size=(2_000, d))
    mean = np.asarray(data.mean(axis=0)).ravel()
    latent_mean = mean @ projector
    config = {
        "mean": mean,
        "projector": projector,
        "latent_mean": latent_mean,
        "mean_propagation": True,
    }
    # Many records per split so per-record emission actually floods: blocks
    # of ~40 rows, 8 records per split.
    blocks = partition_rows(data, 512)
    splits = [
        [(block.start, block.data) for block in blocks[i : i + 8]]
        for i in range(0, len(blocks), 8)
    ]
    stats = {}

    def run_both():
        for label, mapper in (
            ("stateful", mr.YtXMapper()),
            ("per-record", mr.NaiveYtXMapper()),
        ):
            runtime = MapReduceRuntime(cluster=scaled_cluster(), cost_model=MR_COSTS)
            job = MapReduceJob(
                name="YtXJob", mapper=mapper, reducer=mr.MatrixSumReducer(),
                combiner=mr.MatrixSumReducer(), num_reducers=2, config=config,
            )
            output = dict(runtime.run(job, splits))
            stats[label] = (runtime.metrics.jobs[-1], output)
        return len(stats)

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    report("Stateful combiner ablation (Section 4.1), YtXJob on 20000x2000")
    report(f"{'mapper':<14}{'map output':>14}{'shuffle':>12}{'sim s':>8}")
    for label, (job_stats, _) in stats.items():
        report(
            f"{label:<14}{format_bytes(job_stats.map_output_bytes):>14}"
            f"{format_bytes(job_stats.shuffle_bytes):>12}{job_stats.sim_seconds:>8.1f}"
        )

    stateful, naive = stats["stateful"][0], stats["per-record"][0]
    # The naive mapper floods: much more raw map output, and a slower job.
    assert naive.map_output_bytes > 5 * stateful.map_output_bytes
    assert naive.sim_seconds > stateful.sim_seconds

    # Both compute identical results: the optimization is free of error.
    # (XtX is directly comparable; the stateful path reports YtX in its
    # sparse data-product + column-sum protocol.)
    lhs = stats["stateful"][1][mr.KEY_XTX]
    rhs = stats["per-record"][1][mr.KEY_XTX]
    np.testing.assert_allclose(np.asarray(lhs), np.asarray(rhs), rtol=1e-8, atol=1e-6)
