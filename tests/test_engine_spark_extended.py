"""Extended RDD operations and property-based engine laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import ClusterSpec
from repro.engine.spark import SparkContext
from repro.errors import InvalidPlanError


@pytest.fixture
def sc():
    return SparkContext(cluster=ClusterSpec(num_nodes=2, cores_per_node=2))


class TestDistinct:
    def test_removes_duplicates(self, sc):
        result = sorted(sc.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect())
        assert result == [1, 2, 3]

    def test_all_unique_unchanged(self, sc):
        result = sorted(sc.parallelize(range(5), 2).distinct().collect())
        assert result == [0, 1, 2, 3, 4]


class TestSortBy:
    def test_ascending(self, sc):
        data = [5, 3, 8, 1, 9, 2]
        assert sc.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_descending(self, sc):
        data = [5, 3, 8, 1]
        result = sc.parallelize(data, 2).sort_by(lambda x: x, ascending=False).collect()
        assert result == sorted(data, reverse=True)

    def test_key_function(self, sc):
        data = ["ccc", "a", "bb"]
        result = sc.parallelize(data).sort_by(len).collect()
        assert result == ["a", "bb", "ccc"]


class TestJoin:
    def test_inner_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = sc.parallelize([("a", "x"), ("c", "y")], 2)
        result = sorted(left.join(right).collect())
        assert result == [("a", (1, "x")), ("a", (3, "x"))]

    def test_join_no_overlap_is_empty(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("b", 2)])
        assert left.join(right).collect() == []


class TestPartitioning:
    def test_glom(self, sc):
        chunks = sc.parallelize(range(6), 3).glom().collect()
        assert len(chunks) == 3
        assert [x for chunk in chunks for x in chunk] == list(range(6))

    def test_coalesce_preserves_elements(self, sc):
        rdd = sc.parallelize(range(10), 4).coalesce(2)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == list(range(10))

    def test_coalesce_validation(self, sc):
        with pytest.raises(InvalidPlanError):
            sc.parallelize(range(4)).coalesce(0)

    def test_repartition_preserves_elements(self, sc):
        rdd = sc.parallelize(range(12), 2).repartition(4)
        assert rdd.num_partitions == 4
        assert sorted(rdd.collect()) == list(range(12))

    def test_repartition_charges_shuffle(self, sc):
        sc.parallelize(range(20), 2).repartition(4).collect()
        assert any(job.shuffle_bytes > 0 for job in sc.metrics.jobs)


class TestDebugString:
    def test_shows_lineage_depth(self, sc):
        rdd = sc.parallelize(range(4), 2).map(lambda x: x).filter(lambda x: True).cache()
        text = rdd.to_debug_string()
        assert text.count("RDD#") == 3
        assert "[cached]" in text


class TestPropertyLaws:
    @settings(max_examples=25, deadline=None)
    @given(items=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=30),
           partitions=st.integers(min_value=1, max_value=5))
    def test_collect_preserves_order_and_content(self, items, partitions):
        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        assert sc.parallelize(items, partitions).collect() == items

    @settings(max_examples=25, deadline=None)
    @given(items=st.lists(st.integers(), min_size=1, max_size=30))
    def test_map_then_sum_equals_python(self, items):
        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        assert sc.parallelize(items).map(lambda x: 2 * x).sum() == 2 * sum(items)

    @settings(max_examples=25, deadline=None)
    @given(pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
        min_size=1, max_size=40,
    ))
    def test_reduce_by_key_matches_dict_accumulation(self, pairs):
        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        expected = {}
        for key, value in pairs:
            expected[key] = expected.get(key, 0) + value
        result = dict(sc.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b).collect())
        assert result == expected

    @settings(max_examples=20, deadline=None)
    @given(items=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=25),
           seed=st.integers(min_value=0, max_value=100))
    def test_failure_injection_never_changes_results(self, items, seed):
        reliable = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        flaky = SparkContext(
            cluster=ClusterSpec(num_nodes=1, cores_per_node=2),
            failure_rate=0.3, seed=seed,
        )
        expected = reliable.parallelize(items, 2).map(lambda x: x * x).collect()
        assert flaky.parallelize(items, 2).map(lambda x: x * x).collect() == expected

    @settings(max_examples=20, deadline=None)
    @given(items=st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=30),
           partitions=st.integers(min_value=1, max_value=4))
    def test_aggregate_count_sum_invariant(self, items, partitions):
        sc = SparkContext(cluster=ClusterSpec(num_nodes=1, cores_per_node=2))
        count, total = sc.parallelize(items, partitions).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + 1, acc[1] + x),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (count, total) == (len(items), sum(items))


class TestHDFSInterop:
    def test_round_trip_through_hdfs(self, sc):
        from repro.engine.mapreduce import InMemoryHDFS

        hdfs = InMemoryHDFS()
        rdd = sc.parallelize(range(10), 3).map(lambda x: x * 2)
        written = sc.save_to_hdfs(rdd, hdfs, "out/data")
        assert written > 0
        restored = sc.from_hdfs(hdfs, "out/data").map(lambda kv: kv[1]).collect()
        assert restored == list(range(0, 20, 2))

    def test_io_charged_as_disk_time(self, sc):
        from repro.engine.mapreduce import InMemoryHDFS

        hdfs = InMemoryHDFS()
        sc.save_to_hdfs(sc.parallelize([1, 2, 3]), hdfs, "x")
        names = [j.name for j in sc.metrics.jobs]
        assert "hdfsWrite" in names
        sc.from_hdfs(hdfs, "x")
        assert "hdfsRead" in [j.name for j in sc.metrics.jobs]
        assert hdfs.bytes_read > 0 and hdfs.bytes_written > 0

    def test_cross_engine_pipeline(self, sc):
        """A MapReduce job's output can feed a Spark computation."""
        from repro.engine.mapreduce import (
            InMemoryHDFS, MapReduceJob, MapReduceRuntime, Mapper, SumReducer,
        )

        class Tokenize(Mapper):
            def map(self, key, value, ctx):
                for word in value.split():
                    yield word, 1

        hdfs = InMemoryHDFS()
        runtime = MapReduceRuntime(hdfs=hdfs)
        runtime.hdfs.write("docs", [(0, "a b a"), (1, "b")])
        runtime.run(
            MapReduceJob(name="wc", mapper=Tokenize(), reducer=SumReducer(),
                         output_path="counts"),
            "docs",
        )
        total = sc.from_hdfs(hdfs, "counts").map(lambda kv: kv[1]).sum()
        assert total == 4


class TestActionEdgeCases:
    def test_first_of_filtered_empty_raises(self, sc):
        from repro.errors import InvalidPlanError

        empty = sc.parallelize(range(5), 2).filter(lambda x: x > 100)
        with pytest.raises(InvalidPlanError):
            empty.first()

    def test_take_more_than_available(self, sc):
        assert sc.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_reduce_of_filtered_empty_raises(self, sc):
        from repro.errors import InvalidPlanError

        empty = sc.parallelize(range(3)).filter(lambda x: False)
        with pytest.raises(InvalidPlanError):
            empty.reduce(lambda a, b: a + b)

    def test_fold_of_filtered_empty_returns_zero(self, sc):
        empty = sc.parallelize(range(3)).filter(lambda x: False)
        assert empty.fold(0, lambda a, b: a + b) == 0

    def test_sample_fraction_one_keeps_everything(self, sc):
        items = list(range(20))
        assert sorted(sc.parallelize(items, 2).sample(1.0, seed=1).collect()) == items
