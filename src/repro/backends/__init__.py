"""Execution backends for the sPCA driver.

A backend owns the distributed (or local) execution of the handful of jobs
Algorithm 4 marks in bold: ``meanJob``, ``FnormJob``, the consolidated
``YtXJob``, ``ss3Job``, and the sampled reconstruction-error job.  Three
implementations are provided:

- :class:`repro.backends.sequential.SequentialBackend` -- plain NumPy/SciPy,
  the correctness reference and the right choice for data that fits in
  memory.
- :class:`repro.backends.mapreduce.MapReduceBackend` -- runs each job on the
  simulated Hadoop/MapReduce engine (sPCA-MapReduce in the paper).
- :class:`repro.backends.spark.SparkBackend` -- runs each job on the
  simulated Spark engine using broadcasts and accumulators (sPCA-Spark).
"""

from repro.backends.base import Backend
from repro.backends.sequential import SequentialBackend

__all__ = ["Backend", "SequentialBackend"]


def __getattr__(name: str):
    # Lazy imports keep `repro.backends` importable without pulling in the
    # engine packages for sequential-only users.
    if name == "MapReduceBackend":
        from repro.backends.mapreduce import MapReduceBackend

        return MapReduceBackend
    if name == "SparkBackend":
        from repro.backends.spark import SparkBackend

        return SparkBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
